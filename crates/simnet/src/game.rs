//! The game client/server protocol and the displayed-latency model.
//!
//! Real games measure the client↔server RTT "at the server (in a
//! proprietary manner, presumably at the application layer)" and display a
//! smoothed value on the client's HUD (§2.1). We model the common echo
//! protocol: every server update carries a server timestamp; the client's
//! next input echoes that timestamp together with how long the client held
//! it, so the server recovers the pure network RTT; the server averages
//! RTT samples over a sliding window of a few seconds and ships the
//! average back in its updates for the HUD to display.
//!
//! That **windowed average is the entire mechanism** behind the paper's
//! Fig 4 observation that "when network latency increases, gaming latency
//! takes a few seconds to reflect the increase".

use crate::packet::{NodeId, Packet, PacketKind};
use std::collections::VecDeque;
use tero_types::{SimDuration, SimTime};

/// A game client (play-station).
#[derive(Debug)]
pub struct GameClient {
    /// The client's node.
    pub node: NodeId,
    /// The server's node.
    pub server: NodeId,
    /// Interval between input packets.
    pub input_interval: SimDuration,
    /// Wire size of an input packet.
    pub input_bytes: u32,
    /// Latest server timestamp received (echoed on the next input).
    last_server_ts: Option<(SimTime, SimTime)>, // (server_ts, received_at)
    /// The latency currently displayed on the HUD (ms).
    pub displayed_ms: Option<f64>,
}

impl GameClient {
    /// New client with typical parameters (input every 33 ms, 100-byte
    /// packets).
    pub fn new(node: NodeId, server: NodeId) -> Self {
        GameClient {
            node,
            server,
            input_interval: SimDuration::from_millis(33),
            input_bytes: 100,
            last_server_ts: None,
            displayed_ms: None,
        }
    }

    /// Client tick: emit the next input packet.
    pub fn tick(&mut self, now: SimTime, client_idx: usize) -> Packet {
        let (echo_ts, hold_ms) = match self.last_server_ts {
            Some((ts, recv_at)) => (ts, now.since(recv_at).as_millis()),
            None => (SimTime::EPOCH, u64::MAX), // no echo yet
        };
        Packet {
            src: self.node,
            dst: self.server,
            size_bytes: self.input_bytes,
            kind: PacketKind::GameInput {
                client: client_idx,
                echo_ts,
                hold_ms,
            },
            created: now,
        }
    }

    /// Handle a server update.
    pub fn on_update(&mut self, server_ts: SimTime, displayed_ms: f64, now: SimTime) {
        self.last_server_ts = Some((server_ts, now));
        self.displayed_ms = Some(displayed_ms);
    }
}

/// Per-client server state: RTT samples within the averaging window.
#[derive(Debug)]
pub struct GameServerSession {
    /// The client's node (updates are addressed there).
    pub client_node: NodeId,
    /// Interval between state updates.
    pub update_interval: SimDuration,
    /// Wire size of an update packet.
    pub update_bytes: u32,
    /// Length of the RTT averaging window.
    pub window: SimDuration,
    samples: VecDeque<(SimTime, f64)>,
    /// Most recent raw RTT sample (ms), for diagnostics.
    pub last_rtt_ms: Option<f64>,
}

impl GameServerSession {
    /// New session with typical parameters (updates every 33 ms, 3-second
    /// averaging window, 200-byte updates).
    pub fn new(client_node: NodeId) -> Self {
        GameServerSession {
            client_node,
            update_interval: SimDuration::from_millis(33),
            update_bytes: 200,
            window: SimDuration::from_secs(3),
            samples: VecDeque::new(),
            last_rtt_ms: None,
        }
    }

    /// Handle an input packet: recover the network RTT from the echo.
    pub fn on_input(&mut self, echo_ts: SimTime, hold_ms: u64, now: SimTime) {
        if hold_ms == u64::MAX || echo_ts == SimTime::EPOCH {
            return; // client had nothing to echo yet
        }
        let total_ms = now.since(echo_ts).as_millis_f64();
        let rtt = (total_ms - hold_ms as f64).max(0.0);
        self.last_rtt_ms = Some(rtt);
        self.samples.push_back((now, rtt));
        let cutoff = now - self.window;
        while self.samples.front().is_some_and(|&(t, _)| t < cutoff) {
            self.samples.pop_front();
        }
    }

    /// The windowed-average latency the HUD should display.
    pub fn displayed_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, r)| r).sum::<f64>() / self.samples.len() as f64
    }

    /// Server tick: emit the next update packet for this client.
    pub fn tick(&self, now: SimTime, server_node: NodeId, client_idx: usize) -> Packet {
        Packet {
            src: server_node,
            dst: self.client_node,
            size_bytes: self.update_bytes,
            kind: PacketKind::GameUpdate {
                client: client_idx,
                server_ts: now,
                displayed_ms: self.displayed_ms(),
            },
            created: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_recovers_pure_network_rtt() {
        let mut s = GameServerSession::new(1);
        // Server stamped an update at t=1000 ms; the client received it and
        // held it 20 ms before echoing; the echo arrives at t=1070 ms.
        // Network RTT = 1070 - 1000 - 20 = 50 ms.
        s.on_input(SimTime::from_millis(1_000), 20, SimTime::from_millis(1_070));
        assert_eq!(s.last_rtt_ms, Some(50.0));
        assert!((s.displayed_ms() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn no_echo_yet_is_ignored() {
        let mut s = GameServerSession::new(1);
        s.on_input(SimTime::EPOCH, u64::MAX, SimTime::from_millis(100));
        assert_eq!(s.last_rtt_ms, None);
        assert_eq!(s.displayed_ms(), 0.0);
    }

    #[test]
    fn window_average_lags_step_change() {
        let mut s = GameServerSession::new(1);
        // 3 s of 30 ms RTTs, sampled every 100 ms.
        let mut now = SimTime::EPOCH;
        for _ in 0..30 {
            now += SimDuration::from_millis(100);
            let sent = now - SimDuration::from_millis(30);
            s.on_input(sent, 0, now);
        }
        assert!((s.displayed_ms() - 30.0).abs() < 1e-9);
        // RTT jumps to 130 ms. Right after the jump, display is still
        // dominated by old samples.
        now += SimDuration::from_millis(100);
        let sent = now - SimDuration::from_millis(130);
        s.on_input(sent, 0, now);
        assert!(
            s.displayed_ms() < 40.0,
            "display lags: {}",
            s.displayed_ms()
        );
        // After a full window of high samples, the display converges.
        for _ in 0..30 {
            now += SimDuration::from_millis(100);
            let sent = now - SimDuration::from_millis(130);
            s.on_input(sent, 0, now);
        }
        assert!(
            (s.displayed_ms() - 130.0).abs() < 1.0,
            "{}",
            s.displayed_ms()
        );
    }

    #[test]
    fn client_echo_cycle() {
        let mut c = GameClient::new(0, 9);
        let p = c.tick(SimTime::from_millis(10), 3);
        match p.kind {
            PacketKind::GameInput { hold_ms, .. } => assert_eq!(hold_ms, u64::MAX),
            _ => panic!(),
        }
        c.on_update(SimTime::from_millis(5), 42.0, SimTime::from_millis(40));
        assert_eq!(c.displayed_ms, Some(42.0));
        let p = c.tick(SimTime::from_millis(73), 3);
        match p.kind {
            PacketKind::GameInput {
                echo_ts, hold_ms, ..
            } => {
                assert_eq!(echo_ts, SimTime::from_millis(5));
                assert_eq!(hold_ms, 33);
            }
            _ => panic!(),
        }
    }
}
