//! The query engine: typed queries over the committed serving sketches.

use crate::cache::HotKeyCache;
use std::sync::{Mutex, PoisonError};
use tero_core::serving::{
    load_sketch, parse_dist_sketch_key, serve_version, ServeGranularity, DIST_SKETCH_PREFIX,
};
use tero_obs::{CounterHandle, GaugeHandle, HistogramHandle, Registry};
use tero_stats::{BoxplotStats, QuantileSketch};
use tero_store::KvStore;
use tero_types::{AnonId, GameId};

/// A handle to one served distribution: the KV key its sketch lives
/// under. Build with [`SketchRef::dist`] (published `{location, game}`
/// distributions) or [`SketchRef::raw`] (per-`{streamer, game}` raw
/// sketches, the incrementally-updating view).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SketchRef(String);

impl SketchRef {
    /// The published distribution at `granularity` for `{location_key,
    /// game}`, where `location_key` is `Location::key()` at that
    /// granularity (e.g. `"France/Île-de-France"` or `"France"`).
    pub fn dist(granularity: ServeGranularity, game: GameId, location_key: &str) -> SketchRef {
        SketchRef(tero_core::serving::dist_sketch_key(
            granularity,
            game,
            location_key,
        ))
    }

    /// The raw sketch of every extracted value for one `{streamer, game}`.
    pub fn raw(anon: AnonId, game: GameId) -> SketchRef {
        SketchRef(tero_core::serving::raw_sketch_key(anon, game))
    }

    /// The underlying KV key.
    pub fn key(&self) -> &str {
        &self.0
    }
}

/// One query against the serving view.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// The `p`-th percentile (0–100) of a distribution, by the shared
    /// nearest-rank definition (see `tero_stats::sketch`).
    Percentile {
        /// The distribution to query.
        target: SketchRef,
        /// Percentile in `[0, 100]`.
        p: f64,
    },
    /// The fraction of the distribution's mass at or below `x` ms.
    Cdf {
        /// The distribution to query.
        target: SketchRef,
        /// The evaluation point (ms).
        x: f64,
    },
    /// The distribution's full bucket histogram.
    Histogram {
        /// The distribution to query.
        target: SketchRef,
    },
    /// The approximate Wasserstein-1 distance between two distributions
    /// (the Fig 8 comparison shape).
    Wasserstein {
        /// First distribution.
        a: SketchRef,
        /// Second distribution.
        b: SketchRef,
    },
}

/// A query's answer. Scalar queries answer `None` when the distribution
/// does not exist or is empty — mirroring `Histogram::percentile` and
/// `BoxplotStats::from_samples`, a percentile of nothing is not a number.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A percentile, CDF or Wasserstein value.
    Value(Option<f64>),
    /// Histogram rows `(bucket_lo, bucket_hi, count)`, ascending; empty
    /// when the distribution does not exist.
    Histogram(Vec<(f64, f64, u64)>),
}

impl Answer {
    /// The scalar value, if this is a non-empty scalar answer.
    pub fn value(&self) -> Option<f64> {
        match self {
            Answer::Value(v) => *v,
            Answer::Histogram(_) => None,
        }
    }

    /// Whether the query found a non-empty distribution.
    pub fn is_answered(&self) -> bool {
        match self {
            Answer::Value(v) => v.is_some(),
            Answer::Histogram(rows) => !rows.is_empty(),
        }
    }

    /// A deterministic digest of the answer: the exact f64 bit patterns
    /// (and bucket counts) folded with a Fibonacci-mix. Two answer
    /// streams are byte-equivalent iff their folded checksums agree —
    /// the load generator's cheap whole-run identity check.
    pub fn checksum(&self) -> u64 {
        const MIX: u64 = 0x9e37_79b9_7f4a_7c15;
        let fold = |acc: u64, v: u64| (acc ^ v).wrapping_mul(MIX).rotate_left(17);
        match self {
            Answer::Value(None) => fold(1, 0),
            Answer::Value(Some(v)) => fold(2, v.to_bits()),
            Answer::Histogram(rows) => rows.iter().fold(3, |acc, &(lo, hi, n)| {
                fold(fold(fold(acc, lo.to_bits()), hi.to_bits()), n)
            }),
        }
    }
}

/// The `serve.*` metric handles, registered eagerly so the operations
/// catalogue is complete as soon as an engine exists.
struct ServeMetrics {
    queries: CounterHandle,
    cache_hits: CounterHandle,
    cache_misses: CounterHandle,
    cache_evictions: CounterHandle,
    cache_entries: GaugeHandle,
    query_us: HistogramHandle,
    registry: Registry,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            queries: registry.counter("serve.queries"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            cache_evictions: registry.counter("serve.cache.evictions"),
            cache_entries: registry.gauge("serve.cache.entries"),
            query_us: registry.histogram("serve.query_us"),
            registry: registry.clone(),
        }
    }
}

/// Default hot-key cache capacity (decoded sketches).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// The distribution query front-end.
///
/// Wraps a serving store — [`tero_core::Tero::serving_store`] after a
/// completed run, or any `KvStore` an engine committed into — and answers
/// [`Query`]s from the committed sketches, through a hot-key LRU cache of
/// decoded sketches. Thread-safe: the load generator fans queries out
/// over a `tero_pool::Pool` against one shared engine.
///
/// Answers are deterministic: they depend only on the committed sketch
/// bytes, which are themselves byte-identical across worker counts and
/// window schedules, so a query stream replayed against any equivalent
/// run folds to the same [`Answer::checksum`].
pub struct QueryEngine {
    kv: KvStore,
    cache: Mutex<HotKeyCache>,
    metrics: ServeMetrics,
}

impl QueryEngine {
    /// An engine over `kv` with the default cache capacity, reporting
    /// `serve.*` metrics into `registry`.
    pub fn new(kv: KvStore, registry: &Registry) -> QueryEngine {
        QueryEngine::with_cache_capacity(kv, registry, DEFAULT_CACHE_CAPACITY)
    }

    /// An engine with an explicit hot-key cache capacity. Capacity 0
    /// disables the cache (every query decodes from the store) — the
    /// cache-off arm of the benchmarks.
    pub fn with_cache_capacity(kv: KvStore, registry: &Registry, capacity: usize) -> QueryEngine {
        QueryEngine {
            kv,
            cache: Mutex::new(HotKeyCache::new(capacity)),
            metrics: ServeMetrics::new(registry),
        }
    }

    /// The serving view's current version (see
    /// `tero_core::serving::SERVE_VERSION_KEY`).
    pub fn version(&self) -> u64 {
        serve_version(&self.kv)
    }

    /// Every published distribution in the serving view, sorted by key:
    /// `(granularity, game, location_key)`.
    pub fn distributions(&self) -> Vec<(ServeGranularity, GameId, String)> {
        self.kv
            .keys_with_prefix(DIST_SKETCH_PREFIX)
            .iter()
            .filter_map(|k| {
                let (g, game, loc) = parse_dist_sketch_key(k)?;
                Some((g, game, loc.to_string()))
            })
            .collect()
    }

    /// Answer one query.
    pub fn query(&self, q: &Query) -> Answer {
        self.metrics.queries.inc();
        let _t = self.metrics.registry.stage_timer(&self.metrics.query_us);
        match q {
            Query::Percentile { target, p } => {
                Answer::Value(self.sketch(target).and_then(|s| s.quantile(*p)))
            }
            Query::Cdf { target, x } => Answer::Value(self.sketch(target).and_then(|s| s.cdf(*x))),
            Query::Histogram { target } => Answer::Histogram(
                self.sketch(target)
                    .map(|s| s.histogram())
                    .unwrap_or_default(),
            ),
            Query::Wasserstein { a, b } => Answer::Value(
                self.sketch(a)
                    .zip(self.sketch(b))
                    .and_then(|(a, b)| a.wasserstein(&b)),
            ),
        }
    }

    /// The `p`-th percentile of `target` (`None`: absent or empty).
    pub fn percentile(&self, target: &SketchRef, p: f64) -> Option<f64> {
        self.query(&Query::Percentile {
            target: target.clone(),
            p,
        })
        .value()
    }

    /// The CDF of `target` at `x` ms (`None`: absent or empty).
    pub fn cdf(&self, target: &SketchRef, x: f64) -> Option<f64> {
        self.query(&Query::Cdf {
            target: target.clone(),
            x,
        })
        .value()
    }

    /// The bucket histogram of `target` (empty when absent).
    pub fn histogram(&self, target: &SketchRef) -> Vec<(f64, f64, u64)> {
        match self.query(&Query::Histogram {
            target: target.clone(),
        }) {
            Answer::Histogram(rows) => rows,
            Answer::Value(_) => unreachable!("histogram query answers histogram"),
        }
    }

    /// The approximate Wasserstein-1 distance between two served
    /// distributions (`None` when either is absent or empty).
    pub fn wasserstein(&self, a: &SketchRef, b: &SketchRef) -> Option<f64> {
        self.query(&Query::Wasserstein {
            a: a.clone(),
            b: b.clone(),
        })
        .value()
    }

    /// The sketch-served five-number summary of `target` — the serving
    /// mirror of the report's §5.2 `BoxplotStats`.
    pub fn boxplot(&self, target: &SketchRef) -> Option<BoxplotStats> {
        self.metrics.queries.inc();
        let _t = self.metrics.registry.stage_timer(&self.metrics.query_us);
        self.sketch(target)?.boxplot()
    }

    /// Cache counters so far: `(hits, misses, evictions)`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.metrics.cache_hits.get(),
            self.metrics.cache_misses.get(),
            self.metrics.cache_evictions.get(),
        )
    }

    /// Fetch a decoded sketch through the hot-key cache. Consulting the
    /// cache first reconciles it with the serving version, so an engine
    /// commit between two queries invalidates every cached sketch.
    fn sketch(&self, target: &SketchRef) -> Option<QuantileSketch> {
        let version = serve_version(&self.kv);
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        cache.sync_version(version);
        if let Some(sketch) = cache.get(target.key()) {
            self.metrics.cache_hits.inc();
            return Some(sketch.clone());
        }
        self.metrics.cache_misses.inc();
        let sketch = load_sketch(&self.kv, target.key())?;
        let evicted = cache.insert(target.key().to_string(), sketch.clone());
        self.metrics.cache_evictions.add(evicted);
        self.metrics.cache_entries.set(cache.len() as i64);
        Some(sketch)
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("version", &self.version())
            .field("distributions", &self.distributions().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_core::serving::SERVE_VERSION_KEY;

    fn store_with(values: &[f64], key: &SketchRef) -> KvStore {
        let kv = KvStore::new();
        kv.set(key.key(), QuantileSketch::from_values(values).encode());
        kv.incr_by(SERVE_VERSION_KEY, 1);
        kv
    }

    #[test]
    fn answers_all_query_shapes() {
        let game = GameId::ALL[0];
        let target = SketchRef::dist(ServeGranularity::Region, game, "France/Île-de-France");
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let kv = store_with(&values, &target);
        let other = SketchRef::dist(ServeGranularity::Country, game, "France");
        kv.set(
            other.key(),
            QuantileSketch::from_values(&values.iter().map(|v| v + 10.0).collect::<Vec<_>>())
                .encode(),
        );
        let registry = Registry::new();
        let engine = QueryEngine::new(kv, &registry);

        let p50 = engine.percentile(&target, 50.0).unwrap();
        assert!((p50 - 50.0).abs() <= 50.0 * 0.021, "p50 {p50}");
        let cdf = engine.cdf(&target, 50.0).unwrap();
        assert!((cdf - 0.5).abs() < 0.03, "cdf {cdf}");
        let rows = engine.histogram(&target);
        assert_eq!(rows.iter().map(|r| r.2).sum::<u64>(), 100);
        let w = engine.wasserstein(&target, &other).unwrap();
        assert!((w - 10.0).abs() < 1.0, "translation distance {w}");
        let bp = engine.boxplot(&target).unwrap();
        assert_eq!(bp.n, 100);
        assert_eq!(engine.distributions().len(), 2);
    }

    #[test]
    fn missing_and_empty_distributions_answer_none() {
        let registry = Registry::new();
        let kv = KvStore::new();
        let empty = SketchRef::raw(AnonId(7), GameId::ALL[0]);
        kv.set(empty.key(), QuantileSketch::default().encode());
        let engine = QueryEngine::new(kv, &registry);
        let missing = SketchRef::dist(ServeGranularity::Region, GameId::ALL[0], "Atlantis");
        assert_eq!(engine.percentile(&missing, 95.0), None);
        assert_eq!(engine.percentile(&empty, 95.0), None, "empty sketch: None");
        assert_eq!(engine.cdf(&missing, 10.0), None);
        assert!(engine.histogram(&missing).is_empty());
        assert_eq!(engine.wasserstein(&missing, &empty), None);
        assert_eq!(engine.boxplot(&empty), None);
    }

    #[test]
    fn cache_hits_and_version_invalidation() {
        let game = GameId::ALL[1];
        let target = SketchRef::raw(AnonId(42), game);
        let kv = store_with(&[10.0, 20.0, 30.0], &target);
        let registry = Registry::new();
        let engine = QueryEngine::new(kv.clone(), &registry);

        engine.percentile(&target, 50.0);
        assert_eq!(engine.cache_stats(), (0, 1, 0), "first query misses");
        engine.percentile(&target, 95.0);
        engine.cdf(&target, 15.0);
        assert_eq!(engine.cache_stats(), (2, 1, 0), "repeat queries hit");

        // A commit-style update: new sketch bytes plus a version bump.
        kv.set(
            target.key(),
            QuantileSketch::from_values(&[100.0, 200.0]).encode(),
        );
        kv.incr_by(SERVE_VERSION_KEY, 1);
        let p50 = engine.percentile(&target, 50.0).unwrap();
        assert!(p50 >= 99.0, "post-commit answer reflects the new sketch");
        assert_eq!(engine.cache_stats(), (2, 2, 0), "version bump invalidated");
        assert_eq!(registry.snapshot().counter("serve.queries"), Some(4));
    }

    #[test]
    fn lru_evictions_are_counted() {
        let registry = Registry::new();
        let kv = KvStore::new();
        let game = GameId::ALL[0];
        let targets: Vec<SketchRef> = (0..3).map(|i| SketchRef::raw(AnonId(i), game)).collect();
        for t in &targets {
            kv.set(t.key(), QuantileSketch::from_values(&[1.0]).encode());
        }
        let engine = QueryEngine::with_cache_capacity(kv, &registry, 2);
        for t in &targets {
            engine.percentile(t, 50.0);
        }
        let (hits, misses, evictions) = engine.cache_stats();
        assert_eq!((hits, misses), (0, 3));
        assert_eq!(evictions, 1, "third distinct key evicts the coldest");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.cache.evictions"), Some(1));
        assert_eq!(snap.gauge("serve.cache.entries").unwrap().value, 2);
    }

    #[test]
    fn checksum_distinguishes_answers() {
        let a = Answer::Value(Some(42.0));
        let b = Answer::Value(Some(43.0));
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(Answer::Value(None).checksum(), a.checksum());
        assert_eq!(a.checksum(), Answer::Value(Some(42.0)).checksum());
        let h1 = Answer::Histogram(vec![(0.0, 1.0, 2)]);
        let h2 = Answer::Histogram(vec![(0.0, 1.0, 3)]);
        assert_ne!(h1.checksum(), h2.checksum());
        assert!(!Answer::Histogram(vec![]).is_answered());
        assert!(h1.is_answered());
    }
}
