//! Windowed-execution overhead: what slicing a run into N windows costs
//! over the single-shot path. Each window adds a store commit (cursor +
//! counter + ledger-delta writes into the `engine:*` keys) and an extra
//! ingest/extract stage invocation; the report is byte-identical either
//! way, so the delta between these benches *is* the windowing overhead.
//! The numbers feed docs/PERFORMANCE.md.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use tero_core::pipeline::{ExtractionMode, Tero, WindowOutcome};
use tero_types::{SimDuration, SimTime};
use tero_world::{World, WorldConfig};

fn build_world() -> World {
    World::build(WorldConfig {
        seed: 7,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    })
}

fn build_tero() -> Tero {
    Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: 2,
        ..Tero::default()
    }
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("window");
    group.sample_size(10);

    // Baseline: the legacy single-shot path (one full-horizon window).
    // World construction is included in every variant, so it cancels.
    group.bench_function("single_shot", |b| {
        b.iter(|| {
            let mut world = build_world();
            let tero = build_tero();
            black_box(tero.run(&mut world).thumbnails)
        })
    });

    for windows in [4u64, 16, 64] {
        group.bench_function(BenchmarkId::new("windows", windows), |b| {
            b.iter(|| {
                let mut world = build_world();
                let tero = build_tero();
                let horizon = world.horizon;
                let step = SimDuration::from_micros(horizon.as_micros().div_ceil(windows).max(1));
                let mut to = SimTime::EPOCH + step;
                let report = loop {
                    match tero.run_window(&mut world, SimTime::EPOCH, to) {
                        WindowOutcome::Complete(report) => break report,
                        WindowOutcome::Advanced => to += step,
                        WindowOutcome::Killed => unreachable!("no chaos installed"),
                    }
                };
                black_box(report.thumbnails)
            })
        });
    }

    // The commit in isolation: after one real quarter-horizon window, 16
    // one-second slivers each advance the cursor past (almost) no new
    // data but still pay the full per-window cost — an ingest invocation,
    // an extract invocation over an empty drain, and two store commits
    // (cursor + counters + ledger delta + markers).
    group.bench_function("near_empty_window_marginal_x16", |b| {
        b.iter(|| {
            let mut world = build_world();
            let tero = build_tero();
            let horizon = world.horizon;
            let quarter = SimDuration::from_micros(horizon.as_micros() / 4);
            let mut to = SimTime::EPOCH + quarter;
            assert!(matches!(
                tero.run_window(&mut world, SimTime::EPOCH, to),
                WindowOutcome::Advanced
            ));
            for _ in 0..16 {
                to += SimDuration::from_secs(1);
                match tero.run_window(&mut world, SimTime::EPOCH, to) {
                    WindowOutcome::Advanced => {}
                    _ => unreachable!("bound is below the horizon"),
                }
            }
            black_box(tero.engine_snapshot().is_some())
        })
    });

    // Long-horizon cleaning: the cost of one more 1-day window must track
    // that window's new data, not the total history (docs/CLEANING.md —
    // the online cleaner seals finished blocks and re-detects only the
    // anchor + tail). Setup drives the run to day `days - 2`; the
    // measured routine executes the *next* 1-day window — same new data
    // in every variant, history growing from 1 to 7 days — so a flat
    // series across `days` is the proof. `min_streamers` is set above
    // any group size so the serving refresh's distribution rebuilds
    // (which legitimately summarise all history, like sketch commits)
    // stay out of the measurement.
    // The same scaling claim from the other side: 16 near-empty sliver
    // windows *after the whole history has been fed and sealed*. A
    // sliver feeds (almost) no new samples, so the cleaner's work is a
    // cursor scan plus an unchanged-membership serving check — if any
    // part of the per-window path re-touched sealed history, this row
    // would grow ~4× from `3` to `9`. It must stay flat.
    for days in [3u64, 5, 9] {
        group.bench_function(BenchmarkId::new("clean_sliver_after_days", days), |b| {
            b.iter_batched(
                || {
                    let mut world = World::build(WorldConfig {
                        seed: 7,
                        n_streamers: 12,
                        days,
                        ..WorldConfig::default()
                    });
                    let tero = Tero {
                        min_streamers: usize::MAX,
                        ..build_tero()
                    };
                    let day = SimDuration::from_hours(24);
                    let mut to = SimTime::EPOCH + day;
                    for _ in 0..days - 1 {
                        assert!(matches!(
                            tero.run_window(&mut world, SimTime::EPOCH, to),
                            WindowOutcome::Advanced
                        ));
                        to += day;
                    }
                    (world, tero, to - day)
                },
                |(mut world, tero, mut to)| {
                    for _ in 0..16 {
                        to += SimDuration::from_secs(1);
                        match tero.run_window(&mut world, SimTime::EPOCH, to) {
                            WindowOutcome::Advanced => {}
                            _ => unreachable!("bound is below the horizon"),
                        }
                    }
                    black_box(to)
                },
                BatchSize::PerIteration,
            )
        });
    }

    for days in [3u64, 5, 9] {
        group.bench_function(BenchmarkId::new("clean_marginal_day", days), |b| {
            b.iter_batched(
                || {
                    let mut world = World::build(WorldConfig {
                        seed: 7,
                        n_streamers: 12,
                        days,
                        ..WorldConfig::default()
                    });
                    let tero = Tero {
                        min_streamers: usize::MAX,
                        ..build_tero()
                    };
                    let day = SimDuration::from_hours(24);
                    let mut to = SimTime::EPOCH + day;
                    for _ in 0..days - 2 {
                        assert!(matches!(
                            tero.run_window(&mut world, SimTime::EPOCH, to),
                            WindowOutcome::Advanced
                        ));
                        to += day;
                    }
                    (world, tero, to)
                },
                |(mut world, tero, to)| {
                    assert!(matches!(
                        tero.run_window(&mut world, SimTime::EPOCH, to),
                        WindowOutcome::Advanced
                    ));
                    black_box(to)
                },
                BatchSize::PerIteration,
            )
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_window
}
criterion_main!(benches);
