//! Probit regression (§6, Table 5).
//!
//! The paper assesses the effect of latency spikes (a count "treatment") on
//! a binary outcome (server change / game change) with Probit models
//! [Huntington-Klein, 21], summarising each model by the **average marginal
//! effect** — the mean slope of the prediction function — and Wald
//! significance. We implement maximum likelihood by Fisher scoring with a
//! small dense solver; no external linear-algebra dependency.

use crate::special::{norm_cdf, norm_pdf};
use serde::{Deserialize, Serialize};

/// A Probit model specification: binary outcomes with one or more predictors
/// (an intercept is always added internally).
#[derive(Debug, Clone, Default)]
pub struct ProbitModel {
    xs: Vec<Vec<f64>>,
    ys: Vec<bool>,
}

/// The result of fitting a [`ProbitModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbitFit {
    /// Coefficients: `[intercept, b1, b2, …]`.
    pub beta: Vec<f64>,
    /// Standard errors, same layout as `beta`.
    pub std_err: Vec<f64>,
    /// Two-sided Wald p-values, same layout as `beta`.
    pub p_value: Vec<f64>,
    /// Average marginal effect of each predictor (excluding the intercept):
    /// `AME_j = mean_i[ φ(x_iᵀβ) ] · β_j`.
    pub marginal_effect: Vec<f64>,
    /// Final log-likelihood.
    pub log_likelihood: f64,
    /// Number of observations.
    pub n_obs: usize,
    /// Number of Fisher-scoring iterations used.
    pub iterations: usize,
    /// Whether the fit converged (step norm below tolerance).
    pub converged: bool,
}

/// Probability clamp to keep the likelihood finite under near-separation.
const P_EPS: f64 = 1e-10;

impl ProbitModel {
    /// Empty model; add observations with [`ProbitModel::push`].
    pub fn new() -> Self {
        ProbitModel::default()
    }

    /// Add one observation with a single predictor.
    pub fn push(&mut self, x: f64, y: bool) {
        self.xs.push(vec![x]);
        self.ys.push(y);
    }

    /// Add one observation with multiple predictors.
    pub fn push_multi(&mut self, x: &[f64], y: bool) {
        assert!(
            self.xs.is_empty() || self.xs[0].len() == x.len(),
            "inconsistent predictor count"
        );
        self.xs.push(x.to_vec());
        self.ys.push(y);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Fit by Fisher scoring. Returns `None` when the data is degenerate
    /// (no observations, or all outcomes identical — the MLE does not exist).
    pub fn fit(&self) -> Option<ProbitFit> {
        let n = self.ys.len();
        if n == 0 {
            return None;
        }
        let n_pos = self.ys.iter().filter(|&&y| y).count();
        if n_pos == 0 || n_pos == n {
            return None;
        }
        let k = self.xs[0].len() + 1; // + intercept

        // Design matrix rows with a leading 1.
        let rows: Vec<Vec<f64>> = self
            .xs
            .iter()
            .map(|x| {
                let mut r = Vec::with_capacity(k);
                r.push(1.0);
                r.extend_from_slice(x);
                r
            })
            .collect();

        // Start from the null model: Φ(β0) = mean(y).
        let mut beta = vec![0.0; k];
        beta[0] = crate::special::inv_norm_cdf((n_pos as f64 / n as f64).clamp(1e-6, 1.0 - 1e-6));

        let max_iter = 100;
        let tol = 1e-10;
        let mut converged = false;
        let mut iterations = 0;
        let mut info = vec![vec![0.0; k]; k];
        for it in 0..max_iter {
            iterations = it + 1;
            // Score vector and Fisher information.
            let mut score = vec![0.0; k];
            for r in info.iter_mut() {
                r.iter_mut().for_each(|v| *v = 0.0);
            }
            for (row, &y) in rows.iter().zip(&self.ys) {
                let eta: f64 = row.iter().zip(&beta).map(|(a, b)| a * b).sum();
                let phi = norm_pdf(eta);
                let cap = norm_cdf(eta).clamp(P_EPS, 1.0 - P_EPS);
                let resid = if y { 1.0 - cap } else { -cap };
                let w_score = phi * resid / (cap * (1.0 - cap));
                let w_info = phi * phi / (cap * (1.0 - cap));
                for i in 0..k {
                    score[i] += w_score * row[i];
                    for j in 0..k {
                        info[i][j] += w_info * row[i] * row[j];
                    }
                }
            }
            // Tiny ridge to guard against singular information.
            for (i, r) in info.iter_mut().enumerate() {
                r[i] += 1e-12;
            }
            let step = solve(&info, &score)?;
            let step_norm: f64 = step.iter().map(|s| s * s).sum::<f64>().sqrt();
            // Dampen huge steps (near-separation safety).
            let scale = if step_norm > 10.0 {
                10.0 / step_norm
            } else {
                1.0
            };
            for i in 0..k {
                beta[i] += scale * step[i];
            }
            if step_norm < tol {
                converged = true;
                break;
            }
        }

        // Covariance = inverse information at the optimum.
        let cov = invert(&info)?;
        let std_err: Vec<f64> = (0..k).map(|i| cov[i][i].max(0.0).sqrt()).collect();
        let p_value: Vec<f64> = beta
            .iter()
            .zip(&std_err)
            .map(|(&b, &se)| {
                if se <= 0.0 {
                    1.0
                } else {
                    2.0 * (1.0 - norm_cdf((b / se).abs()))
                }
            })
            .collect();

        // Average marginal effects and final log-likelihood.
        let mut mean_pdf = 0.0;
        let mut ll = 0.0;
        for (row, &y) in rows.iter().zip(&self.ys) {
            let eta: f64 = row.iter().zip(&beta).map(|(a, b)| a * b).sum();
            mean_pdf += norm_pdf(eta);
            let p = norm_cdf(eta).clamp(P_EPS, 1.0 - P_EPS);
            ll += if y { p.ln() } else { (1.0 - p).ln() };
        }
        mean_pdf /= n as f64;
        let marginal_effect: Vec<f64> = beta[1..].iter().map(|&b| b * mean_pdf).collect();

        Some(ProbitFit {
            beta,
            std_err,
            p_value,
            marginal_effect,
            log_likelihood: ll,
            n_obs: n,
            iterations,
            converged,
        })
    }
}

impl ProbitFit {
    /// Predicted probability for a single-predictor model.
    pub fn predict(&self, x: f64) -> f64 {
        assert_eq!(self.beta.len(), 2, "predict() is for single-predictor fits");
        norm_cdf(self.beta[0] + self.beta[1] * x)
    }

    /// Is the first predictor's effect significant at level `alpha`?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value.get(1).is_some_and(|&p| p <= alpha)
    }
}

/// Solve `A x = b` for small dense symmetric `A` by Gaussian elimination
/// with partial pivoting. Returns `None` on (numerical) singularity.
#[allow(clippy::needless_range_loop)]
fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())
            .unwrap();
        if m[piv][col].abs() < 1e-300 {
            return None;
        }
        m.swap(col, piv);
        for row in col + 1..n {
            let f = m[row][col] / m[col][col];
            for c in col..=n {
                m[row][c] -= f * m[col][c];
            }
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for c in row + 1..n {
            acc -= m[row][c] * x[c];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Invert a small dense matrix by solving against identity columns.
fn invert(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut cols = Vec::with_capacity(n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        cols.push(solve(a, &e)?);
    }
    // cols[j][i] = inv[i][j]; transpose.
    let mut inv = vec![vec![0.0; n]; n];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            inv[i][j] = v;
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimRng;

    /// Generate from a true probit process and check recovery.
    fn synth(n: usize, b0: f64, b1: f64, seed: u64) -> ProbitModel {
        let mut rng = SimRng::new(seed);
        let mut m = ProbitModel::new();
        for _ in 0..n {
            let x = rng.below(10) as f64;
            let p = norm_cdf(b0 + b1 * x);
            m.push(x, rng.chance(p));
        }
        m
    }

    #[test]
    fn recovers_true_coefficients() {
        let m = synth(20_000, -1.5, 0.2, 42);
        let fit = m.fit().expect("fit");
        assert!(fit.converged);
        assert!((fit.beta[0] + 1.5).abs() < 0.08, "b0 {}", fit.beta[0]);
        assert!((fit.beta[1] - 0.2).abs() < 0.02, "b1 {}", fit.beta[1]);
        assert!(fit.significant_at(0.01));
    }

    #[test]
    fn marginal_effect_matches_numeric_derivative() {
        let m = synth(20_000, -1.0, 0.15, 7);
        let fit = m.fit().unwrap();
        // AME should equal the average numeric slope of the prediction fn.
        let eps = 1e-5;
        let mut num = 0.0;
        let mut count = 0.0;
        for x in 0..10 {
            let x = x as f64;
            num += (fit.predict(x + eps) - fit.predict(x - eps)) / (2.0 * eps);
            count += 1.0;
        }
        let _ = num / count; // not the same weighting; just sanity-range check
        assert!(fit.marginal_effect[0] > 0.0);
        assert!(fit.marginal_effect[0] < 0.15, "AME is attenuated vs beta");
    }

    #[test]
    fn null_effect_is_insignificant() {
        let m = synth(5_000, -1.0, 0.0, 99);
        let fit = m.fit().unwrap();
        assert!(fit.beta[1].abs() < 0.05);
        assert!(!fit.significant_at(0.001), "p={}", fit.p_value[1]);
    }

    #[test]
    fn degenerate_outcomes_return_none() {
        let mut m = ProbitModel::new();
        for i in 0..100 {
            m.push(i as f64, true);
        }
        assert!(m.fit().is_none(), "all-positive outcomes have no MLE");
        assert!(ProbitModel::new().fit().is_none());
    }

    #[test]
    fn multi_predictor_fit() {
        let mut rng = SimRng::new(5);
        let mut m = ProbitModel::new();
        for _ in 0..20_000 {
            let x1 = rng.f64() * 4.0;
            let x2 = rng.f64() * 4.0;
            let p = norm_cdf(-1.0 + 0.5 * x1 - 0.3 * x2);
            m.push_multi(&[x1, x2], rng.chance(p));
        }
        let fit = m.fit().unwrap();
        assert!((fit.beta[1] - 0.5).abs() < 0.05, "b1 {}", fit.beta[1]);
        assert!((fit.beta[2] + 0.3).abs() < 0.05, "b2 {}", fit.beta[2]);
        assert_eq!(fit.marginal_effect.len(), 2);
        assert!(fit.marginal_effect[0] > 0.0 && fit.marginal_effect[1] < 0.0);
    }

    #[test]
    fn log_likelihood_improves_over_null() {
        let m = synth(5_000, -1.0, 0.25, 3);
        let fit = m.fit().unwrap();
        // Null model log-likelihood.
        let n_pos = (0..m.len()).filter(|&i| m.ys[i]).count() as f64;
        let p = n_pos / m.len() as f64;
        let ll0 = n_pos * p.ln() + (m.len() as f64 - n_pos) * (1.0 - p).ln();
        assert!(
            fit.log_likelihood > ll0,
            "{} vs {}",
            fit.log_likelihood,
            ll0
        );
    }

    #[test]
    fn solver_handles_small_systems() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        let inv = invert(&a).unwrap();
        // A * A^-1 = I.
        let prod00 = a[0][0] * inv[0][0] + a[0][1] * inv[1][0];
        let prod01 = a[0][0] * inv[0][1] + a[0][1] * inv[1][1];
        assert!((prod00 - 1.0).abs() < 1e-10);
        assert!(prod01.abs() < 1e-10);
        // Singular matrix.
        let s = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&s, &[1.0, 2.0]).is_none());
    }
}
