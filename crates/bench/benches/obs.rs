//! Observability-substrate overhead: what one counter bump, one gauge
//! update, and one `StageTimer` cost on the pipeline's hot paths. The
//! numbers feed docs/OPERATIONS.md's overhead table; the key claim is that
//! a *disabled* timer (the default) costs one atomic load and never reads
//! the clock.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tero_obs::Registry;

fn bench_counters(c: &mut Criterion) {
    let registry = Registry::new();
    let hits = registry.counter("bench.hits");
    let mut group = c.benchmark_group("obs");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("counter_inc_1k", |b| {
        b.iter(|| {
            for _ in 0..1_000 {
                hits.inc();
            }
            hits.get()
        })
    });
    let depth = registry.gauge("bench.depth");
    group.bench_function("gauge_set_1k", |b| {
        b.iter(|| {
            for i in 0..1_000i64 {
                depth.set(i);
            }
            depth.get()
        })
    });
    let lat = registry.histogram("bench.lat");
    group.bench_function("histogram_record_1k", |b| {
        b.iter(|| {
            for i in 0..1_000u64 {
                lat.record(i * 37 + 1);
            }
            lat.count()
        })
    });
    group.finish();
}

fn bench_stage_timer(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.throughput(Throughput::Elements(1_000));

    // Default configuration: timing off. The guard must be ~free.
    let off = Registry::new();
    let h_off = off.histogram("bench.off_us");
    group.bench_function("stage_timer_disabled_1k", |b| {
        b.iter(|| {
            for _ in 0..1_000 {
                let _t = off.stage_timer(&h_off);
            }
            h_off.count()
        })
    });

    // Opt-in configuration: timing on — two clock reads + one record.
    let on = Registry::new();
    on.set_timing(true);
    let h_on = on.histogram("bench.on_us");
    group.bench_function("stage_timer_enabled_1k", |b| {
        b.iter(|| {
            for _ in 0..1_000 {
                let _t = on.stage_timer(&h_on);
            }
            h_on.count()
        })
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // A registry shaped like a real pipeline run: ~40 metrics.
    let registry = Registry::new();
    for i in 0..20 {
        registry.counter(&format!("stage.counter_{i}")).add(i);
    }
    for i in 0..10 {
        registry.gauge(&format!("stage.gauge_{i}")).set(i as i64);
    }
    for i in 0..10 {
        let h = registry.histogram(&format!("stage.hist_{i}"));
        for v in 0..100u64 {
            h.record(v * (i + 1));
        }
    }
    c.bench_function("obs/snapshot_40_metrics", |b| {
        b.iter(|| registry.snapshot().metric_names().len())
    });
}

criterion_group!(benches, bench_counters, bench_stage_timer, bench_snapshot);
criterion_main!(benches);
