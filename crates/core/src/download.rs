//! The download module (App. A).
//!
//! A *coordinator* polls the Twitch API (respecting its rate limit) to
//! detect streamers coming online, and hands their thumbnail URLs to lean
//! *downloaders* through the key-value store. Each downloader races the
//! CDN's 5-minute overwrite: it HEADs the URL to learn when the next
//! thumbnail lands, GETs it in time, stores the image in the object store
//! and pushes a processing task onto the work queue. Offline URLs redirect,
//! at which point the downloader signals the coordinator through the store.
//!
//! Load balancing follows the paper: "a downloader takes on a new streamer
//! whenever it becomes idle" — here, new URLs go to the downloader with
//! the fewest assignments.
//!
//! ## Failure handling
//!
//! The module survives every fault class `tero-chaos` can inject:
//!
//! * **API 5xx** on `Get Streams` → bounded retries with exponential
//!   backoff and deterministic jitter, then skip to the next regular poll;
//! * **CDN timeouts and truncated payloads** (detected via the
//!   content-length the header promises) → per-assignment retry/backoff,
//!   escalating to a circuit breaker that opens after
//!   [`DownloadModule::breaker_threshold`] consecutive faults and
//!   half-opens with a single probe after
//!   [`DownloadModule::breaker_cooldown`];
//! * **Downloader crashes** → the coordinator notices on its next poll and
//!   moves the dead worker's streamers to the least-loaded survivor
//!   (deterministically, in assignment-id order);
//! * **Lost KV writes** → `active:*` registrations are TTL leases,
//!   refreshed on every successful fetch and swept each poll; a lapsed
//!   lease releases the assignment so the coordinator re-acquires it;
//! * **Poison queue entries** → quarantined onto the
//!   `queue:thumbs:dead` dead-letter list instead of silently dropped.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tero_obs::Registry;
use tero_store::{KvStore, ObjectStore};
use tero_trace::{Level, Tracer};
use tero_types::{GameId, SimDuration, SimRng, SimTime, StreamerId};
use tero_world::twitch::{ApiError, CdnResponse};
use tero_world::World;

/// KV list holding tasks that could not be processed (undecodable queue
/// entries, corrupt stored payloads). Never dropped silently; drained via
/// [`DownloadModule::drain_dead_letters`].
pub const DEAD_LETTER_QUEUE: &str = "queue:thumbs:dead";

/// Percent-escape a task field so `|` can never masquerade as the
/// separator (`%` itself is escaped first so decoding is unambiguous).
fn escape_field(s: &str) -> String {
    s.replace('%', "%25").replace('|', "%7C")
}

/// Reverse [`escape_field`]. Returns `None` for malformed escapes — the
/// caller routes such entries to the dead-letter list.
fn unescape_field(s: &str) -> Option<String> {
    if !s.contains('%') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// A downloaded-thumbnail task pushed onto the processing queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ThumbnailTask {
    /// The broadcaster.
    pub streamer: StreamerId,
    /// The game label on the stream at download time.
    pub game_label: GameId,
    /// Content timestamp of the thumbnail.
    pub generated_at: SimTime,
    /// Object-store key of the stored image.
    pub object_key: String,
}

impl ThumbnailTask {
    /// Serialise for the KV work queue. The username is percent-escaped so
    /// a `|` in it cannot corrupt the field layout.
    pub fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            escape_field(self.streamer.as_str()),
            self.game_label.slug(),
            self.generated_at.as_micros(),
            self.object_key
        )
    }

    /// Parse a queue entry. `None` means the entry is malformed and should
    /// be dead-lettered.
    pub fn decode(s: &str) -> Option<ThumbnailTask> {
        let mut parts = s.splitn(4, '|');
        let streamer = StreamerId::new(&unescape_field(parts.next()?)?);
        let slug = parts.next()?;
        let game_label = GameId::ALL.into_iter().find(|g| g.slug() == slug)?;
        let generated_at = SimTime::from_micros(parts.next()?.parse().ok()?);
        let object_key = parts.next()?.to_string();
        Some(ThumbnailTask {
            streamer,
            game_label,
            generated_at,
            object_key,
        })
    }
}

/// Statistics of one download run. With the same world seed and the same
/// fault plan, two runs produce byte-identical stats (fault injection and
/// recovery are fully deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DownloadStats {
    /// API polls issued.
    pub polls: u64,
    /// Polls rejected by the rate limiter.
    pub rate_limited: u64,
    /// Polls failed by transient API 5xx errors.
    pub api_errors: u64,
    /// Thumbnails fetched and stored.
    pub downloaded: u64,
    /// Thumbnails lost to CDN overwrites (a new thumbnail replaced one we
    /// never fetched).
    pub missed: u64,
    /// Offline redirects observed.
    pub offline_signals: u64,
    /// CDN fetches that timed out or arrived truncated.
    pub cdn_faults: u64,
    /// Backoff retries scheduled (poll and fetch paths).
    pub retries: u64,
    /// Circuit-breaker trips (including half-open probes that re-opened).
    pub breaker_trips: u64,
    /// Assignments moved off a crashed downloader.
    pub reassigned: u64,
    /// Expired TTL keys removed by the per-poll sweep.
    pub swept: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Assignment {
    url: String,
    streamer: StreamerId,
    game_label: GameId,
    last_generated: Option<SimTime>,
    downloader: usize,
    /// Consecutive CDN faults since the last clean fetch.
    consecutive_faults: u32,
    /// When the circuit breaker re-closes enough to allow one probe.
    breaker_until: Option<SimTime>,
    /// The next fetch is the breaker's single half-open probe.
    half_open: bool,
    /// The assignment's fetch-event chain died on a crashed downloader and
    /// must be restarted when the assignment is reassigned.
    chain_dead: bool,
}

impl Assignment {
    fn new(url: String, streamer: StreamerId, game_label: GameId, downloader: usize) -> Self {
        Assignment {
            url,
            streamer,
            game_label,
            last_generated: None,
            downloader,
            consecutive_faults: 0,
            breaker_until: None,
            half_open: false,
            chain_dead: false,
        }
    }

    /// Admission decision at fetch time. A closed breaker admits
    /// everything; an open one swallows stray events before the cooldown
    /// elapses and admits the scheduled probe as the single half-open
    /// attempt.
    fn breaker_admits(&mut self, at: SimTime) -> bool {
        if let Some(break_until) = self.breaker_until {
            if at < break_until {
                return false;
            }
            self.half_open = true;
        }
        true
    }

    /// Record a faulted fetch. Returns `Some(reopen_at)` when the
    /// breaker tripped — the fault streak reached `threshold`, or the
    /// half-open probe itself failed and re-opened it — and the caller
    /// should schedule the next probe at `reopen_at`; `None` means stay
    /// closed and back off normally.
    fn breaker_on_fault(
        &mut self,
        at: SimTime,
        threshold: u32,
        cooldown: SimDuration,
    ) -> Option<SimTime> {
        self.consecutive_faults += 1;
        let failed_probe = self.half_open;
        self.half_open = false;
        if failed_probe || self.consecutive_faults >= threshold {
            let reopen_at = at + cooldown;
            self.breaker_until = Some(reopen_at);
            Some(reopen_at)
        } else {
            None
        }
    }

    /// A clean fetch closes the breaker and clears the fault streak —
    /// whether it was the half-open probe or an ordinary fetch.
    fn breaker_on_success(&mut self) {
        self.consecutive_faults = 0;
        self.breaker_until = None;
        self.half_open = false;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Ev {
    Poll,
    Fetch(u32),     // assignment id
    Crash(usize),   // downloader index dies
    Recover(usize), // downloader index comes back
}

#[derive(Debug, PartialEq, Eq)]
struct HeapEv(SimTime, u64, Ev);
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Resumable state of a windowed download run.
///
/// A cursor pins the run's global bounds `[from, until]` and carries
/// everything the event loop needs across windows: the pending event
/// heap (with its sequence counter, so replayed pop order is exact), the
/// assignment table, per-downloader load/busy/alive state, the retry-
/// jitter RNG, and the cumulative [`DownloadStats`]. Driving it through
/// [`DownloadModule::run_cursor`] over any increasing window schedule
/// performs exactly the same world calls, in the same order, as a single
/// full-range [`DownloadModule::run`].
///
/// Cursors serialize (`serde`) so the engine can persist one at each
/// window commit and a fresh process can resume from the persisted copy.
#[derive(Debug)]
pub struct DownloadCursor {
    from: SimTime,
    until: SimTime,
    /// Where the next window starts (trace span bookkeeping only).
    window_start: SimTime,
    initialized: bool,
    heap: BinaryHeap<Reverse<HeapEv>>,
    seq: u64,
    assignments: HashMap<u32, Assignment>,
    next_assignment_id: u32,
    downloader_load: Vec<usize>,
    downloader_busy_until: Vec<SimTime>,
    downloader_alive: Vec<bool>,
    retry_rng: SimRng,
    poll_error_streak: u32,
    stats: DownloadStats,
}

impl DownloadCursor {
    /// A fresh cursor covering `[from, until]`. Worker vectors, the retry
    /// RNG and the initial poll/crash events are installed lazily by the
    /// first [`DownloadModule::run_cursor`] call (they depend on module
    /// knobs).
    pub fn new(from: SimTime, until: SimTime) -> DownloadCursor {
        DownloadCursor {
            from,
            until,
            window_start: from,
            initialized: false,
            heap: BinaryHeap::new(),
            seq: 0,
            assignments: HashMap::new(),
            next_assignment_id: 0,
            downloader_load: Vec::new(),
            downloader_busy_until: Vec::new(),
            downloader_alive: Vec::new(),
            retry_rng: SimRng::new(0),
            poll_error_streak: 0,
            stats: DownloadStats::default(),
        }
    }

    /// Cumulative statistics across every window driven so far.
    pub fn stats(&self) -> &DownloadStats {
        &self.stats
    }

    /// The run's global bounds, `(from, until)`.
    pub fn bounds(&self) -> (SimTime, SimTime) {
        (self.from, self.until)
    }

    /// Whether every pending event has been processed (no work remains at
    /// any window end).
    pub fn is_drained(&self) -> bool {
        self.initialized && self.heap.is_empty()
    }
}

/// Serde mirror of [`DownloadCursor`]: the heap flattens to events sorted
/// by `(time, seq)` and the assignment table to id-sorted pairs, so equal
/// cursors serialize byte-identically.
#[derive(Serialize, Deserialize)]
struct CursorRepr {
    from: SimTime,
    until: SimTime,
    window_start: SimTime,
    initialized: bool,
    events: Vec<(SimTime, u64, Ev)>,
    seq: u64,
    assignments: Vec<(u32, Assignment)>,
    next_assignment_id: u32,
    downloader_load: Vec<usize>,
    downloader_busy_until: Vec<SimTime>,
    downloader_alive: Vec<bool>,
    retry_rng: SimRng,
    poll_error_streak: u32,
    stats: DownloadStats,
}

impl Serialize for DownloadCursor {
    fn serialize(&self) -> serde::Value {
        let mut events: Vec<(SimTime, u64, Ev)> = self
            .heap
            .iter()
            .map(|Reverse(HeapEv(at, seq, ev))| (*at, *seq, *ev))
            .collect();
        events.sort_by_key(|&(at, seq, _)| (at, seq));
        let mut assignments: Vec<(u32, Assignment)> = self
            .assignments
            .iter()
            .map(|(id, a)| (*id, a.clone()))
            .collect();
        assignments.sort_by_key(|&(id, _)| id);
        CursorRepr {
            from: self.from,
            until: self.until,
            window_start: self.window_start,
            initialized: self.initialized,
            events,
            seq: self.seq,
            assignments,
            next_assignment_id: self.next_assignment_id,
            downloader_load: self.downloader_load.clone(),
            downloader_busy_until: self.downloader_busy_until.clone(),
            downloader_alive: self.downloader_alive.clone(),
            retry_rng: self.retry_rng.clone(),
            poll_error_streak: self.poll_error_streak,
            stats: self.stats.clone(),
        }
        .serialize()
    }
}

impl Deserialize for DownloadCursor {
    fn deserialize(v: &serde::Value) -> Result<DownloadCursor, serde::Error> {
        let repr = CursorRepr::deserialize(v)?;
        Ok(DownloadCursor {
            from: repr.from,
            until: repr.until,
            window_start: repr.window_start,
            initialized: repr.initialized,
            heap: repr
                .events
                .into_iter()
                .map(|(at, seq, ev)| Reverse(HeapEv(at, seq, ev)))
                .collect(),
            seq: repr.seq,
            assignments: repr.assignments.into_iter().collect(),
            next_assignment_id: repr.next_assignment_id,
            downloader_load: repr.downloader_load,
            downloader_busy_until: repr.downloader_busy_until,
            downloader_alive: repr.downloader_alive,
            retry_rng: repr.retry_rng,
            poll_error_streak: repr.poll_error_streak,
            stats: repr.stats,
        })
    }
}

/// The download module.
pub struct DownloadModule {
    kv: KvStore,
    objects: ObjectStore,
    obs: Registry,
    trace: Tracer,
    /// How often the coordinator polls `Get Streams`.
    pub poll_interval: SimDuration,
    /// Number of downloader workers.
    pub downloaders: usize,
    /// Time a downloader spends fetching one thumbnail (serialised per
    /// worker — the reason the coordinator/downloader split exists).
    pub fetch_cost: SimDuration,
    /// Maximum consecutive backoff retries before giving up on a round
    /// (API polls skip to the next regular poll; fetches defer to the
    /// circuit breaker, which trips first at the default settings).
    pub max_retries: u32,
    /// First-retry backoff; doubles per attempt, plus deterministic jitter.
    pub backoff_base: SimDuration,
    /// Consecutive CDN faults on one assignment that trip its breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before its half-open probe.
    pub breaker_cooldown: SimDuration,
    /// Cooldown after an offline redirect before the streamer may be
    /// re-acquired (must stay below `poll_interval` so a comeback is
    /// picked up on the next poll after expiry).
    pub offline_cooldown: SimDuration,
    /// TTL of the `active:*` lease; refreshed on every successful fetch.
    pub active_ttl: SimDuration,
    /// Seed of the retry-jitter stream (independent of the world seed).
    pub retry_seed: u64,
    /// Advisory starvation signal from the ops layer (a
    /// [`tero_ops::HealthReport::starvation`] verdict, refreshed by the
    /// operator between runs). Strictly read-only and off by default:
    /// when set, each coordinator poll acknowledges the advice by
    /// bumping `download.advisory_polls`, but no scheduling decision
    /// changes — `tests/observability.rs` pins that the off path and
    /// the on path produce byte-identical download results.
    pub starvation_advisory: Option<tero_ops::Starvation>,
}

/// Metric handles resolved once per [`DownloadModule::run`] — bumping them
/// inside the event loop is lock-free.
struct DownloadObs {
    polls: tero_obs::CounterHandle,
    rate_limited: tero_obs::CounterHandle,
    api_errors: tero_obs::CounterHandle,
    get_attempts: tero_obs::CounterHandle,
    get_hits: tero_obs::CounterHandle,
    same_content: tero_obs::CounterHandle,
    fetch_deferred: tero_obs::CounterHandle,
    overwrite_missed: tero_obs::CounterHandle,
    offline_signals: tero_obs::CounterHandle,
    assignments: tero_obs::CounterHandle,
    idle_steals: tero_obs::CounterHandle,
    cdn_timeouts: tero_obs::CounterHandle,
    retries: tero_obs::CounterHandle,
    backoff_us: tero_obs::HistogramHandle,
    breaker_open: tero_obs::CounterHandle,
    reassigned: tero_obs::CounterHandle,
    ttl_swept: tero_obs::CounterHandle,
    queue_depth: tero_obs::HistogramHandle,
    downloader_load: tero_obs::GaugeHandle,
    advisory_polls: tero_obs::CounterHandle,
}

impl DownloadObs {
    fn resolve(obs: &Registry) -> Self {
        // Registered eagerly (at zero) so the metric catalogue stays
        // complete even on fault-free runs.
        let _ = obs.counter("download.dead_letter");
        let _ = obs.counter("download.decode_failures");
        DownloadObs {
            polls: obs.counter("download.polls"),
            rate_limited: obs.counter("download.rate_limited"),
            api_errors: obs.counter("download.api_errors"),
            get_attempts: obs.counter("download.get_attempts"),
            get_hits: obs.counter("download.get_hits"),
            same_content: obs.counter("download.same_content"),
            fetch_deferred: obs.counter("download.fetch_deferred"),
            overwrite_missed: obs.counter("download.overwrite_missed"),
            offline_signals: obs.counter("download.offline_signals"),
            assignments: obs.counter("download.assignments"),
            idle_steals: obs.counter("download.idle_steals"),
            cdn_timeouts: obs.counter("download.cdn_timeouts"),
            retries: obs.counter("download.retries"),
            backoff_us: obs.histogram("download.backoff_us"),
            breaker_open: obs.counter("download.breaker_open"),
            reassigned: obs.counter("download.reassigned"),
            ttl_swept: obs.counter("download.ttl_swept"),
            queue_depth: obs.histogram("download.queue_depth"),
            downloader_load: obs.gauge("download.downloader_load"),
            advisory_polls: obs.counter("download.advisory_polls"),
        }
    }
}

/// `base * 2^(attempt-1)` with the exponent capped, plus deterministic
/// jitter in `[0, base)` drawn from the dedicated retry stream.
fn backoff_delay(base: SimDuration, attempt: u32, rng: &mut SimRng) -> SimDuration {
    let shift = attempt.saturating_sub(1).min(10);
    let scaled = base.as_micros().saturating_mul(1u64 << shift);
    SimDuration::from_micros(scaled + rng.below(base.as_micros().max(1)))
}

impl DownloadModule {
    /// A module writing into the given stores.
    pub fn new(kv: KvStore, objects: ObjectStore) -> Self {
        DownloadModule {
            kv,
            objects,
            obs: Registry::new(),
            trace: Tracer::new(),
            poll_interval: SimDuration::from_mins(2),
            downloaders: 4,
            fetch_cost: SimDuration::from_millis(500),
            max_retries: 4,
            backoff_base: SimDuration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_mins(2),
            offline_cooldown: SimDuration::from_secs(90),
            active_ttl: SimDuration::from_hours(2),
            retry_seed: 0x5eed_cafe,
            starvation_advisory: None,
        }
    }

    /// Record this module's metrics (`download.*`) into `registry` instead
    /// of the private default registry.
    pub fn instrument(&mut self, registry: &Registry) {
        self.obs = registry.clone();
    }

    /// Journal this module's spans and recovery events through `tracer`
    /// (the `download.run` span, breaker trips, crash reassignments,
    /// dead-letter quarantines). A no-op unless the tracer is enabled.
    pub fn set_trace(&mut self, tracer: &Tracer) {
        self.trace = tracer.clone();
    }

    /// Run the module against the world from `from` to `until` (logical
    /// time). Thumbnails land in the object store (bucket `thumbs`) and
    /// tasks on the KV list `queue:thumbs`.
    ///
    /// Implemented as one full-range window over a fresh
    /// [`DownloadCursor`]; windowed callers drive
    /// [`DownloadModule::run_cursor`] directly.
    pub fn run(&mut self, world: &mut World, from: SimTime, until: SimTime) -> DownloadStats {
        let mut cursor = DownloadCursor::new(from, until);
        self.run_cursor(world, &mut cursor, until);
        cursor.stats
    }

    /// Advance `cursor` through every pending event at or before
    /// `window_end` (clamped to the cursor's global `until` bound).
    ///
    /// The first call installs the initial poll, the planned crash
    /// windows, and the `active:*` lease recovery exactly as a full run
    /// would; later calls resume from the persisted heap. Driving one
    /// cursor over any increasing schedule of window ends makes exactly
    /// the same world calls in the same order as a single full-range
    /// [`DownloadModule::run`], so stats, stores and metrics stay
    /// byte-identical.
    pub fn run_cursor(
        &mut self,
        world: &mut World,
        cursor: &mut DownloadCursor,
        window_end: SimTime,
    ) {
        let window_end = window_end.min(cursor.until);
        let obs = DownloadObs::resolve(&self.obs);
        let run_us = self.obs.histogram("download.run_us");
        let _run_timer = self.obs.stage_timer(&run_us);
        let sp_run = self.trace.span_at("download.run", cursor.window_start);
        let from = cursor.from;
        let until = cursor.until;
        let chaos = world.chaos().cloned();
        let init = !cursor.initialized;
        if init {
            cursor.initialized = true;
            cursor.retry_rng = SimRng::new(self.retry_seed);
            cursor.downloader_load = vec![0usize; self.downloaders.max(1)];
            cursor.downloader_busy_until = vec![SimTime::EPOCH; self.downloaders.max(1)];
            cursor.downloader_alive = vec![true; self.downloaders.max(1)];
        }
        let mut seq = cursor.seq;
        let mut next_assignment_id = cursor.next_assignment_id;
        let mut poll_error_streak = cursor.poll_error_streak;
        let mut retry_rng = cursor.retry_rng.clone();
        let mut stats = std::mem::take(&mut cursor.stats);
        let heap = &mut cursor.heap;
        let assignments = &mut cursor.assignments;
        let downloader_load = &mut cursor.downloader_load;
        let downloader_busy_until = &mut cursor.downloader_busy_until;
        let downloader_alive = &mut cursor.downloader_alive;
        let push = |heap: &mut BinaryHeap<Reverse<HeapEv>>, seq: &mut u64, at: SimTime, ev: Ev| {
            *seq += 1;
            heap.push(Reverse(HeapEv(at, *seq, ev)));
        };

        if init {
            push(heap, &mut seq, from, Ev::Poll);

            // Planned crash windows come from the world's fault injector.
            if let Some(chaos) = &chaos {
                for w in chaos.crash_windows() {
                    if w.downloader >= downloader_alive.len() || w.until <= from || w.at >= until {
                        continue;
                    }
                    push(heap, &mut seq, w.at.max(from), Ev::Crash(w.downloader));
                    push(heap, &mut seq, w.until, Ev::Recover(w.downloader));
                }
            }

            // Drop leases that expired while the module was down, then
            // rebuild the assignment table from the survivors.
            stats.swept += self.kv.sweep_expired(from) as u64;

            // Crash recovery (App. A/B): after a restart, the coordinator
            // rebuilds its assignment table from the `active:*` keys
            // persisted in the KV store, so streamers being tracked before
            // the crash keep being downloaded without waiting for the next
            // status change.
            for key in self.kv.keys_with_prefix("active:") {
                let Some(url) = self.kv.get(&key) else {
                    continue;
                };
                let username = key.trim_start_matches("active:");
                let streamer = StreamerId::new(username);
                let game_label = self
                    .kv
                    .get(&format!("game:{username}"))
                    .and_then(|slug| GameId::ALL.into_iter().find(|g| g.slug() == slug))
                    .unwrap_or(GameId::LeagueOfLegends);
                let d = (0..downloader_load.len())
                    .min_by_key(|&i| downloader_load[i])
                    .unwrap_or(0);
                obs.assignments.inc();
                if downloader_load[d] == 0 {
                    obs.idle_steals.inc();
                }
                downloader_load[d] += 1;
                obs.queue_depth.record(downloader_load[d] as u64);
                obs.downloader_load.set(downloader_load[d] as i64);
                let id = next_assignment_id;
                next_assignment_id += 1;
                assignments.insert(id, Assignment::new(url, streamer, game_label, d));
                push(heap, &mut seq, from, Ev::Fetch(id));
            }
        }

        loop {
            match heap.peek() {
                Some(Reverse(HeapEv(at, _, _))) if *at <= window_end => {}
                _ => break,
            }
            let Reverse(HeapEv(at, _, ev)) = heap.pop().expect("peeked above");
            match ev {
                Ev::Poll => {
                    // Acknowledge the advisory signal (observability
                    // only: no scheduling decision depends on it).
                    if self.starvation_advisory.is_some() {
                        obs.advisory_polls.inc();
                    }
                    // Expire lapsed TTL keys (`active:*` leases, offline
                    // cooldowns) before reading any of them.
                    let swept = self.kv.sweep_expired(at);
                    stats.swept += swept as u64;
                    obs.ttl_swept.add(swept as u64);

                    // Detect dead downloaders and move their streamers to
                    // the least-loaded survivor. Ids are visited sorted so
                    // the reassignment is deterministic.
                    let mut dead_ids: Vec<u32> = assignments
                        .iter()
                        .filter(|(_, a)| !downloader_alive[a.downloader])
                        .map(|(id, _)| *id)
                        .collect();
                    dead_ids.sort_unstable();
                    for id in dead_ids {
                        let Some(target) = (0..downloader_load.len())
                            .filter(|&i| downloader_alive[i])
                            .min_by_key(|&i| downloader_load[i])
                        else {
                            break; // every downloader is down; wait for a recovery
                        };
                        let a = assignments.get_mut(&id).expect("id collected above");
                        let old = a.downloader;
                        downloader_load[old] = downloader_load[old].saturating_sub(1);
                        a.downloader = target;
                        downloader_load[target] += 1;
                        obs.reassigned.inc();
                        obs.queue_depth.record(downloader_load[target] as u64);
                        obs.downloader_load.set(downloader_load[target] as i64);
                        stats.reassigned += 1;
                        sp_run.event_at(
                            Level::Warn,
                            format!("assignment {id} moved off crashed downloader {old}"),
                            at,
                        );
                        if a.chain_dead {
                            a.chain_dead = false;
                            push(heap, &mut seq, at, Ev::Fetch(id));
                        }
                    }

                    match world.twitch.get_streams(at) {
                        Ok(listings) => {
                            poll_error_streak = 0;
                            stats.polls += 1;
                            obs.polls.inc();
                            for l in &listings {
                                let user = l.streamer.as_str();
                                // Recently went offline: let the cooldown
                                // lapse before re-acquiring.
                                if self.kv.exists(&format!("cooldown:{user}")) {
                                    continue;
                                }
                                let key = format!("active:{user}");
                                if self.kv.exists(&key) {
                                    continue;
                                }
                                self.kv
                                    .set_with_ttl(&key, &l.thumbnail_url, at + self.active_ttl);
                                self.kv.set(&format!("game:{user}"), l.game_label.slug());
                                // Record country tags for the location
                                // module's tag recovery.
                                if let Some(tag) = &l.country_tag {
                                    self.kv.rpush(&format!("tags:{user}"), tag.clone());
                                }
                                // Least-loaded alive downloader takes the URL.
                                let Some(d) = (0..downloader_load.len())
                                    .filter(|&i| downloader_alive[i])
                                    .min_by_key(|&i| downloader_load[i])
                                else {
                                    // Total outage: drop the lease so a later
                                    // poll re-acquires once someone recovers.
                                    self.kv.del(&key);
                                    continue;
                                };
                                obs.assignments.inc();
                                if downloader_load[d] == 0 {
                                    obs.idle_steals.inc();
                                }
                                downloader_load[d] += 1;
                                obs.queue_depth.record(downloader_load[d] as u64);
                                obs.downloader_load.set(downloader_load[d] as i64);
                                let id = next_assignment_id;
                                next_assignment_id += 1;
                                assignments.insert(
                                    id,
                                    Assignment::new(
                                        l.thumbnail_url.clone(),
                                        l.streamer.clone(),
                                        l.game_label,
                                        d,
                                    ),
                                );
                                push(heap, &mut seq, at, Ev::Fetch(id));
                            }
                        }
                        Err(ApiError::RateLimited(limited)) => {
                            stats.rate_limited += 1;
                            obs.rate_limited.inc();
                            push(heap, &mut seq, limited.retry_at, Ev::Poll);
                            continue;
                        }
                        Err(ApiError::ServerError) => {
                            stats.api_errors += 1;
                            obs.api_errors.inc();
                            poll_error_streak += 1;
                            if poll_error_streak <= self.max_retries {
                                let delay = backoff_delay(
                                    self.backoff_base,
                                    poll_error_streak,
                                    &mut retry_rng,
                                );
                                stats.retries += 1;
                                obs.retries.inc();
                                obs.backoff_us.record(delay.as_micros());
                                push(heap, &mut seq, at + delay, Ev::Poll);
                            } else {
                                // Give up on this round; resume the regular
                                // poll cadence.
                                poll_error_streak = 0;
                                push(heap, &mut seq, at + self.poll_interval, Ev::Poll);
                            }
                            continue;
                        }
                    }
                    push(heap, &mut seq, at + self.poll_interval, Ev::Poll);
                }
                Ev::Crash(d) => {
                    downloader_alive[d] = false;
                    if let Some(chaos) = &chaos {
                        chaos.note_crash();
                    }
                }
                Ev::Recover(d) => {
                    downloader_alive[d] = true;
                    downloader_busy_until[d] = at;
                }
                Ev::Fetch(id) => {
                    let Some(assignment) = assignments.get_mut(&id) else {
                        continue;
                    };
                    let d = assignment.downloader;
                    // A dead downloader executes nothing: the event chain
                    // stops here and restarts when the coordinator
                    // reassigns the streamer on its next poll.
                    if !downloader_alive[d] {
                        assignment.chain_dead = true;
                        continue;
                    }
                    // Lease lapsed (TTL expiry or a lost KV write): release
                    // the assignment; the coordinator re-acquires the
                    // streamer if it is still live.
                    if !self
                        .kv
                        .exists(&format!("active:{}", assignment.streamer.as_str()))
                    {
                        downloader_load[d] = downloader_load[d].saturating_sub(1);
                        obs.downloader_load.set(downloader_load[d] as i64);
                        assignments.remove(&id);
                        continue;
                    }
                    // Open breaker: only the scheduled half-open probe may
                    // pass; stray earlier events are swallowed (the probe
                    // event sustains the chain).
                    if !assignment.breaker_admits(at) {
                        continue;
                    }
                    // Serialise fetches per downloader.
                    if downloader_busy_until[d] > at {
                        let retry = downloader_busy_until[d];
                        obs.fetch_deferred.inc();
                        push(heap, &mut seq, retry, Ev::Fetch(id));
                        continue;
                    }
                    downloader_busy_until[d] = at + self.fetch_cost;
                    obs.get_attempts.inc();
                    let response = world.twitch.cdn_get(&assignment.url, at);
                    // Truncated payloads are detectable at fetch time: the
                    // transfer delivered fewer bytes than the content
                    // length promised. Fold them into the timeout path.
                    let fault = match &response {
                        CdnResponse::TimedOut => true,
                        CdnResponse::Thumbnail { image, .. } => {
                            image.pixels.len() != image.width * image.height
                        }
                        CdnResponse::Offline => false,
                    };
                    if fault {
                        if matches!(response, CdnResponse::TimedOut) {
                            obs.cdn_timeouts.inc();
                        }
                        stats.cdn_faults += 1;
                        if let Some(reopen_at) = assignment.breaker_on_fault(
                            at,
                            self.breaker_threshold,
                            self.breaker_cooldown,
                        ) {
                            // Trip (or re-open after a failed probe): stop
                            // hammering the URL; probe again after the
                            // cooldown.
                            stats.breaker_trips += 1;
                            obs.breaker_open.inc();
                            sp_run.event_at(
                                Level::Warn,
                                format!("circuit breaker opened (assignment {id})"),
                                at,
                            );
                            push(heap, &mut seq, reopen_at, Ev::Fetch(id));
                        } else {
                            let delay = backoff_delay(
                                self.backoff_base,
                                assignment.consecutive_faults,
                                &mut retry_rng,
                            );
                            stats.retries += 1;
                            obs.retries.inc();
                            obs.backoff_us.record(delay.as_micros());
                            push(heap, &mut seq, at + delay, Ev::Fetch(id));
                        }
                        continue;
                    }
                    match response {
                        CdnResponse::Thumbnail {
                            image,
                            generated_at,
                            next_update,
                        } => {
                            assignment.breaker_on_success();
                            if let Some(last) = assignment.last_generated {
                                if generated_at == last {
                                    // Same content; try again shortly.
                                    obs.same_content.inc();
                                    push(
                                        heap,
                                        &mut seq,
                                        at + SimDuration::from_secs(30),
                                        Ev::Fetch(id),
                                    );
                                    continue;
                                }
                                // Count thumbnails we never saw (gap of
                                // more than one nominal interval).
                                let gap = generated_at.since(last).as_secs();
                                if gap > 400 {
                                    stats.missed += gap / 330 - 1;
                                    obs.overwrite_missed.add(gap / 330 - 1);
                                }
                            }
                            assignment.last_generated = Some(generated_at);
                            let object_key = format!(
                                "{}/{}",
                                assignment.streamer.as_str(),
                                generated_at.as_micros()
                            );
                            let bytes: Vec<u8> = image.pixels.clone();
                            let mut payload = Vec::with_capacity(bytes.len() + 8);
                            payload.extend((image.width as u32).to_le_bytes());
                            payload.extend((image.height as u32).to_le_bytes());
                            payload.extend(bytes);
                            self.objects.put("thumbs", &object_key, payload);
                            let task = ThumbnailTask {
                                streamer: assignment.streamer.clone(),
                                game_label: assignment.game_label,
                                generated_at,
                                object_key,
                            };
                            self.kv.rpush("queue:thumbs", task.encode());
                            // Refresh the activity lease.
                            self.kv.set_with_ttl(
                                &format!("active:{}", assignment.streamer.as_str()),
                                &assignment.url,
                                at + self.active_ttl,
                            );
                            stats.downloaded += 1;
                            obs.get_hits.inc();
                            // Schedule the next fetch right after the next
                            // expected overwrite.
                            let next = next_update
                                .map(|t| t + SimDuration::from_secs(5))
                                .unwrap_or(at + SimDuration::from_mins(5));
                            push(
                                heap,
                                &mut seq,
                                next.max(at + self.fetch_cost),
                                Ev::Fetch(id),
                            );
                        }
                        CdnResponse::Offline => {
                            // Could be "live but first thumbnail pending":
                            // check activity via another short retry, but
                            // only once — the KV active flag with TTL keeps
                            // this bounded. Signal the coordinator and set a
                            // short cooldown so a comeback is re-acquired on
                            // the next poll after it lapses.
                            let user = assignment.streamer.as_str();
                            stats.offline_signals += 1;
                            obs.offline_signals.inc();
                            self.kv.rpush("offline", user.to_string());
                            self.kv.del(&format!("active:{user}"));
                            self.kv.del(&format!("game:{user}"));
                            self.kv.set_with_ttl(
                                &format!("cooldown:{user}"),
                                "1",
                                at + self.offline_cooldown,
                            );
                            downloader_load[d] = downloader_load[d].saturating_sub(1);
                            obs.downloader_load.set(downloader_load[d] as i64);
                            assignments.remove(&id);
                        }
                        CdnResponse::TimedOut => unreachable!("handled by the fault path"),
                    }
                }
            }
        }
        cursor.seq = seq;
        cursor.next_assignment_id = next_assignment_id;
        cursor.poll_error_streak = poll_error_streak;
        cursor.retry_rng = retry_rng;
        cursor.stats = stats;
        cursor.window_start = window_end;
    }

    /// Decode and drain every queued thumbnail task. Undecodable entries
    /// are moved to the dead-letter list (and counted) instead of being
    /// silently dropped.
    pub fn drain_tasks(&self) -> Vec<ThumbnailTask> {
        let decode_failures = self.obs.counter("download.decode_failures");
        let mut out = Vec::new();
        while let Some(raw) = self.kv.lpop("queue:thumbs") {
            match ThumbnailTask::decode(&raw) {
                Some(task) => out.push(task),
                None => {
                    decode_failures.inc();
                    self.dead_letter(raw);
                }
            }
        }
        out
    }

    /// Quarantine a poison entry onto the dead-letter list.
    pub fn dead_letter(&self, entry: impl Into<String>) {
        self.obs.counter("download.dead_letter").inc();
        self.trace
            .event(Level::Error, "entry quarantined to the dead-letter queue");
        self.kv.rpush(DEAD_LETTER_QUEUE, entry.into());
    }

    /// Drain the dead-letter list: every quarantined raw entry, in arrival
    /// order.
    pub fn drain_dead_letters(&self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(raw) = self.kv.lpop(DEAD_LETTER_QUEUE) {
            out.push(raw);
        }
        out
    }

    /// Current depth of the dead-letter list.
    pub fn dead_letter_depth(&self) -> usize {
        self.kv.llen(DEAD_LETTER_QUEUE)
    }

    /// Reinject quarantined tasks back onto `queue:thumbs` — the
    /// operator's "the fault plan is over, try again" lever. Entries that
    /// decode as [`ThumbnailTask`]s (typically parked because the object
    /// payload was corrupted by a chaos fault, not because the task
    /// itself was malformed) go back to the live queue in arrival order;
    /// entries that still fail to decode are genuine poison and stay
    /// quarantined. Returns `(requeued, still_dead)`.
    pub fn requeue_dead(&self) -> (usize, usize) {
        let mut requeued = 0;
        let mut poison = Vec::new();
        for raw in self.drain_dead_letters() {
            if ThumbnailTask::decode(&raw).is_some() {
                self.kv.rpush("queue:thumbs", raw);
                requeued += 1;
            } else {
                poison.push(raw);
            }
        }
        let still_dead = poison.len();
        for raw in poison {
            // Back onto the dead-letter list *without* re-counting it as
            // a fresh quarantine.
            self.kv.rpush(DEAD_LETTER_QUEUE, raw);
        }
        if requeued > 0 {
            self.trace.event(
                Level::Info,
                "dead-lettered tasks reinjected onto the live queue",
            );
        }
        (requeued, still_dead)
    }

    /// Fetch a stored thumbnail image back from the object store. `None`
    /// means the object is missing or its payload is corrupt (short header
    /// or a pixel-count mismatch) — corrupt payloads bump
    /// `download.decode_failures`, and the caller should route the task to
    /// [`DownloadModule::dead_letter`].
    pub fn load_image(&self, object_key: &str) -> Option<tero_vision::Image> {
        let bytes = self.objects.get("thumbs", object_key)?;
        let corrupt = || {
            self.obs.counter("download.decode_failures").inc();
            None
        };
        if bytes.len() < 8 {
            return corrupt();
        }
        let width = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let height = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let pixels = bytes[8..].to_vec();
        if pixels.len() != width * height {
            return corrupt();
        }
        Some(tero_vision::Image {
            width,
            height,
            pixels,
        })
    }

    /// Country-tag history collected for a streamer during the run.
    pub fn tag_history(&self, username: &str) -> Vec<String> {
        let mut out = Vec::new();
        let key = format!("tags:{username}");
        while let Some(tag) = self.kv.lpop(&key) {
            out.push(tag);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_world::WorldConfig;

    fn small_world() -> World {
        World::build(WorldConfig {
            seed: 21,
            n_streamers: 25,
            days: 2,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn task_roundtrip() {
        let task = ThumbnailTask {
            streamer: StreamerId::new("darkwolf42"),
            game_label: GameId::Dota2,
            generated_at: SimTime::from_mins(1234),
            object_key: "darkwolf42/74040000000".into(),
        };
        assert_eq!(ThumbnailTask::decode(&task.encode()), Some(task));
        assert_eq!(ThumbnailTask::decode("garbage"), None);
        assert_eq!(ThumbnailTask::decode("a|nope|1|k"), None);
    }

    #[test]
    fn task_roundtrip_with_separator_in_username() {
        // A `|` in the username must not shift the field layout.
        let task = ThumbnailTask {
            streamer: StreamerId::new("dark|wolf%42"),
            game_label: GameId::Dota2,
            generated_at: SimTime::from_mins(7),
            object_key: "dark|wolf%42/420000000".into(),
        };
        let encoded = task.encode();
        assert_eq!(ThumbnailTask::decode(&encoded), Some(task));
        // Malformed escapes are rejected, not mis-decoded.
        assert_eq!(ThumbnailTask::decode("bad%zz|dota2|1|k"), None);
        assert_eq!(ThumbnailTask::decode("trail%2|dota2|1|k"), None);
    }

    /// The full download-breaker walk — closed → open → half-open →
    /// closed — on the same `Assignment` transition methods the fetch
    /// loop runs, independent of any chaos e2e.
    #[test]
    fn download_breaker_walks_closed_open_half_open_closed() {
        let threshold = 3;
        let cooldown = SimDuration::from_mins(2);
        let mut a = Assignment::new(
            "cdn://x".into(),
            StreamerId::new("finewolf"),
            GameId::Dota2,
            0,
        );
        let mut at = SimTime::from_mins(10);

        // Closed: faults below the threshold back off but never trip.
        for _ in 0..threshold - 1 {
            assert!(a.breaker_admits(at));
            assert_eq!(a.breaker_on_fault(at, threshold, cooldown), None);
        }
        // The threshold-th consecutive fault opens the breaker.
        assert!(a.breaker_admits(at));
        let reopen_at = a
            .breaker_on_fault(at, threshold, cooldown)
            .expect("threshold fault trips the breaker");
        assert_eq!(reopen_at, at + cooldown);

        // Open: stray events before the cooldown are swallowed.
        assert!(!a.breaker_admits(at + SimDuration::from_secs(1)));
        assert!(!a.breaker_admits(reopen_at - SimDuration::from_micros(1)));

        // Half-open: the scheduled probe is admitted, and its success
        // closes the breaker and clears the fault streak.
        at = reopen_at;
        assert!(a.breaker_admits(at));
        assert!(a.half_open);
        a.breaker_on_success();
        assert_eq!(a.consecutive_faults, 0);
        assert_eq!(a.breaker_until, None);
        assert!(!a.half_open);

        // Closed again: a single fresh fault does not trip.
        assert!(a.breaker_admits(at));
        assert_eq!(a.breaker_on_fault(at, threshold, cooldown), None);
    }

    /// A faulted half-open probe re-opens the breaker immediately — one
    /// fault, not a fresh threshold's worth.
    #[test]
    fn download_breaker_failed_probe_reopens() {
        let threshold = 3;
        let cooldown = SimDuration::from_mins(2);
        let mut a = Assignment::new(
            "cdn://x".into(),
            StreamerId::new("finewolf"),
            GameId::Dota2,
            0,
        );
        let mut at = SimTime::from_mins(5);
        for _ in 0..threshold {
            assert!(a.breaker_admits(at));
            a.breaker_on_fault(at, threshold, cooldown);
        }
        at += cooldown;
        assert!(a.breaker_admits(at), "probe admitted at the cooldown edge");
        let reopen_at = a
            .breaker_on_fault(at, threshold, cooldown)
            .expect("failed probe re-opens");
        assert_eq!(reopen_at, at + cooldown);
        assert!(!a.breaker_admits(at + SimDuration::from_secs(30)));
    }

    #[test]
    fn undecodable_queue_entries_are_dead_lettered() {
        let kv = KvStore::new();
        let module = DownloadModule::new(kv.clone(), ObjectStore::new());
        let good = ThumbnailTask {
            streamer: StreamerId::new("ok"),
            game_label: GameId::Dota2,
            generated_at: SimTime::from_mins(1),
            object_key: "ok/1".into(),
        };
        kv.rpush("queue:thumbs", good.encode());
        kv.rpush("queue:thumbs", "not|a|task");
        kv.rpush("queue:thumbs", "junk");
        let tasks = module.drain_tasks();
        assert_eq!(tasks, vec![good]);
        assert_eq!(module.dead_letter_depth(), 2);
        assert_eq!(
            module.drain_dead_letters(),
            vec!["not|a|task".to_string(), "junk".to_string()]
        );
        assert_eq!(module.dead_letter_depth(), 0);
    }

    #[test]
    fn downloads_track_world_thumbnails() {
        let mut world = small_world();
        let kv = KvStore::new();
        let objects = ObjectStore::new();
        let mut module = DownloadModule::new(kv, objects.clone());
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);

        let truth = world.total_samples() as u64;
        assert!(truth > 0);
        // With a 2-minute poll and per-streamer scheduling we should catch
        // the overwhelming majority of thumbnails.
        assert!(
            stats.downloaded as f64 > truth as f64 * 0.85,
            "downloaded {} of {truth}",
            stats.downloaded
        );
        assert!(stats.downloaded <= truth);
        assert_eq!(objects.count("thumbs") as u64, stats.downloaded);

        // Tasks decode and reference stored objects.
        let tasks = module.drain_tasks();
        assert_eq!(tasks.len() as u64, stats.downloaded);
        let img = module.load_image(&tasks[0].object_key).expect("image");
        assert_eq!(img.width, tero_vision::scene::THUMB_W);
    }

    #[test]
    fn metrics_mirror_run_stats() {
        let mut world = small_world();
        let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
        let registry = Registry::new();
        module.instrument(&registry);
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("download.polls"), Some(stats.polls));
        assert_eq!(snap.counter("download.get_hits"), Some(stats.downloaded));
        assert_eq!(
            snap.counter("download.offline_signals"),
            Some(stats.offline_signals)
        );
        assert_eq!(
            snap.counter("download.overwrite_missed"),
            Some(stats.missed)
        );
        assert!(snap.counter("download.get_attempts") >= snap.counter("download.get_hits"));
        assert!(snap.histogram("download.queue_depth").unwrap().count > 0);
        assert!(
            snap.gauge("download.downloader_load")
                .unwrap()
                .high_watermark
                >= 1
        );
        assert_eq!(
            snap.histogram("download.run_us").unwrap().count,
            0,
            "wall-clock timing stays off by default"
        );
        // Without a fault injector, the recovery machinery stays silent —
        // but all of its metrics are registered.
        assert_eq!(snap.counter("download.api_errors"), Some(0));
        assert_eq!(snap.counter("download.cdn_timeouts"), Some(0));
        assert_eq!(snap.counter("download.breaker_open"), Some(0));
        assert_eq!(snap.counter("download.reassigned"), Some(0));
        assert_eq!(snap.counter("download.dead_letter"), Some(0));
        assert_eq!(snap.counter("download.decode_failures"), Some(0));
    }

    #[test]
    fn offline_streamers_are_released() {
        let mut world = small_world();
        let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        assert!(stats.offline_signals > 0, "streams end → offline signals");
        assert!(stats.polls > 100);
        assert!(stats.swept > 0, "offline cooldowns expire via the sweep");
    }

    #[test]
    fn offline_comeback_is_reacquired() {
        // Regression test for the Offline release path: a streamer whose
        // stream ends (offline redirect, lease released) and who later
        // starts a new stream must be re-assigned and downloaded again.
        let mut world = small_world();
        let kv = KvStore::new();
        let mut module = DownloadModule::new(kv.clone(), ObjectStore::new());
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        assert!(stats.offline_signals > 0);

        // Find streamers with at least two streams and verify thumbnails
        // were captured from a later stream (i.e. after an offline release).
        let tasks = module.drain_tasks();
        let mut comebacks = 0;
        for (streamer, timeline) in world.streamers().iter().zip(world.timelines()) {
            if timeline.len() < 2 {
                continue;
            }
            let later = &timeline[1];
            let captured_later = tasks.iter().any(|t| {
                t.streamer == streamer.id
                    && t.generated_at >= later.start
                    && t.generated_at < later.end
            });
            if captured_later {
                comebacks += 1;
            }
        }
        assert!(
            comebacks > 0,
            "no streamer was re-acquired after coming back online"
        );
        // The release path ran exactly once per offline signal: no key or
        // load-accounting residue survives beyond the final in-flight set.
        assert_eq!(kv.llen("offline") as u64, stats.offline_signals);
    }

    #[test]
    fn lean_downloaders_beat_one_slow_worker() {
        // DESIGN.md ablation 6: the coordinator/downloader split exists
        // because downloads are time-sensitive. One worker with a heavy
        // per-fetch cost loses thumbnails to CDN overwrites; a pool of
        // lean workers does not.
        let run = |workers: usize, cost_ms: u64| {
            let mut world = World::build(WorldConfig {
                seed: 404,
                n_streamers: 60,
                days: 1,
                ..WorldConfig::default()
            });
            let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
            module.downloaders = workers;
            module.fetch_cost = SimDuration::from_millis(cost_ms);
            let horizon = world.horizon;
            module.run(&mut world, SimTime::EPOCH, horizon).downloaded
        };
        let pool = run(4, 500);
        let single_slow = run(1, 45_000); // 45 s per fetch, one worker
        assert!(
            single_slow < pool,
            "a slow single worker must fall behind: {single_slow} vs {pool}"
        );
    }

    #[test]
    fn crash_recovery_resumes_from_kv_state() {
        // Run the first half with one module instance, "crash", and run
        // the second half with a fresh instance sharing the same stores:
        // the union must capture roughly what an uninterrupted run does.
        let kv = KvStore::new();
        let objects = ObjectStore::new();
        let horizon;
        let two_phase = {
            let mut world = small_world();
            horizon = world.horizon;
            let half = SimTime::from_micros(horizon.as_micros() / 2);
            let mut first = DownloadModule::new(kv.clone(), objects.clone());
            let s1 = first.run(&mut world, SimTime::EPOCH, half);
            drop(first); // the crash: all in-memory assignment state is lost
            let mut second = DownloadModule::new(kv.clone(), objects.clone());
            let s2 = second.run(&mut world, half, horizon);
            s1.downloaded + s2.downloaded
        };
        let uninterrupted = {
            let mut world = small_world();
            let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
            module.run(&mut world, SimTime::EPOCH, horizon).downloaded
        };
        assert!(
            two_phase as f64 > uninterrupted as f64 * 0.9,
            "recovery lost too much: {two_phase} vs {uninterrupted}"
        );
    }

    #[test]
    fn windowed_cursor_matches_single_shot() {
        // One cursor driven over many windows must make exactly the same
        // world calls as one full-range run(): stats, object store and
        // queue contents all byte-identical.
        let single = {
            let mut world = small_world();
            let kv = KvStore::new();
            let objects = ObjectStore::new();
            let mut module = DownloadModule::new(kv.clone(), objects.clone());
            let horizon = world.horizon;
            let stats = module.run(&mut world, SimTime::EPOCH, horizon);
            (stats, kv.snapshot(), objects.snapshot())
        };
        let windowed = {
            let mut world = small_world();
            let kv = KvStore::new();
            let objects = ObjectStore::new();
            let mut module = DownloadModule::new(kv.clone(), objects.clone());
            let horizon = world.horizon;
            let mut cursor = DownloadCursor::new(SimTime::EPOCH, horizon);
            let step = SimDuration::from_hours(5);
            let mut end = SimTime::EPOCH + step;
            loop {
                module.run_cursor(&mut world, &mut cursor, end);
                if end >= horizon {
                    break;
                }
                end = (end + step).min(horizon);
            }
            (cursor.stats.clone(), kv.snapshot(), objects.snapshot())
        };
        assert_eq!(
            serde_json::to_string(&single.0).unwrap(),
            serde_json::to_string(&windowed.0).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&single.1).unwrap(),
            serde_json::to_string(&windowed.1).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&single.2).unwrap(),
            serde_json::to_string(&windowed.2).unwrap()
        );
    }

    #[test]
    fn cursor_serde_roundtrip_resumes_identically() {
        // Persist the cursor mid-run, resurrect it from JSON, and finish:
        // the result must equal an uninterrupted run over the same stores.
        let horizon = small_world().horizon;
        let half = SimTime::from_micros(horizon.as_micros() / 2);
        let direct = {
            let mut world = small_world();
            let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
            module.run(&mut world, SimTime::EPOCH, horizon)
        };
        let resumed = {
            let mut world = small_world();
            let kv = KvStore::new();
            let objects = ObjectStore::new();
            let mut module = DownloadModule::new(kv.clone(), objects.clone());
            let mut cursor = DownloadCursor::new(SimTime::EPOCH, horizon);
            module.run_cursor(&mut world, &mut cursor, half);
            let json = serde_json::to_string(&cursor).unwrap();
            drop(cursor); // the crash: in-memory cursor state is lost
            let mut revived: DownloadCursor = serde_json::from_str(&json).unwrap();
            // The revived cursor serializes back to the same bytes.
            assert_eq!(serde_json::to_string(&revived).unwrap(), json);
            assert_eq!(revived.bounds(), (SimTime::EPOCH, horizon));
            let mut module2 = DownloadModule::new(kv, objects);
            module2.run_cursor(&mut world, &mut revived, horizon);
            revived.stats.clone()
        };
        assert_eq!(
            serde_json::to_string(&direct).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
    }

    #[test]
    fn rate_limit_is_respected() {
        let mut world = World::build(WorldConfig {
            seed: 5,
            n_streamers: 10,
            days: 1,
            api_budget_per_min: 1,
            ..WorldConfig::default()
        });
        let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
        module.poll_interval = SimDuration::from_secs(10); // over budget
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        assert!(stats.rate_limited > 0, "limiter must have pushed back");
        // The module kept running regardless.
        assert!(stats.polls > 0);
    }
}
