//! Deterministic case runner and RNG for the proptest shim.

use rand::{RngCore, SeedableRng, SmallRng};

/// Cases run per property test.
pub const CASES: u32 = 256;

/// Deterministic RNG handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeded constructor (seed is derived from the test name by [`run`]).
    pub fn new(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u64` in `[lo, hi)`; `lo` when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`; `lo` when the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
    inputs: Option<String>,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError {
            message,
            inputs: None,
        }
    }

    /// Attach the generated inputs that produced the failure.
    pub fn with_inputs(mut self, inputs: String) -> Self {
        self.inputs = Some(inputs);
        self
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(inputs) = &self.inputs {
            write!(f, "\n  inputs: {inputs}")?;
        }
        Ok(())
    }
}

/// FNV-1a over the test name: a stable per-test seed.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `body` for [`CASES`] deterministic cases; panic on the first failure
/// with its case number and inputs (no shrinking).
pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let mut rng = TestRng::new(seed_for(name));
    for case in 0..CASES {
        if let Err(e) = body(&mut rng) {
            panic!("proptest '{name}' failed at case {case}/{CASES}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("abc"), seed_for("abc"));
        assert_ne!(seed_for("abc"), seed_for("abd"));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_body_panics_with_case_number() {
        run("always_fails", |_| {
            Err(TestCaseError::fail("nope".to_string()))
        });
    }
}
