//! Tables 6–7 — server locations per game and the areas they serve,
//! plus the resulting primary-server assignment for a sample of player
//! locations (the §2.1 game-region logic).

use tero_bench::header;
use tero_geoparse::Gazetteer;
use tero_types::{GameId, Location};
use tero_world::games::{corrected_distance_to, primary_server, server_locations};

fn main() {
    let gaz = Gazetteer::new();

    header("Tables 6-7: server locations");
    for game in GameId::ALL {
        let servers = server_locations(&gaz, game);
        println!();
        println!("{game} ({} servers):", servers.len());
        for s in &servers {
            println!("  {:<32} {}", s.location.to_string(), s.area);
        }
    }

    header("Primary-server assignment examples (paper's cases)");
    let cases: [(&str, Location); 8] = [
        ("Greece (LoL)", Location::country("Greece")),
        ("Bolivia (LoL)", Location::country("Bolivia")),
        ("El Salvador (LoL)", Location::country("El Salvador")),
        ("Jamaica (LoL)", Location::country("Jamaica")),
        ("Hawaii (LoL)", Location::region("United States", "Hawaii")),
        ("Turkey (LoL)", Location::country("Turkey")),
        (
            "Illinois (LoL)",
            Location::region("United States", "Illinois"),
        ),
        ("South Korea (LoL)", Location::country("South Korea")),
    ];
    for (label, loc) in cases {
        let server = primary_server(&gaz, GameId::LeagueOfLegends, &loc).expect("assignment");
        let d = corrected_distance_to(&gaz, &loc, &server).unwrap_or(0.0);
        println!(
            "  {label:<22} → {:<28} (corrected distance {d:>6.0} km)",
            server.location.to_string()
        );
    }
    println!();
    println!("paper cross-checks: Greece→Amsterdam (2,068 km), Turkey→Istanbul (371 km),");
    println!("Bolivia→Santiago (1,968 km), Hawaii→Chicago (6,832 km), Korea→Seoul (166 km).");
}
