//! Integration tests for `tero-obs`: concurrency, percentile accuracy
//! against the exact estimator in `tero-stats`, and snapshot determinism.

use tero_obs::Registry;
use tero_types::SimRng;

// ---- Concurrency -----------------------------------------------------------

/// Eight threads hammer the same metrics through registry clones; no update
/// may be lost and the gauge high-watermark must dominate every level seen.
#[test]
fn multithreaded_hammer_loses_nothing() {
    const THREADS: u64 = 8;
    const OPS: u64 = 10_000;

    let registry = Registry::new();
    registry.set_timing(true);
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let r = registry.clone();
        handles.push(std::thread::spawn(move || {
            let hits = r.counter("hammer.hits");
            let bytes = r.counter("hammer.bytes");
            let depth = r.gauge("hammer.depth");
            let lat = r.histogram("hammer.latency");
            for i in 0..OPS {
                hits.inc();
                bytes.add(3);
                depth.inc();
                lat.record(t * OPS + i);
                depth.dec();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counter("hammer.hits"), Some(THREADS * OPS));
    assert_eq!(snap.counter("hammer.bytes"), Some(3 * THREADS * OPS));
    let depth = snap.gauge("hammer.depth").unwrap();
    assert_eq!(depth.value, 0, "every inc was matched by a dec");
    assert!(depth.high_watermark >= 1);
    assert!(depth.high_watermark <= THREADS as i64);
    let lat = snap.histogram("hammer.latency").unwrap();
    assert_eq!(lat.count, THREADS * OPS);
    assert_eq!(lat.min, 0);
    assert_eq!(lat.max, THREADS * OPS - 1);
}

/// Concurrent registration of the same name returns the same underlying
/// metric, never a second one that splits the counts.
#[test]
fn concurrent_registration_is_idempotent() {
    let registry = Registry::new();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let r = registry.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..1_000 {
                r.counter("shared.name").inc();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(registry.snapshot().counter("shared.name"), Some(8_000));
    assert_eq!(
        registry
            .metric_names()
            .iter()
            .filter(|n| *n == "shared.name")
            .count(),
        1
    );
}

// ---- Percentile accuracy ---------------------------------------------------

/// The log-bucketed histogram's percentiles against the exact estimator in
/// `tero-stats`. Buckets are powers of two, so any estimate is within a
/// factor of two of the true value; order (p50 ≤ p95 ≤ p99) and range
/// ([min, max]) must hold exactly.
#[test]
fn percentiles_track_exact_estimator() {
    type Sampler = Box<dyn Fn(&mut SimRng) -> u64>;
    let mut rng = SimRng::new(0xb5);
    // Three shapes: uniform, heavy-tailed, and tightly clustered.
    let shapes: [(&str, Sampler); 3] = [
        ("uniform", Box::new(|r: &mut SimRng| 1 + r.below(10_000))),
        (
            "heavy-tail",
            Box::new(|r: &mut SimRng| {
                let base = 1 + r.below(100);
                if r.chance(0.05) {
                    base * 1_000
                } else {
                    base
                }
            }),
        ),
        ("clustered", Box::new(|r: &mut SimRng| 500 + r.below(32))),
    ];

    for (shape, gen) in shapes {
        let registry = Registry::new();
        let h = registry.histogram("acc.us");
        let mut exact: Vec<f64> = Vec::with_capacity(5_000);
        for _ in 0..5_000 {
            let v = gen(&mut rng);
            h.record(v);
            exact.push(v as f64);
        }
        let snap = registry.snapshot();
        let hist = snap.histogram("acc.us").unwrap();

        assert!(hist.p50 <= hist.p95 && hist.p95 <= hist.p99, "{shape}");
        assert!(
            hist.p50 >= hist.min as f64 && hist.p99 <= hist.max as f64,
            "{shape}"
        );
        for (est, p) in [(hist.p50, 50.0), (hist.p95, 95.0), (hist.p99, 99.0)] {
            let truth = tero_stats::percentile(&exact, p);
            let ratio = est / truth;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{shape} p{p}: histogram {est} vs exact {truth} (ratio {ratio})"
            );
        }
        let exact_mean = tero_stats::mean(&exact);
        let rel = (hist.mean - exact_mean).abs() / exact_mean;
        assert!(rel < 1e-9, "{shape}: mean is exact, not bucketed ({rel})");
    }
}

// ---- Snapshot determinism --------------------------------------------------

fn scripted_registry(seed: u64) -> Registry {
    let registry = Registry::new();
    let mut rng = SimRng::new(seed);
    let ops = registry.counter("det.ops");
    let depth = registry.gauge("det.depth");
    let lat = registry.histogram("det.lat_us");
    for _ in 0..2_000 {
        ops.inc();
        depth.set(rng.below(50) as i64);
        lat.record(1 + rng.below(1_000));
    }
    registry
}

/// The same op sequence yields byte-identical JSON and text exports, and
/// the name order is sorted regardless of registration order.
#[test]
fn snapshots_are_deterministic_and_ordered() {
    let a = scripted_registry(7).snapshot();
    let b = scripted_registry(7).snapshot();
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.render_text(), b.render_text());

    // Registration order must not leak into export order.
    let r1 = Registry::new();
    r1.counter("z.last");
    r1.counter("a.first");
    let r2 = Registry::new();
    r2.counter("a.first");
    r2.counter("z.last");
    assert_eq!(r1.snapshot().metric_names(), r2.snapshot().metric_names());
    let names = r1.snapshot().metric_names();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

// ---- Timing knob -----------------------------------------------------------

/// Disabled timers record nothing; enabling the knob makes the same call
/// sites populate their histograms.
#[test]
fn stage_timer_respects_timing_knob() {
    let registry = Registry::new();
    let h = registry.histogram("knob.us");
    {
        let _t = registry.stage_timer(&h);
    }
    assert_eq!(registry.snapshot().histogram("knob.us").unwrap().count, 0);

    registry.set_timing(true);
    {
        let _t = registry.stage_timer(&h);
    }
    assert_eq!(registry.snapshot().histogram("knob.us").unwrap().count, 1);
}
