//! The conservative filter (App. D.1).
//!
//! "Accept a tool's output location as valid if the input description
//! contains at least the country or region field of the output location."
//! The example in the paper: "Join us in Detroit" geocodes to
//! `(United States, Michigan, Detroit)`, but the text contains neither
//! "United States" nor "Michigan", so the output is discarded
//! (unnecessarily, in that case); "From Miami, Florida" contains "Florida",
//! so `(United States, Florida, Miami)` is accepted.

use crate::gazetteer::{Gazetteer, PlaceKind};
use tero_types::Location;

/// Does `text` provide country- or region-level evidence for `loc`?
///
/// The name comparison is case-insensitive and accepts gazetteer aliases
/// ("USA" counts as evidence for "United States"), since real tools
/// normalise aliases before comparing.
pub fn conservative_filter(gaz: &Gazetteer, text: &str, loc: &Location) -> bool {
    // Country evidence: the country name or any of its aliases.
    if name_present(gaz, text, &loc.country, PlaceKind::Country, loc) {
        return true;
    }
    // Region evidence.
    if let Some(region) = &loc.region {
        if name_present(gaz, text, region, PlaceKind::Region, loc) {
            return true;
        }
    }
    false
}

fn name_present(gaz: &Gazetteer, text: &str, name: &str, kind: PlaceKind, loc: &Location) -> bool {
    let lower = text.to_lowercase();
    if contains_word(&lower, &name.to_lowercase()) {
        return true;
    }
    // Check aliases: try every n-gram of the text against the gazetteer's
    // alias index. Short aliases ("US", "UK", "LA") are only accepted when
    // the text writes them in uppercase — otherwise the English word "us"
    // would count as country evidence.
    for gram in crate::tools::ngrams(text, 3) {
        if gram.text.len() <= 3 && gram.text.to_uppercase() != gram.text {
            continue;
        }
        for p in gaz.lookup(&gram.text) {
            if p.kind != kind {
                continue;
            }
            let matches = match kind {
                PlaceKind::Country => p.location.country == loc.country,
                PlaceKind::Region => {
                    p.location.country == loc.country && p.location.region.as_deref() == Some(name)
                }
                PlaceKind::City => false,
            };
            if matches {
                return true;
            }
        }
    }
    false
}

/// Word-boundary containment: `needle` appears in `haystack` delimited by
/// non-alphanumeric characters (so "iran" does not match "Denmarkian").
fn contains_word(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let hay: Vec<char> = haystack.chars().collect();
    let ned: Vec<char> = needle.chars().collect();
    let n = ned.len();
    if n > hay.len() {
        return false;
    }
    for start in 0..=(hay.len() - n) {
        if hay[start..start + n]
            .iter()
            .zip(&ned)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
        {
            let before_ok = start == 0 || !hay[start - 1].is_alphanumeric();
            let after = start + n;
            let after_ok = after == hay.len() || !hay[after].is_alphanumeric();
            if before_ok && after_ok {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        let gaz = Gazetteer::new();
        let detroit = Location::city("United States", "Michigan", "Detroit");
        assert!(
            !conservative_filter(&gaz, "Join us in Detroit!", &detroit),
            "no country/region evidence — discarded (the paper's example)"
        );
        let miami = Location::city("United States", "Florida", "Miami");
        assert!(
            conservative_filter(&gaz, "From Miami, Florida", &miami),
            "region evidence present — accepted"
        );
    }

    #[test]
    fn aliases_count_as_evidence() {
        let gaz = Gazetteer::new();
        let la = Location::city("United States", "California", "Los Angeles");
        assert!(conservative_filter(&gaz, "LA girl, USA", &la), "USA alias");
        assert!(conservative_filter(&gaz, "Cali livin'", &la), "Cali alias");
        assert!(
            !conservative_filter(&gaz, "LA girl", &la),
            "city alone is not enough"
        );
    }

    #[test]
    fn word_boundaries_respected() {
        let gaz = Gazetteer::new();
        let iran = Location::country("Iran");
        assert!(conservative_filter(&gaz, "roots in Iran", &iran));
        // "Denmarkian" must not give evidence for Denmark.
        let dk = Location::country("Denmark");
        assert!(!conservative_filter(&gaz, "I live in Denmarkian", &dk));
    }

    #[test]
    fn country_only_locations() {
        let gaz = Gazetteer::new();
        let fr = Location::country("France");
        assert!(conservative_filter(&gaz, "bonjour from France", &fr));
        assert!(
            !conservative_filter(&gaz, "bonjour from Paris", &fr),
            "city name is not country evidence"
        );
    }

    #[test]
    fn contains_word_edges() {
        assert!(contains_word("hello world", "world"));
        assert!(contains_word("world", "world"));
        assert!(!contains_word("worldly", "world"));
        assert!(!contains_word("hello", ""));
        assert!(contains_word("a-b world!", "world"));
        assert!(!contains_word("ab", "abc"));
    }
}
