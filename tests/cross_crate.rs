//! Cross-crate integration: geodesy ↔ game-region assignment ↔ world
//! generation ↔ geoparsing, exercised together.

use tero::geoparse::combine::combine_twitch_description;
use tero::geoparse::{Gazetteer, PlaceKind};
use tero::types::{GameId, Location, SimRng, SimTime};
use tero::world::games::{corrected_distance_to, primary_server};
use tero::world::sessions::generate_timeline;
use tero::world::streamer::Streamer;
use tero::world::textgen::{twitch_description, DescriptionStyle};

#[test]
fn corrected_distance_feeds_server_assignment_consistently() {
    let gaz = Gazetteer::new();
    for game in GameId::ALL {
        for country in ["France", "Brazil", "Japan", "United States", "Chile"] {
            let loc = Location::country(country);
            let server = primary_server(&gaz, game, &loc)
                .unwrap_or_else(|| panic!("no server for {country}/{game}"));
            let d = corrected_distance_to(&gaz, &loc, &server).unwrap();
            assert!(d > 0.0 && d < 20_000.0, "{country}/{game}: {d} km");
        }
    }
}

#[test]
fn formal_descriptions_geocode_to_the_true_home() {
    let gaz = Gazetteer::new();
    let mut rng = SimRng::new(5);
    let cities: Vec<_> = gaz
        .places()
        .iter()
        .filter(|p| p.kind == PlaceKind::City)
        .take(30)
        .cloned()
        .collect();
    let mut located = 0;
    for home in &cities {
        let desc = twitch_description(DescriptionStyle::Formal, home, &mut rng);
        if let Some(out) = combine_twitch_description(&gaz, &desc) {
            located += 1;
            let truth = &home.location;
            assert!(
                out == *truth || out.subsumes(truth) || truth.subsumes(&out),
                "desc {desc:?}: {out} vs truth {truth}"
            );
        }
    }
    assert!(
        located >= 25,
        "only {located}/30 formal descriptions located"
    );
}

#[test]
fn timeline_latency_reflects_server_distance() {
    // Streamers far from their primary server must see higher ground-truth
    // latency than streamers next to it.
    let gaz = Gazetteer::new();
    let mut rng = SimRng::new(6);
    let horizon = SimTime::from_hours(24 * 20);
    let mean_rtt = |city: &str, rng: &mut SimRng| -> f64 {
        let home = gaz.lookup_kind(city, PlaceKind::City)[0].clone();
        let mut s = Streamer::generate(&gaz, home, horizon, rng);
        s.games = vec![GameId::LeagueOfLegends];
        s.off_primary = None;
        let streams = generate_timeline(&s, &gaz, &[], horizon, rng);
        let xs: Vec<f64> = streams
            .iter()
            .flat_map(|st| st.samples.iter())
            .filter(|x| x.server_idx == 1 || x.server_idx == 0) // any
            .map(|x| x.true_rtt_ms)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    // Amsterdam sits on the EUW server; Honolulu is 6800+ km from Chicago.
    let close = mean_rtt("Amsterdam", &mut rng);
    let far = mean_rtt("Honolulu", &mut rng);
    assert!(
        far > close + 40.0,
        "Honolulu {far:.1} ms should dwarf Amsterdam {close:.1} ms"
    );
}

#[test]
fn world_streams_never_overlap_per_streamer() {
    let world = tero::world::World::build(tero::world::WorldConfig {
        seed: 31,
        n_streamers: 25,
        days: 5,
        ..Default::default()
    });
    for timeline in world.timelines() {
        for pair in timeline.windows(2) {
            assert!(
                pair[0].end <= pair[1].start,
                "streams overlap: {:?} then {:?}",
                (pair[0].start, pair[0].end),
                (pair[1].start, pair[1].end)
            );
        }
        for stream in timeline {
            for pair in stream.samples.windows(2) {
                assert!(pair[0].t < pair[1].t, "samples out of order");
            }
        }
    }
}

#[test]
fn cdn_contents_match_ground_truth_samples() {
    let world = tero::world::World::build(tero::world::WorldConfig {
        seed: 32,
        n_streamers: 10,
        days: 2,
        ..Default::default()
    });
    // Every ground-truth sample must be retrievable through the CDN at its
    // own timestamp.
    let mut checked = 0;
    for (streamer, timeline) in world.streamers().iter().zip(world.timelines()) {
        for stream in timeline {
            for s in stream.samples.iter().take(3) {
                let url = format!("cdn://thumbs/{}", streamer.id.as_str());
                match world.twitch.cdn_get(&url, s.t) {
                    tero::world::twitch::CdnResponse::Thumbnail { generated_at, .. } => {
                        assert_eq!(generated_at, s.t);
                        checked += 1;
                    }
                    tero::world::twitch::CdnResponse::Offline => {
                        panic!("live sample not served")
                    }
                    tero::world::twitch::CdnResponse::TimedOut => {
                        panic!("no fault injector installed; the CDN cannot time out")
                    }
                }
            }
        }
    }
    assert!(checked > 20);
}
