//! RAII stage timing.

use crate::registry::HistogramHandle;
use std::time::Instant;

/// Times a pipeline stage from construction to drop, recording the elapsed
/// wall-clock microseconds into a histogram.
///
/// When constructed disabled (the registry's timing knob is off — the
/// default) the guard holds no start time and never reads the clock:
/// construction and drop are a branch each.
#[must_use = "a StageTimer records on drop; binding it to _ drops it immediately"]
pub struct StageTimer {
    start: Option<Instant>,
    hist: HistogramHandle,
}

impl StageTimer {
    /// Start a timer; `enabled` decides whether the clock is read at all.
    #[inline]
    pub fn start(enabled: bool, hist: HistogramHandle) -> Self {
        StageTimer {
            start: enabled.then(Instant::now),
            hist,
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }

    /// Stop and record now instead of at scope end.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for StageTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;
    use std::time::Duration;

    #[test]
    fn enabled_timer_records_elapsed_micros() {
        let r = Registry::new();
        r.set_timing(true);
        let h = r.histogram("stage.us");
        {
            let _t = r.stage_timer(&h);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 2_000, "recorded {} µs", h.max());
    }

    #[test]
    fn disabled_timer_is_inert() {
        let r = Registry::new();
        let h = r.histogram("stage.us");
        let t = r.stage_timer(&h);
        assert!(!t.is_enabled());
        t.stop();
        assert_eq!(h.count(), 0);
    }
}
