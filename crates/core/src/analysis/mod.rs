//! The data-analysis module (§3.3).
//!
//! Input: per-`{streamer, game}` sequences of extracted latency samples,
//! organised into streams. Output: cleaned series, detected anomalies,
//! latency clusters and per-`{location, game}` distributions.

pub mod anomaly;
pub mod clusters;
pub mod distributions;
pub mod segments;
pub mod shared;

pub use anomaly::{detect_anomalies, AnomalyReport, SegmentLabel};
pub use clusters::{cluster_segments, merge_location_clusters, ClassifiedStreamer, LatencyCluster};
pub use distributions::{location_distribution, LocationDistribution};
pub use segments::{segment_stream, Segment, StreamSeries};
pub use shared::{detect_shared_anomalies, SharedAnomaly};
