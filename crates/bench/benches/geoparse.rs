//! Location-module throughput: gazetteer lookups, individual tools, and
//! the full combination pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use tero_geoparse::combine::{combine_twitch_description, combine_twitter_location};
use tero_geoparse::tools::{GeoTool, ToolKind};
use tero_geoparse::Gazetteer;

const DESCRIPTIONS: &[&str] = &[
    "From Miami, Florida. Streams every evening!",
    "Join us in Detroit!",
    "pro gamer, road to top 500",
    "I live in Polandian but have roots in Iran",
    "Living in Los Angeles since 2019, ranked grind daily",
    "Phoenix main, road to radiant",
];

fn bench_gazetteer(c: &mut Criterion) {
    let gaz = Gazetteer::new();
    c.bench_function("gazetteer_build", |b| b.iter(Gazetteer::new));
    c.bench_function("gazetteer_lookup", |b| {
        b.iter(|| {
            gaz.lookup("Chicago").len()
                + gaz.lookup("USA").len()
                + gaz.lookup("nowhere-at-all").len()
        })
    });
}

fn bench_tools(c: &mut Criterion) {
    let gaz = Gazetteer::new();
    for kind in [ToolKind::Cliff, ToolKind::Xponents, ToolKind::Mordecai] {
        let tool = GeoTool::new(kind, &gaz);
        c.bench_function(&format!("tool_{}", kind.name()), |b| {
            b.iter(|| {
                DESCRIPTIONS
                    .iter()
                    .map(|d| tool.extract(d).len())
                    .sum::<usize>()
            })
        });
    }
}

fn bench_combiners(c: &mut Criterion) {
    let gaz = Gazetteer::new();
    c.bench_function("combine_twitch_description_x6", |b| {
        b.iter(|| {
            DESCRIPTIONS
                .iter()
                .filter_map(|d| combine_twitch_description(&gaz, d))
                .count()
        })
    });
    c.bench_function("combine_twitter_location", |b| {
        b.iter(|| combine_twitter_location(&gaz, "Barcelona, Spain"))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_gazetteer, bench_tools, bench_combiners);
criterion_main!(benches);
