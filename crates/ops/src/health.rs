//! The live mesh health model.
//!
//! [`HealthMonitor`] is the ops-plane observer of a sharded run. Each
//! window it combines three live sources into one typed
//! [`HealthReport`]:
//!
//! 1. **In-band host polls** — an [`OpsRequest::Health`] frame to every
//!    shard host over [`SimNet::poll`], the quiet ops-plane transport
//!    (subject to the same partitions and host kills as data traffic,
//!    but drawing no chaos RNG and bumping no injected-fault counters,
//!    so monitoring never perturbs replay determinism);
//! 2. **Client-side failover state** — every engine client's
//!    [`ShardView`]s: active leases, open breakers, stale peers;
//! 3. **Registry deltas** — `net.*` and `download.*` movement since the
//!    previous report, each folded into a [`GaugeBand`] with its
//!    documented "healthy and intentional" range.
//!
//! The per-shard verdict is deliberately coarse (see [`ShardStatus`]),
//! and the run-level [`Starvation`] verdict answers the one question a
//! responder actually has mid-incident: *is the mesh starving the
//! pipeline, or is the pipeline starving itself?* Network starvation
//! shows up as unreachable primaries, active leases, breaker opens and
//! retry storms; processing starvation shows up as a deep download
//! queue with a quiet network. docs/OPERATIONS.md walks through both
//! diagnoses band by band.
//!
//! Everything here is deterministic: polls are answered from
//! deterministic server state, bands are integer-valued, and
//! [`HealthReport::to_json`] / [`HealthReport::render_text`] are pure
//! functions of the report — two replays of the same plan render
//! byte-identical reports.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tero_net::{
    decode, encode, Frame, HostHealth, OpsRequest, OpsResponse, Payload, ShardView,
    ShardedStoreClient, SimNet,
};
use tero_obs::{CounterHandle, GaugeHandle, Registry, Snapshot};

/// Host name the monitor polls from. Not registered as a server: the
/// ops plane only ever originates frames.
const OPS_HOST: &str = "ops0";

/// Client id stamped on ops-plane frames, far outside the engine-index
/// range so a poll can never collide with a data-plane dedup entry.
const OPS_CLIENT_ID: u64 = u64::MAX;

/// Healthy band for `net.retry_per_mille` (retries per 1000 frames).
/// The stock plan's 2 % drop + 5 % delay keeps honest windows well
/// under this; kill/partition windows blow through it.
const RETRY_PER_MILLE_HI: u64 = 150;

/// Healthy band ceiling for the mean download queue depth, in
/// milli-thumbnails (4000 = a mean backlog of 4 per poll).
const QUEUE_DEPTH_MILLI_HI: u64 = 4000;

/// One shard's coarse health verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStatus {
    /// Both hosts answer, no lease, no open breaker, no stale peer.
    Healthy,
    /// Serving, but impaired: an open breaker, a stale peer awaiting
    /// resync, or an unreachable replica (writes land primary-only).
    Degraded,
    /// The configured primary is out of service: unreachable this
    /// window, or a failover lease has the replica acting as primary.
    Partitioned,
}

/// The run-level starvation verdict (ROADMAP item 4's diagnosis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Starvation {
    /// Neither signature is present.
    None,
    /// The mesh is the bottleneck: primaries unreachable, leases
    /// active, breakers opening, or the retry rate over band.
    Network,
    /// The pipeline is the bottleneck: the download queue is deep
    /// while the network is quiet.
    Processing,
}

impl Starvation {
    /// One-line operator description, used by [`HealthReport::render_text`].
    pub fn describe(self) -> &'static str {
        match self {
            Starvation::None => "none (all gauges in band)",
            Starvation::Network => {
                "network (primaries down, leases active or retries over band — \
                 the mesh is starving the pipeline)"
            }
            Starvation::Processing => {
                "processing (download queue deep while the network is quiet — \
                 the pipeline is starving itself)"
            }
        }
    }
}

/// The result of polling one host over the ops plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProbe {
    /// Host name (`shard0p`, `shard0r`, …).
    pub host: String,
    /// Did the poll round-trip this window?
    pub reachable: bool,
    /// The host's self-reported facts, when reachable.
    pub health: Option<HostHealth>,
}

/// One shard's combined server-side and client-side health.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// The coarse verdict (see [`ShardStatus`] for the rule).
    pub status: ShardStatus,
    /// Poll result for the configured primary.
    pub primary: HostProbe,
    /// Poll result for the replica.
    pub replica: HostProbe,
    /// Engine clients currently holding a failover lease on this shard.
    pub leases_active: u64,
    /// Engine clients whose breaker for this shard is open or half-open.
    pub breakers_open: u64,
    /// Stale peers (primary or replica awaiting resync) across clients.
    pub stale_peers: u64,
}

/// One gauge with its documented "healthy and intentional" band
/// (seans-arcade style: every number earns a range, and a value out of
/// band is either an incident or an intentional, documented state).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeBand {
    /// Gauge name (derived, not a registry metric).
    pub name: String,
    /// Observed value this window.
    pub value: u64,
    /// Inclusive lower edge of the healthy band.
    pub lo: u64,
    /// Inclusive upper edge of the healthy band.
    pub hi: u64,
}

impl GaugeBand {
    /// Is the value inside its healthy band?
    pub fn healthy(&self) -> bool {
        self.value >= self.lo && self.value <= self.hi
    }
}

/// One window's typed health report for the whole mesh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Window index the report describes.
    pub window: u64,
    /// Per-shard verdicts, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Derived gauges with their healthy bands, in emission order.
    pub bands: Vec<GaugeBand>,
    /// The run-level starvation verdict.
    pub starvation: Starvation,
}

impl HealthReport {
    /// The advisory starvation signal (the downloader's future
    /// backpressure input — see `DownloadModule::starvation_advisory`).
    pub fn starvation(&self) -> Starvation {
        self.starvation
    }

    /// Shards currently at `status`.
    pub fn count(&self, status: ShardStatus) -> u64 {
        self.shards.iter().filter(|s| s.status == status).count() as u64
    }

    /// Deterministic JSON encoding (field order fixed by the types).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("health reports always serialize")
    }

    /// Aligned-text dashboard: one row per shard, one row per gauge
    /// band, and the starvation verdict. Byte-identical across replays.
    pub fn render_text(&self) -> String {
        let mut out = format!("== mesh health · window {} ==\n", self.window);
        out.push_str(&format!(
            "{:<5} {:<9} {:<9} {:<12} {:>6} {:>9} {:>6}\n",
            "shard", "primary", "replica", "status", "leases", "breakers", "stale"
        ));
        for s in &self.shards {
            let up = |p: &HostProbe| if p.reachable { "up" } else { "DOWN" };
            let status = match s.status {
                ShardStatus::Healthy => "healthy",
                ShardStatus::Degraded => "degraded",
                ShardStatus::Partitioned => "partitioned",
            };
            out.push_str(&format!(
                "{:<5} {:<9} {:<9} {:<12} {:>6} {:>9} {:>6}\n",
                s.shard,
                up(&s.primary),
                up(&s.replica),
                status,
                s.leases_active,
                s.breakers_open,
                s.stale_peers,
            ));
        }
        out.push_str(&format!(
            "{:<34} {:>8} {:>12} {:>8}\n",
            "gauge", "value", "band", "verdict"
        ));
        for b in &self.bands {
            out.push_str(&format!(
                "{:<34} {:>8} {:>12} {:>8}\n",
                b.name,
                b.value,
                format!("{}..{}", b.lo, b.hi),
                if b.healthy() { "ok" } else { "OVER" },
            ));
        }
        out.push_str(&format!("starvation: {}\n", self.starvation.describe()));
        out
    }
}

/// Eagerly-registered ops-plane metrics, so the catalogue contract
/// covers them even before the first report.
struct OpsMetrics {
    polls: CounterHandle,
    poll_failures: CounterHandle,
    reports: CounterHandle,
    starvation_network: CounterHandle,
    starvation_processing: CounterHandle,
    shards_healthy: GaugeHandle,
    shards_degraded: GaugeHandle,
    shards_partitioned: GaugeHandle,
}

impl OpsMetrics {
    fn register(registry: &Registry) -> OpsMetrics {
        OpsMetrics {
            polls: registry.counter("ops.polls"),
            poll_failures: registry.counter("ops.poll_failures"),
            reports: registry.counter("ops.reports"),
            starvation_network: registry.counter("health.starvation_network"),
            starvation_processing: registry.counter("health.starvation_processing"),
            shards_healthy: registry.gauge("health.shards_healthy"),
            shards_degraded: registry.gauge("health.shards_degraded"),
            shards_partitioned: registry.gauge("health.shards_partitioned"),
        }
    }
}

/// The ops-plane observer of one mesh. Construct it once against the
/// run's net registry, then call [`HealthMonitor::observe`] per window;
/// band values are deltas since the previous call.
pub struct HealthMonitor {
    net: SimNet,
    registry: Registry,
    metrics: OpsMetrics,
    seq: u64,
    net_baseline: Snapshot,
    engine_baselines: Vec<Snapshot>,
}

impl HealthMonitor {
    /// Build a monitor for `net`, registering the `ops.*` / `health.*`
    /// metrics in `registry` (the registry the mesh's `net.*` and
    /// `chaos.*` families live in).
    pub fn new(net: &SimNet, registry: &Registry) -> HealthMonitor {
        HealthMonitor {
            net: net.clone(),
            registry: registry.clone(),
            metrics: OpsMetrics::register(registry),
            seq: 0,
            net_baseline: Registry::new().snapshot(),
            engine_baselines: Vec::new(),
        }
    }

    /// Poll one host over the quiet ops plane.
    fn probe(&mut self, host: &str) -> HostProbe {
        self.seq += 1;
        let frame = encode(&Frame {
            client: OPS_CLIENT_ID,
            seq: self.seq,
            ctx: None,
            payload: Payload::OpsReq(OpsRequest::Health),
        });
        self.metrics.polls.inc();
        match self.net.poll(OPS_HOST, host, &frame) {
            Ok(bytes) => match decode(&bytes).expect("well-formed ops response").payload {
                Payload::OpsResp(OpsResponse::Health(health)) => HostProbe {
                    host: host.to_string(),
                    reachable: true,
                    health: Some(health),
                },
                other => panic!("ops poll answered with {other:?}"),
            },
            Err(_) => {
                self.metrics.poll_failures.inc();
                HostProbe {
                    host: host.to_string(),
                    reachable: false,
                    health: None,
                }
            }
        }
    }

    /// Build this window's report: poll every shard host, fold in the
    /// clients' failover state, and band the registry deltas since the
    /// previous call. `engines` are the per-engine registries whose
    /// `download.*` family feeds the processing-starvation signal.
    pub fn observe(
        &mut self,
        window: u64,
        clients: &[Arc<ShardedStoreClient>],
        engines: &[Registry],
    ) -> HealthReport {
        assert!(!clients.is_empty(), "a mesh without clients has no health");
        let shard_count = clients[0].shard_count();
        let views: Vec<Vec<ShardView>> = clients.iter().map(|c| c.shard_views()).collect();

        let mut shards = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let primary = self.probe(&tero_net::primary_host(shard));
            let replica = self.probe(&tero_net::replica_host(shard));
            let leases_active = views.iter().filter(|v| v[shard].lease_active).count() as u64;
            let breakers_open = views
                .iter()
                .filter(|v| v[shard].breaker != tero_net::BreakerState::Closed)
                .count() as u64;
            let stale_peers = views
                .iter()
                .map(|v| v[shard].primary_stale as u64 + v[shard].replica_stale as u64)
                .sum();
            let status = if leases_active > 0 || !primary.reachable {
                ShardStatus::Partitioned
            } else if breakers_open > 0 || stale_peers > 0 || !replica.reachable {
                ShardStatus::Degraded
            } else {
                ShardStatus::Healthy
            };
            shards.push(ShardHealth {
                shard,
                status,
                primary,
                replica,
                leases_active,
                breakers_open,
                stale_peers,
            });
        }

        // Registry deltas since the previous report.
        let net_delta = self.registry.delta_since(&self.net_baseline);
        self.net_baseline = self.registry.snapshot();
        self.engine_baselines
            .resize(engines.len().max(self.engine_baselines.len()), {
                Registry::new().snapshot()
            });
        let engine_counter = |name: &str| -> u64 {
            engines
                .iter()
                .zip(self.engine_baselines.iter())
                .map(|(reg, base)| reg.delta_since(base).counter(name).unwrap_or(0))
                .sum()
        };
        let net_counter = |name: &str| net_delta.counter(name).unwrap_or(0);

        let frames = net_counter("net.frames").max(1);
        let retry_per_mille = net_counter("net.retries") * 1000 / frames;
        let (queue_count, queue_sum) = engines
            .iter()
            .zip(self.engine_baselines.iter())
            .map(|(reg, base)| {
                let delta = reg.delta_since(base);
                delta
                    .histogram("download.queue_depth")
                    .map(|h| (h.count, h.sum))
                    .unwrap_or((0, 0))
            })
            .fold((0u64, 0u64), |(c, s), (dc, ds)| (c + dc, s + ds));
        let queue_mean_milli = (queue_sum * 1000).checked_div(queue_count).unwrap_or(0);
        let download_breaker = engine_counter("download.breaker_open");
        let download_dead = engine_counter("download.dead_letter");
        for (reg, base) in engines.iter().zip(self.engine_baselines.iter_mut()) {
            *base = reg.snapshot();
        }

        let band = |name: &str, value: u64, hi: u64| GaugeBand {
            name: name.to_string(),
            value,
            lo: 0,
            hi,
        };
        let bands = vec![
            band("net.retry_per_mille", retry_per_mille, RETRY_PER_MILLE_HI),
            band("net.failovers_delta", net_counter("net.failovers"), 0),
            band(
                "net.lease_renewals_delta",
                net_counter("net.lease_renewals"),
                0,
            ),
            band("net.breaker_open_delta", net_counter("net.breaker_open"), 0),
            band("net.resyncs_delta", net_counter("net.resyncs"), 0),
            band(
                "download.queue_depth_mean_milli",
                queue_mean_milli,
                QUEUE_DEPTH_MILLI_HI,
            ),
            band("download.breaker_open_delta", download_breaker, 0),
            band("download.dead_letter_delta", download_dead, 0),
        ];

        let network_signal = shards.iter().any(|s| !s.primary.reachable)
            || shards.iter().any(|s| s.leases_active > 0)
            || net_counter("net.failovers") > 0
            || net_counter("net.lease_renewals") > 0
            || net_counter("net.breaker_open") > 0
            || retry_per_mille > RETRY_PER_MILLE_HI
            || download_breaker > 0;
        let starvation = if network_signal {
            Starvation::Network
        } else if queue_mean_milli > QUEUE_DEPTH_MILLI_HI {
            Starvation::Processing
        } else {
            Starvation::None
        };

        let report = HealthReport {
            window,
            shards,
            bands,
            starvation,
        };
        self.metrics.reports.inc();
        match starvation {
            Starvation::Network => self.metrics.starvation_network.inc(),
            Starvation::Processing => self.metrics.starvation_processing.inc(),
            Starvation::None => {}
        }
        self.metrics
            .shards_healthy
            .set(report.count(ShardStatus::Healthy) as i64);
        self.metrics
            .shards_degraded
            .set(report.count(ShardStatus::Degraded) as i64);
        self.metrics
            .shards_partitioned
            .set(report.count(ShardStatus::Partitioned) as i64);
        report
    }
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("polls", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_chaos::{ChaosInjector, FaultPlan, HostKill, NetFault};
    use tero_net::default_link;
    use tero_store::{KvStore, RemoteStore};

    fn quiet_mesh(shards: usize) -> (SimNet, Registry, Vec<Arc<ShardedStoreClient>>) {
        let registry = Registry::new();
        let net = SimNet::with_shards(
            default_link(),
            ChaosInjector::new(FaultPlan::quiet(3)),
            shards,
        );
        let client = Arc::new(ShardedStoreClient::new(
            net.clone(),
            0,
            shards,
            &registry,
            7,
        ));
        (net, registry, vec![client])
    }

    #[test]
    fn quiet_mesh_reports_all_healthy() {
        let (net, registry, clients) = quiet_mesh(2);
        let mut monitor = HealthMonitor::new(&net, &registry);
        let report = monitor.observe(0, &clients, &[]);
        assert_eq!(report.count(ShardStatus::Healthy), 2);
        assert_eq!(report.starvation(), Starvation::None);
        assert!(report.bands.iter().all(GaugeBand::healthy), "{report:?}");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ops.polls"), Some(4));
        assert_eq!(snap.counter("ops.poll_failures"), Some(0));
        assert_eq!(snap.gauge("health.shards_healthy").unwrap().value, 2);
    }

    #[test]
    fn killed_primary_reads_partitioned_then_recovers() {
        let registry = Registry::new();
        let plan = FaultPlan {
            net: NetFault {
                kills: vec![HostKill {
                    host: "shard0p".into(),
                    from_window: 1,
                    until_window: 2,
                }],
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(3)
        };
        let net = SimNet::with_shards(default_link(), ChaosInjector::new(plan), 1);
        let client = Arc::new(ShardedStoreClient::new(net.clone(), 0, 1, &registry, 7));
        let kv = KvStore::remote(client.clone() as Arc<dyn RemoteStore>);
        let clients = vec![client];
        let mut monitor = HealthMonitor::new(&net, &registry);

        kv.set("a", "1");
        let w0 = monitor.observe(0, &clients, &[]);
        assert_eq!(w0.shards[0].status, ShardStatus::Healthy);

        net.set_window(1);
        kv.set("b", "2"); // forces the failover + lease
        let w1 = monitor.observe(1, &clients, &[]);
        assert_eq!(w1.shards[0].status, ShardStatus::Partitioned);
        assert!(!w1.shards[0].primary.reachable);
        assert_eq!(w1.starvation(), Starvation::Network);

        // Past the kill and the lease: the next op reclaims the primary.
        net.set_window(3);
        kv.set("c", "3");
        let w3 = monitor.observe(3, &clients, &[]);
        assert_eq!(w3.shards[0].status, ShardStatus::Healthy);
        // The reclaim resync shows up (intentionally) out of band.
        let resyncs = w3
            .bands
            .iter()
            .find(|b| b.name == "net.resyncs_delta")
            .unwrap();
        assert!(!resyncs.healthy(), "reclaim resync is visible: {resyncs:?}");
    }

    #[test]
    fn report_encodings_are_deterministic_and_parse() {
        let render = || {
            let (net, registry, clients) = quiet_mesh(2);
            let mut monitor = HealthMonitor::new(&net, &registry);
            let report = monitor.observe(0, &clients, &[]);
            (report.to_json(), report.render_text())
        };
        let (json_a, text_a) = render();
        let (json_b, text_b) = render();
        assert_eq!(json_a, json_b);
        assert_eq!(text_a, text_b);
        let parsed: HealthReport = serde_json::from_str(&json_a).expect("round trip");
        assert_eq!(parsed.to_json(), json_a);
        assert!(text_a.contains("starvation: none"));
    }
}
