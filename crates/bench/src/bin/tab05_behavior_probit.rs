//! Table 5 — average marginal effects of latency spikes on server changes
//! and game changes, per game and spike-size threshold (§6).
//!
//! Runs the full pipeline over a world, prepares the behaviour streams per
//! §6's steps (change-capable streamers only; short streams dropped;
//! no-change streams truncated at the median time-to-first-change), fits a
//! Probit per (game, threshold) and reports the average marginal effect.
//!
//! Paper's shape: all effects positive; server-change effects of order
//! 0.3–1.6 % per spike; game-change effects an order of magnitude larger
//! (1–5 %); for some games (CoD) the effect grows with spike size.
//!
//! Usage: `tab05_behavior_probit [--n 900] [--days 21]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::behavior::{game_change_effects, server_change_effects, EffectRow, SPIKE_SIZES_MS};

use tero_core::pipeline::{min_play_for, ExtractionMode, Tero};
use tero_types::GameId;
use tero_world::{World, WorldConfig};

#[derive(Serialize)]
struct Output {
    server_rows: Vec<EffectRow>,
    game_rows: Vec<EffectRow>,
}

fn print_rows(title: &str, rows: &[EffectRow]) {
    println!();
    println!("{title}");
    print!("{:<22} {:>8}", "game", "Nobs");
    for s in SPIKE_SIZES_MS {
        print!(" {:>7}", format!("≥{s:.0}ms"));
    }
    println!();
    for row in rows {
        print!("{:<22} {:>8}", row.game.name(), row.n_obs);
        for cell in &row.cells {
            match cell {
                Some(c) => {
                    let sig = if c.p_value <= 0.01 {
                        ""
                    } else if c.p_value <= 0.10 {
                        "*"
                    } else {
                        "°" // not significant
                    };
                    print!(" {:>6.4}{sig}", c.marginal_effect);
                }
                None => print!(" {:>7}", "-"),
            }
        }
        println!();
    }
    println!("  (* significant at 10 % only, ° not significant, - no model)");
}

fn main() {
    let n = arg_usize("--n", 840);
    let days = arg_usize("--days", 21) as u64;
    header("Table 5: marginal effects of spikes on server/game changes");
    println!("({n} streamers, {days} days; calibrated extraction)");

    // The behaviour study needs dense {location, game} groups (the paper's
    // observations span hundreds of thousands of streams); pin streamers
    // of each Table 5 game at major hubs so clusters and server-change
    // detection have the populations they need.
    let gaz = tero_geoparse::Gazetteer::new();
    let hubs = [
        tero_world::World::city(&gaz, "Los Angeles"),
        tero_world::World::city(&gaz, "London"),
    ];
    let per = (n / (hubs.len() * GameId::TABLE5.len())).max(10);
    let mut pinned = Vec::new();
    for game in GameId::TABLE5 {
        for hub in &hubs {
            pinned.push((hub.clone(), game, per));
        }
    }
    let mut world = World::build(WorldConfig {
        seed: 505,
        n_streamers: 0,
        days,
        pinned,
        shared_events: 20,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    let mut server_rows = Vec::new();
    let mut game_rows = Vec::new();
    for game in GameId::TABLE5 {
        if let Some(row) = server_change_effects(&report.behavior_streams, game, min_play_for(game))
        {
            server_rows.push(row);
        }
        if let Some(row) = game_change_effects(&report.behavior_streams, game) {
            game_rows.push(row);
        }
    }

    print_rows(
        "Server changes (paper: effects 0.0025-0.016 per spike):",
        &server_rows,
    );
    print_rows(
        "Game changes (paper: an order of magnitude larger, 0.009-0.046):",
        &game_rows,
    );

    // Headline comparisons (rows with enough observations only).
    println!();
    let mean_effect = |rows: &[EffectRow]| {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.n_obs >= 100)
            .flat_map(|r| r.cells.iter().flatten().map(|c| c.marginal_effect))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let s = mean_effect(&server_rows);
    let g = mean_effect(&game_rows);
    println!("mean server-change effect {s:.4}; mean game-change effect {g:.4}");
    println!();
    println!("note: the game-change panel is directly comparable to the paper's");
    println!("(Nobs in the hundreds-to-thousands). The server-change panel suffers");
    println!("small-sample changer selection at simulation scale — the paper had");
    println!("16k-95k changer streams vs our ~10^2 — which inflates its AMEs; the");
    println!("qualitative findings (positive, size-increasing, significant spike");
    println!("effects) still hold. See EXPERIMENTS.md.");

    // §6's closing suggestion: specific retention numbers by spike count.
    println!();
    println!("retention rate by spike count (the paper's proposed follow-up):");
    for game in [
        GameId::LeagueOfLegends,
        GameId::CodWarzone,
        GameId::GenshinImpact,
    ] {
        let curve = tero_core::behavior::retention_curve(&report.behavior_streams, game, 4);
        print!("  {:<22}", game.name());
        for (k, p, n) in &curve {
            let label = if *k == 4 {
                "4+".to_string()
            } else {
                k.to_string()
            };
            print!(" {label}:{:>4.1}% (n={n})", 100.0 * p);
        }
        println!();
    }

    write_json(
        "tab05_behavior_probit",
        &Output {
            server_rows,
            game_rows,
        },
    );
}
