//! Value-generation strategies for the proptest shim.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Something that can generate values of `Self::Value` from an RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ------------------------------------------------------- numeric ranges --

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}
uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = rng.range_u64(0, span.max(1));
                (self.start as i64).wrapping_add(off as i64) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.f64() as f32) * (self.end - self.start)
    }
}

// ------------------------------------------------------------ any::<T>() --

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across a wide magnitude range.
        let mag = rng.f64() * 600.0 - 300.0;
        let sign = if rng.bool(0.5) { 1.0 } else { -1.0 };
        sign * mag.exp2().min(f64::MAX / 2.0)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --------------------------------------------------------------- tuples --

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ------------------------------------------------------- regex strings --

/// `&str` literals act as simplified-regex string strategies.
///
/// Supported syntax: a sequence of atoms, where an atom is a literal
/// character or a character class `[...]` (with `a-z` ranges), optionally
/// followed by `{n}` or `{m,n}`. This covers patterns like
/// `"[a-z0-9]{1,8}"`; anchors, alternation, escapes, and negated classes
/// are not supported and panic.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal character.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            }
            '(' | ')' | '|' | '^' | '$' | '*' | '+' | '?' | '\\' => {
                panic!(
                    "unsupported regex syntax {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Parse an optional {m,n} / {n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.range_usize(lo, hi + 1);
        for _ in 0..count {
            out.push(alphabet[rng.range_usize(0, alphabet.len())]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !class.is_empty() && class[0] != '^',
        "empty or negated class in pattern {pattern:?}"
    );
    let mut alphabet = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            for cp in lo..=hi {
                alphabet.push(char::from_u32(cp).expect("bad range"));
            }
            j += 3;
        } else {
            alphabet.push(class[j]);
            j += 1;
        }
    }
    alphabet
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = (5u32..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn regex_class_with_quantifier() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let s = "[a-z0-9]{1,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_literal_chars_and_spaces() {
        let mut rng = TestRng::new(4);
        let s = "[0-9msping :]{0,12}".generate(&mut rng);
        assert!(s.len() <= 12);
        assert!(s
            .chars()
            .all(|c| c.is_ascii_digit() || "msping :".contains(c)));
    }

    #[test]
    fn regex_bare_literals() {
        let mut rng = TestRng::new(5);
        assert_eq!("abc".generate(&mut rng), "abc");
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(6);
        let (a, b) = ("[a-z]{1,3}", 0u32..5).generate(&mut rng);
        assert!(!a.is_empty() && a.len() <= 3);
        assert!(b < 5);
    }
}
