//! Mergeable quantile sketches for the serving layer (`tero-serve`).
//!
//! A [`QuantileSketch`] is a DDSketch-style summary of a latency
//! distribution: values land in logarithmically-spaced buckets chosen so
//! that every value in a bucket is within a fixed *relative* distance of
//! every other. Two sketches built over disjoint sample sets merge by
//! adding bucket counts — merging is associative and commutative *in
//! effect* (any merge order yields an identical sketch, byte-for-byte in
//! its wire encoding), which is what lets the staged engine commit
//! per-window sketches and the serving layer combine them freely.
//!
//! ## Accuracy contract
//!
//! With relative accuracy `α` (default [`DEFAULT_ALPHA`]), bucket `i ≥ 1`
//! covers the half-open range `(γ^(i-1), γ^i]` with `γ = (1+α)/(1−α)`;
//! bucket 0 covers exactly the value `0` (and anything non-positive), and
//! negative indices cover values below 1. Because the bucket ranges are
//! disjoint and ordered, the sketch's cumulative counts agree with the
//! exact sorted sample's ranks at every bucket boundary, so the value the
//! sketch returns for a quantile sits in the **same bucket** as the exact
//! nearest-rank sample. The documented guarantee, pinned by the property
//! tests in this module and by `tests/serve_accuracy.rs`:
//!
//! > `quantile(p)` differs from the exact nearest-rank percentile
//! > ([`crate::descriptive::percentile_nearest_rank`]) by a relative
//! > error of at most [`QuantileSketch::relative_error_bound`]
//! > `= γ − 1 = 2α/(1−α)` (≈ 2.02 % at the default `α = 1 %`). Zero
//! > values are exact.
//!
//! ## One percentile definition
//!
//! `quantile` uses the **same nearest-rank definition** as
//! `tero_obs::Histogram::percentile`: the target is rank
//! `ceil(p/100 · n)` (1-based, clamped to at least 1), the estimate
//! interpolates linearly *by rank* inside the containing bucket, and the
//! result is clamped to the observed `[min, max]` — so single-valued
//! sketches are exact at every percentile. The two structures differ
//! only in bucket geometry (powers of two vs powers of `γ`) and boundary
//! rounding: a value exactly `2^k` starts `Histogram` bucket `k+1`
//! (lower-inclusive), while a value exactly `γ^k` *closes* sketch bucket
//! `k` (upper-inclusive). docs/OPERATIONS.md quotes this shared
//! definition for every p50/p95/p99 the system reports.

use serde::{Deserialize, Serialize};

/// Default relative accuracy `α`: served quantiles within ~2 % of the
/// exact nearest-rank value (see the module docs for the exact bound).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A mergeable quantile sketch over non-negative `f64` values.
///
/// Insertion and merging only touch integer bucket counts (plus exact
/// min/max/sum bookkeeping), so the sketch built from a multiset of
/// values is identical regardless of insertion order, worker count, or
/// how the values were split across merged partial sketches.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Relative accuracy the sketch was built with.
    alpha: f64,
    /// `(1+α)/(1−α)` — the bucket-width ratio.
    gamma: f64,
    /// `ln γ`, cached for bucket indexing.
    ln_gamma: f64,
    /// Count of non-positive values (the exact "zero bucket").
    zero: u64,
    /// Positive-value buckets as `(index, count)`, sorted by index.
    /// Bucket `i` covers `(γ^(i-1), γ^i]`.
    buckets: Vec<(i32, u64)>,
    /// Total inserted values (zero bucket included).
    count: u64,
    /// Exact sum of inserted values.
    sum: f64,
    /// Exact smallest inserted value (`f64::INFINITY` when empty).
    min: f64,
    /// Exact largest inserted value (`f64::NEG_INFINITY` when empty).
    max: f64,
}

/// The serde wire shape: everything needed to reconstruct the sketch.
/// `count` is derivable (zero + Σ bucket counts) and `min`/`max` are
/// `None` when empty, so a decoded sketch can never be internally
/// inconsistent.
#[derive(Serialize, Deserialize)]
struct Wire {
    alpha: f64,
    zero: u64,
    buckets: Vec<(i32, u64)>,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// An empty sketch with relative accuracy `alpha ∈ (0, 1)`.
    pub fn new(alpha: f64) -> QuantileSketch {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch accuracy must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            zero: 0,
            buckets: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The relative accuracy `α` this sketch was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The documented worst-case relative error of [`Self::quantile`]
    /// against the exact nearest-rank percentile: `γ − 1 = 2α/(1−α)`.
    pub fn relative_error_bound(&self) -> f64 {
        self.gamma - 1.0
    }

    /// Bucket index for a positive value: `ceil(ln v / ln γ)`, so bucket
    /// `i` covers `(γ^(i-1), γ^i]` (upper-inclusive).
    #[inline]
    fn bucket_for(&self, v: f64) -> i32 {
        (v.ln() / self.ln_gamma).ceil() as i32
    }

    /// `(lo, hi]` value bounds of bucket `i`.
    #[inline]
    fn bucket_bounds(&self, i: i32) -> (f64, f64) {
        (self.gamma.powi(i - 1), self.gamma.powi(i))
    }

    /// Insert one value. Non-positive values land in the exact zero
    /// bucket; `NaN` panics (nothing in the pipeline produces one).
    pub fn insert(&mut self, v: f64) {
        self.insert_n(v, 1);
    }

    /// Insert `n` copies of one value in O(log buckets).
    pub fn insert_n(&mut self, v: f64, n: u64) {
        assert!(!v.is_nan(), "NaN inserted into QuantileSketch");
        if n == 0 {
            return;
        }
        if v <= 0.0 {
            self.zero += n;
        } else {
            let idx = self.bucket_for(v);
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.count += n;
        self.sum += v * n as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Build a sketch at the default accuracy from a slice of values.
    pub fn from_values(values: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::default();
        for &v in values {
            s.insert(v);
        }
        s
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch has seen no values.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of inserted values (0.0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact smallest inserted value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest inserted value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another sketch into this one by adding bucket counts.
    /// Associative and commutative in effect: any merge order over the
    /// same partial sketches yields an identical (byte-identical once
    /// encoded) result. Panics on mismatched accuracy — sketches from
    /// different `α` families have incompatible bucket geometry.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha == other.alpha,
            "cannot merge sketches with different accuracy ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.zero += other.zero;
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Merge an iterator of sketches into one, in the order given.
    /// Callers that want a pinned byte-identical result across processes
    /// should iterate a sorted key order (e.g. a `BTreeMap`), though the
    /// merged *contents* are the same for any order. `None` when the
    /// iterator is empty.
    pub fn merge_all<'a>(
        sketches: impl IntoIterator<Item = &'a QuantileSketch>,
    ) -> Option<QuantileSketch> {
        let mut iter = sketches.into_iter();
        let mut acc = iter.next()?.clone();
        for s in iter {
            acc.merge(s);
        }
        Some(acc)
    }

    /// The `p`-th percentile (0–100) by the shared nearest-rank
    /// definition (see the module docs): target rank `ceil(p/100 · n)`
    /// clamped to at least 1, linear interpolation by rank inside the
    /// containing bucket, clamped to the exact `[min, max]`. `None` when
    /// the sketch is empty, mirroring `tero_obs::Histogram::percentile`
    /// and `BoxplotStats::from_samples` — a percentile of nothing is not
    /// a number.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if target <= self.zero {
            return Some(0.0);
        }
        let mut cumulative = self.zero;
        for &(idx, n) in &self.buckets {
            if cumulative + n >= target {
                let (lo, hi) = self.bucket_bounds(idx);
                let into = (target - cumulative) as f64 / n as f64;
                let est = lo + into * (hi - lo);
                return Some(est.clamp(self.min, self.max));
            }
            cumulative += n;
        }
        Some(self.max)
    }

    /// The sketch-served five-number summary the paper publishes for
    /// every distribution (§5.2): p5/p25/p50/p75/p95 plus count and
    /// exact mean. `None` when empty.
    pub fn boxplot(&self) -> Option<crate::descriptive::BoxplotStats> {
        Some(crate::descriptive::BoxplotStats {
            n: usize::try_from(self.count).unwrap_or(usize::MAX),
            mean: self.mean()?,
            p5: self.quantile(5.0)?,
            p25: self.quantile(25.0)?,
            p50: self.quantile(50.0)?,
            p75: self.quantile(75.0)?,
            p95: self.quantile(95.0)?,
        })
    }

    /// The empirical CDF at `x`: the fraction of inserted mass ≤ `x`,
    /// with linear rank interpolation inside `x`'s bucket. Exact at every
    /// bucket boundary; inside a bucket the error is bounded by that
    /// bucket's mass fraction. `None` when empty.
    pub fn cdf(&self, x: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if x < self.min.max(0.0) {
            // Below every observation (zero bucket included: min is 0.0
            // whenever the zero bucket is occupied).
            if x < 0.0 || self.zero == 0 {
                return Some(0.0);
            }
        }
        if x >= self.max {
            return Some(1.0);
        }
        let mut below = self.zero;
        let idx = self.bucket_for(x.max(f64::MIN_POSITIVE));
        for &(i, n) in &self.buckets {
            if i < idx {
                below += n;
            } else if i == idx {
                // Interpolate by rank across x's position in the bucket.
                let (lo, hi) = self.bucket_bounds(i);
                let frac = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                below += (frac * n as f64).round() as u64;
            } else {
                break;
            }
        }
        Some(below.min(self.count) as f64 / self.count as f64)
    }

    /// The sketch as a histogram: `(lo, hi, count)` rows for every
    /// occupied bucket, ascending, with the zero bucket reported as
    /// `(0, 0, n)`. This is the raw shape behind every other query.
    pub fn histogram(&self) -> Vec<(f64, f64, u64)> {
        let mut rows = Vec::with_capacity(self.buckets.len() + 1);
        if self.zero > 0 {
            rows.push((0.0, 0.0, self.zero));
        }
        for &(idx, n) in &self.buckets {
            let (lo, hi) = self.bucket_bounds(idx);
            rows.push((lo, hi, n));
        }
        rows
    }

    /// Approximate 1-D Wasserstein-1 distance to another sketch, by the
    /// quantile-function integral `∫|F⁻¹(q) − G⁻¹(q)| dq` evaluated with
    /// a midpoint rule at [`WASSERSTEIN_GRID`] ranks. Deterministic; the
    /// discretisation adds `O(1/grid)` rank error on top of the per-value
    /// relative bound. `None` when either sketch is empty.
    pub fn wasserstein(&self, other: &QuantileSketch) -> Option<f64> {
        if self.count == 0 || other.count == 0 {
            return None;
        }
        let mut acc = 0.0;
        for i in 0..WASSERSTEIN_GRID {
            let q = (i as f64 + 0.5) / WASSERSTEIN_GRID as f64 * 100.0;
            let a = self.quantile(q).expect("non-empty");
            let b = other.quantile(q).expect("non-empty");
            acc += (a - b).abs();
        }
        Some(acc / WASSERSTEIN_GRID as f64)
    }

    /// Serialise to the JSON wire encoding (vendored `serde_json`).
    /// Byte-identical for identical sketch contents: buckets are kept
    /// sorted and every field is order-independent under insert/merge.
    pub fn encode(&self) -> String {
        serde_json::to_string(self).expect("sketch serialises")
    }

    /// Decode a [`Self::encode`] string. `None` on malformed input.
    pub fn decode(raw: &str) -> Option<QuantileSketch> {
        serde_json::from_str(raw).ok()
    }
}

/// Midpoint-rule resolution of [`QuantileSketch::wasserstein`].
pub const WASSERSTEIN_GRID: usize = 256;

impl Serialize for QuantileSketch {
    fn serialize(&self) -> serde::Value {
        Wire {
            alpha: self.alpha,
            zero: self.zero,
            buckets: self.buckets.clone(),
            sum: self.sum,
            min: self.min(),
            max: self.max(),
        }
        .serialize()
    }
}

impl Deserialize for QuantileSketch {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let wire = Wire::deserialize(v)?;
        if !(wire.alpha > 0.0 && wire.alpha < 1.0) {
            return Err(serde::Error::custom("sketch alpha out of range"));
        }
        let mut s = QuantileSketch::new(wire.alpha);
        let bucket_total: u64 = wire.buckets.iter().map(|&(_, n)| n).sum();
        if wire.buckets.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(serde::Error::custom("sketch buckets not sorted"));
        }
        s.zero = wire.zero;
        s.buckets = wire.buckets;
        s.count = wire.zero + bucket_total;
        s.sum = wire.sum;
        s.min = wire.min.unwrap_or(f64::INFINITY);
        s.max = wire.max.unwrap_or(f64::NEG_INFINITY);
        if (s.count > 0) != (wire.min.is_some() && wire.max.is_some()) {
            return Err(serde::Error::custom("sketch min/max inconsistent"));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::percentile_nearest_rank;

    fn assert_within_bound(sketch: &QuantileSketch, values: &[f64], p: f64) {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = percentile_nearest_rank(&sorted, p).unwrap();
        let served = sketch.quantile(p).unwrap();
        let bound = sketch.relative_error_bound() * exact.abs() + 1e-12;
        assert!(
            (served - exact).abs() <= bound,
            "p{p}: served {served} vs exact {exact} (bound {bound})"
        );
    }

    #[test]
    fn empty_sketch_answers_none() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(50.0), None);
        assert_eq!(s.cdf(10.0), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.boxplot(), None);
        assert!(s.histogram().is_empty());
        assert_eq!(s.wasserstein(&QuantileSketch::default()), None);
    }

    #[test]
    fn single_value_is_exact_everywhere() {
        let mut s = QuantileSketch::default();
        s.insert(42.0);
        for p in [0.0, 5.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(s.quantile(p), Some(42.0), "p{p}");
        }
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
        assert_eq!(s.cdf(41.0), Some(0.0));
        assert_eq!(s.cdf(42.0), Some(1.0));
    }

    #[test]
    fn zero_values_are_exact() {
        let mut s = QuantileSketch::default();
        s.insert_n(0.0, 10);
        s.insert_n(100.0, 10);
        assert_eq!(s.quantile(25.0), Some(0.0));
        assert!((s.cdf(0.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s.count(), 20);
    }

    #[test]
    fn quantiles_within_documented_bound() {
        let values: Vec<f64> = (1..=1000).map(|i| (i as f64).powf(1.3)).collect();
        let s = QuantileSketch::from_values(&values);
        for p in [1.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            assert_within_bound(&s, &values, p);
        }
    }

    #[test]
    fn merge_equals_bulk_build() {
        let a: Vec<f64> = (1..=500).map(|i| i as f64 * 0.7).collect();
        let b: Vec<f64> = (1..=300).map(|i| i as f64 * 1.9 + 3.0).collect();
        let mut merged = QuantileSketch::from_values(&a);
        merged.merge(&QuantileSketch::from_values(&b));
        let mut all = a.clone();
        all.extend(&b);
        let bulk = QuantileSketch::from_values(&all);
        assert_eq!(merged, bulk);
        assert_eq!(merged.encode(), bulk.encode(), "byte-identical encoding");
        // Commutative in effect.
        let mut flipped = QuantileSketch::from_values(&b);
        flipped.merge(&QuantileSketch::from_values(&a));
        assert_eq!(flipped.encode(), bulk.encode());
    }

    #[test]
    fn merge_all_in_sorted_order() {
        let parts: Vec<QuantileSketch> = (0..4)
            .map(|k| QuantileSketch::from_values(&[(k + 1) as f64, (k + 10) as f64]))
            .collect();
        let merged = QuantileSketch::merge_all(parts.iter()).unwrap();
        assert_eq!(merged.count(), 8);
        assert!(QuantileSketch::merge_all(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic(expected = "different accuracy")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let values: Vec<f64> = (1..=200).map(|i| (i * 7 % 97) as f64 + 1.0).collect();
        let s = QuantileSketch::from_values(&values);
        let mut prev = 0.0;
        for x in 0..110 {
            let c = s.cdf(x as f64).unwrap();
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev, "cdf not monotone at {x}");
            prev = c;
        }
        assert_eq!(s.cdf(0.5), Some(0.0));
        assert_eq!(s.cdf(1000.0), Some(1.0));
    }

    #[test]
    fn cdf_exact_at_bucket_boundaries() {
        // Values far enough apart to occupy distinct buckets: the CDF at
        // any point between two buckets is the exact fraction below.
        let values = [1.0, 10.0, 100.0, 1000.0];
        let s = QuantileSketch::from_values(&values);
        assert!((s.cdf(5.0).unwrap() - 0.25).abs() < 1e-12);
        assert!((s.cdf(50.0).unwrap() - 0.5).abs() < 1e-12);
        assert!((s.cdf(500.0).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_rows_cover_all_mass() {
        let values = [0.0, 0.0, 3.0, 3.0, 3.0, 90.0];
        let s = QuantileSketch::from_values(&values);
        let rows = s.histogram();
        assert_eq!(rows[0], (0.0, 0.0, 2));
        let total: u64 = rows.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, s.count());
        for w in rows.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-12, "rows out of order");
        }
    }

    #[test]
    fn wasserstein_tracks_translation() {
        let a: Vec<f64> = (1..=400).map(|i| 50.0 + (i % 20) as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v * 2.0).collect();
        let sa = QuantileSketch::from_values(&a);
        let sb = QuantileSketch::from_values(&b);
        let d = sa.wasserstein(&sb).unwrap();
        let exact = crate::wasserstein::wasserstein_1d(&a, &b);
        // Relative bound on values plus the grid discretisation.
        assert!(
            (d - exact).abs() <= 0.05 * exact + 1.0,
            "sketch W1 {d} vs exact {exact}"
        );
        assert!((sa.wasserstein(&sa).unwrap()).abs() < 1e-9);
        // Symmetric.
        assert!((sa.wasserstein(&sb).unwrap() - sb.wasserstein(&sa).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64 * 1.5).collect();
        let s = QuantileSketch::from_values(&values);
        let decoded = QuantileSketch::decode(&s.encode()).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.encode(), s.encode());
        // Empty sketch round-trips too.
        let e = QuantileSketch::default();
        assert_eq!(QuantileSketch::decode(&e.encode()).unwrap(), e);
        // Garbage is rejected, not misparsed.
        assert!(QuantileSketch::decode("not json").is_none());
        assert!(QuantileSketch::decode("{\"alpha\":7.0}").is_none());
    }

    #[test]
    fn gamma_power_boundary_rounds_down() {
        // The documented boundary rule, opposite of tero_obs::Histogram:
        // a value exactly γ^k closes (is the upper bound of) bucket k.
        let s = QuantileSketch::new(0.01);
        let gamma: f64 = (1.0 + 0.01) / (1.0 - 0.01);
        let k = 10;
        let boundary = gamma.powi(k);
        assert_eq!(s.bucket_for(boundary), k);
        assert_eq!(s.bucket_for(boundary * 1.000001), k + 1);
    }

    #[test]
    fn boxplot_matches_exact_within_bound() {
        let values: Vec<f64> = (1..=777).map(|i| 20.0 + (i % 113) as f64).collect();
        let s = QuantileSketch::from_values(&values);
        let bp = s.boxplot().unwrap();
        assert_eq!(bp.n as u64, s.count());
        for (p, served) in [
            (5.0, bp.p5),
            (25.0, bp.p25),
            (50.0, bp.p50),
            (75.0, bp.p75),
            (95.0, bp.p95),
        ] {
            let exact = percentile_nearest_rank(&values, p).unwrap();
            assert!(
                (served - exact).abs() <= s.relative_error_bound() * exact + 1e-12,
                "p{p}: {served} vs {exact}"
            );
        }
    }
}
