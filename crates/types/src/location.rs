//! The `{city, region, country}` location tuple (§3.1) and continents.
//!
//! Tero never localises a streamer at a granularity finer than a city; a
//! location may leave the city (and even the region) unspecified when only
//! coarser information is available.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A continent, used for the coverage analysis of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// Asia.
    Asia,
    /// Africa.
    Africa,
    /// Europe.
    Europe,
    /// North America (incl. Central America and the Caribbean).
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Oceania.
    Oceania,
}

impl Continent {
    /// All continents in Fig 7's order (AS, AF, EU, NA, SA, OC).
    pub const ALL: [Continent; 6] = [
        Continent::Asia,
        Continent::Africa,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::SouthAmerica,
        Continent::Oceania,
    ];

    /// Two-letter code as used on Fig 7's x-axis.
    pub fn code(self) -> &'static str {
        match self {
            Continent::Asia => "AS",
            Continent::Africa => "AF",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::SouthAmerica => "SA",
            Continent::Oceania => "OC",
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A geographic location at the granularity Tero works with: a country,
/// optionally refined by a first-level region (US state, Swiss canton,
/// French province, …) and a city.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Country name (always present).
    pub country: String,
    /// First-level administrative region, if known.
    pub region: Option<String>,
    /// City, if known.
    pub city: Option<String>,
}

impl Location {
    /// A country-level location.
    pub fn country(country: impl Into<String>) -> Self {
        Location {
            country: country.into(),
            region: None,
            city: None,
        }
    }

    /// A region-level location.
    pub fn region(country: impl Into<String>, region: impl Into<String>) -> Self {
        Location {
            country: country.into(),
            region: Some(region.into()),
            city: None,
        }
    }

    /// A city-level location.
    pub fn city(
        country: impl Into<String>,
        region: impl Into<String>,
        city: impl Into<String>,
    ) -> Self {
        Location {
            country: country.into(),
            region: Some(region.into()),
            city: Some(city.into()),
        }
    }

    /// The finest granularity this location is specified at.
    pub fn granularity(&self) -> Granularity {
        if self.city.is_some() {
            Granularity::City
        } else if self.region.is_some() {
            Granularity::Region
        } else {
            Granularity::Country
        }
    }

    /// Whether `self` is *compatible with* (a generalisation of, or equal to)
    /// `finer` — e.g. "California, USA" is compatible with
    /// "Los Angeles, California, USA". Used by the location module's
    /// acceptance rule (§3.1, rule 3).
    pub fn subsumes(&self, finer: &Location) -> bool {
        if self.country != finer.country {
            return false;
        }
        if let Some(r) = &self.region {
            match &finer.region {
                Some(fr) if fr == r => {}
                _ => return false,
            }
        }
        if let Some(c) = &self.city {
            match &finer.city {
                Some(fc) if fc == c => {}
                _ => return false,
            }
        }
        true
    }

    /// The more specific of two compatible locations, if one subsumes the
    /// other (§3.1 rule 3 / App D.2 step 4). Returns `None` when neither
    /// subsumes the other.
    pub fn more_complete<'a>(&'a self, other: &'a Location) -> Option<&'a Location> {
        if self.subsumes(other) {
            Some(other)
        } else if other.subsumes(self) {
            Some(self)
        } else {
            None
        }
    }

    /// Drop the city component, producing a region- (or country-) level view.
    pub fn to_region_level(&self) -> Location {
        Location {
            country: self.country.clone(),
            region: self.region.clone(),
            city: None,
        }
    }

    /// Drop region and city, producing the country-level view.
    pub fn to_country_level(&self) -> Location {
        Location::country(self.country.clone())
    }

    /// A stable string key for use in stores ("country/region/city").
    pub fn key(&self) -> String {
        match (&self.region, &self.city) {
            (Some(r), Some(c)) => format!("{}/{}/{}", self.country, r, c),
            (Some(r), None) => format!("{}/{}", self.country, r),
            _ => self.country.clone(),
        }
    }
}

/// The granularity of a [`Location`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Only the country is known.
    Country,
    /// Country and first-level region are known.
    Region,
    /// Country, region and city are known.
    City,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.city, &self.region) {
            (Some(c), Some(r)) => write!(f, "{c}, {r}, {}", self.country),
            (None, Some(r)) => write!(f, "{r}, {}", self.country),
            _ => f.write_str(&self.country),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_levels() {
        assert_eq!(
            Location::country("France").granularity(),
            Granularity::Country
        );
        assert_eq!(
            Location::region("USA", "California").granularity(),
            Granularity::Region
        );
        assert_eq!(
            Location::city("USA", "California", "Los Angeles").granularity(),
            Granularity::City
        );
    }

    #[test]
    fn subsumption() {
        let country = Location::country("USA");
        let region = Location::region("USA", "California");
        let city = Location::city("USA", "California", "Los Angeles");
        assert!(country.subsumes(&region));
        assert!(country.subsumes(&city));
        assert!(region.subsumes(&city));
        assert!(region.subsumes(&region));
        assert!(!region.subsumes(&country), "finer does not subsume coarser");
        assert!(!Location::region("USA", "Texas").subsumes(&city));
        assert!(!Location::country("Canada").subsumes(&city));
    }

    #[test]
    fn more_complete_picks_finer() {
        let region = Location::region("USA", "California");
        let city = Location::city("USA", "California", "Los Angeles");
        assert_eq!(region.more_complete(&city), Some(&city));
        assert_eq!(city.more_complete(&region), Some(&city));
        let other = Location::region("USA", "Texas");
        assert_eq!(city.more_complete(&other), None);
    }

    #[test]
    fn level_projections() {
        let city = Location::city("USA", "California", "Los Angeles");
        assert_eq!(
            city.to_region_level(),
            Location::region("USA", "California")
        );
        assert_eq!(city.to_country_level(), Location::country("USA"));
    }

    #[test]
    fn keys_and_display() {
        let city = Location::city("USA", "California", "Los Angeles");
        assert_eq!(city.key(), "USA/California/Los Angeles");
        assert_eq!(city.to_string(), "Los Angeles, California, USA");
        assert_eq!(Location::country("Chile").key(), "Chile");
    }

    #[test]
    fn continent_codes() {
        assert_eq!(Continent::ALL.len(), 6);
        assert_eq!(Continent::NorthAmerica.code(), "NA");
        assert_eq!(Continent::Asia.to_string(), "AS");
    }
}
