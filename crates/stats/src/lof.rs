//! Local Outlier Factor (Breunig et al. \[4\]) — the distance-based baseline
//! of App. J.
//!
//! LOF compares the local density of each point (one over the average
//! reachability distance to its `k` nearest neighbours) with the densities
//! of those neighbours; scores substantially above 1 indicate outliers. The
//! paper applies it to univariate latency series, which is what this
//! implementation targets (brute-force neighbour search; series are a few
//! hundred points).

/// Compute LOF scores for each point of a 1-D data set with neighbourhood
/// size `k`. Returns one score per input point; a score of ~1 means "as
/// dense as its neighbours", larger means more outlying. `k` is clamped to
/// `[1, n−1]`; inputs with fewer than 2 points get a score of 1.
pub fn local_outlier_factor(xs: &[f64], k: usize) -> Vec<f64> {
    let n = xs.len();
    if n < 2 {
        return vec![1.0; n];
    }
    let k = k.clamp(1, n - 1);

    // k nearest neighbours per point (indices), by absolute distance.
    // kth_dist[i] = distance to the kth neighbour.
    let mut neighbours: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut kth_dist: Vec<f64> = Vec::with_capacity(n);
    for i in 0..n {
        let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        order.sort_by(|&a, &b| {
            let da = (xs[a] - xs[i]).abs();
            let db = (xs[b] - xs[i]).abs();
            da.partial_cmp(&db).unwrap()
        });
        let kd = (xs[order[k - 1]] - xs[i]).abs();
        // Include ties at the kth distance (the definition's k-neighbourhood).
        let nbrs: Vec<usize> = order
            .iter()
            .copied()
            .take_while(|&j| (xs[j] - xs[i]).abs() <= kd + 1e-12)
            .collect();
        neighbours.push(nbrs);
        kth_dist.push(kd);
    }

    // Local reachability density.
    let mut lrd = vec![0.0; n];
    for i in 0..n {
        let mut sum_reach = 0.0;
        for &j in &neighbours[i] {
            let reach = (xs[i] - xs[j]).abs().max(kth_dist[j]);
            sum_reach += reach;
        }
        let avg = sum_reach / neighbours[i].len() as f64;
        lrd[i] = if avg <= 1e-12 {
            f64::INFINITY
        } else {
            1.0 / avg
        };
    }

    // LOF = mean(lrd of neighbours) / lrd of the point.
    (0..n)
        .map(|i| {
            let mean_nbr: f64 =
                neighbours[i].iter().map(|&j| lrd[j]).sum::<f64>() / neighbours[i].len() as f64;
            if lrd[i].is_infinite() {
                // Point sits inside a zero-spread cluster.
                if mean_nbr.is_infinite() {
                    1.0
                } else {
                    // Denser than its neighbourhood average: inlier.
                    mean_nbr / 1e12
                }
            } else if mean_nbr.is_infinite() {
                f64::INFINITY
            } else {
                mean_nbr / lrd[i]
            }
        })
        .collect()
}

/// Flag the indices whose LOF score exceeds `threshold` (1.5 is a common
/// choice; App. J tunes `k` instead of the threshold).
pub fn lof_outliers(xs: &[f64], k: usize, threshold: f64) -> Vec<usize> {
    local_outlier_factor(xs, k)
        .into_iter()
        .enumerate()
        .filter(|(_, s)| *s > threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_point_scores_high() {
        // Tight cluster at ~50 plus one point far away.
        let mut xs: Vec<f64> = (0..20).map(|i| 50.0 + (i % 5) as f64 * 0.2).collect();
        xs.push(120.0);
        let scores = local_outlier_factor(&xs, 3);
        let (max_i, max_s) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(max_i, 20, "outlier index");
        assert!(*max_s > 2.0, "outlier score {max_s}");
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let scores = local_outlier_factor(&xs, 5);
        // Interior points of an evenly spaced line have LOF ≈ 1.
        for &s in &scores[10..40] {
            assert!((s - 1.0).abs() < 0.3, "score {s}");
        }
    }

    #[test]
    fn duplicate_points_do_not_blow_up() {
        let xs = vec![10.0; 30];
        let scores = local_outlier_factor(&xs, 4);
        assert!(scores.iter().all(|s| (s - 1.0).abs() < 1e-9));
    }

    #[test]
    fn duplicates_plus_outlier() {
        let mut xs = vec![10.0; 30];
        xs.push(99.0);
        let flagged = lof_outliers(&xs, 4, 1.5);
        assert_eq!(flagged, vec![30]);
    }

    #[test]
    fn small_inputs() {
        assert_eq!(local_outlier_factor(&[], 3), Vec::<f64>::new());
        assert_eq!(local_outlier_factor(&[5.0], 3), vec![1.0]);
        let two = local_outlier_factor(&[1.0, 2.0], 5);
        assert_eq!(two.len(), 2);
        assert!(two.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn k_sensitivity() {
        // A pair of points away from the main cluster: with k=1 they shield
        // each other (low LOF); with larger k they are exposed.
        let mut xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        xs.push(50.0);
        xs.push(50.05);
        let s1 = local_outlier_factor(&xs, 1);
        let s5 = local_outlier_factor(&xs, 5);
        assert!(s1[30] < s5[30], "k=1 {} vs k=5 {}", s1[30], s5[30]);
        assert!(s5[30] > 2.0);
    }
}
