//! Store-and-forward links with drop-tail FIFO queues.
//!
//! A link serializes one packet at a time at `rate_bps`, then propagates it
//! for `prop` before delivery at the far end. Packets arriving while the
//! transmitter is busy wait in a finite FIFO; arrivals to a full queue are
//! dropped (drop-tail), which is what drives both the latency and the loss
//! behaviour of the Fig 3 bottleneck.

use crate::packet::{NodeId, Packet};
use std::collections::VecDeque;
use tero_types::{SimDuration, SimTime};

/// Index of a directed link.
pub type LinkId = usize;

/// Static configuration of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Transmission rate in bits per second.
    pub rate_bps: f64,
    /// Propagation delay.
    pub prop: SimDuration,
    /// Queue capacity in packets (not counting the one in transmission).
    pub queue_packets: usize,
}

impl LinkConfig {
    /// The uncontended one-way transfer time of a `bytes`-long frame over
    /// this link: serialization at `rate_bps` plus propagation. This is
    /// the delay model the networked store's transport uses per frame —
    /// it deliberately ignores queueing (store frames are small and the
    /// transport is request/response), so the result is a pure function
    /// of `(bytes, config)` and replays byte-identically.
    pub fn transfer_delay(&self, bytes: u64) -> SimDuration {
        let tx_s = (bytes as f64 * 8.0) / self.rate_bps;
        SimDuration::from_secs_f64(tx_s) + self.prop
    }
}

/// A directed link and its dynamic state.
#[derive(Debug)]
pub struct Link {
    /// Configuration.
    pub cfg: LinkConfig,
    /// The node this link delivers to.
    pub to: NodeId,
    queue: VecDeque<Packet>,
    busy: bool,
    /// Total packets dropped at this link's queue.
    pub drops: u64,
    /// Total packets that completed transmission.
    pub delivered: u64,
    queued_bytes: u64,
}

/// What `Link::offer` decided.
#[derive(Debug, Clone, PartialEq)]
pub enum Offer {
    /// The link was idle: start transmitting; the caller must schedule
    /// `LinkFree` at `free_at` and `Deliver` at `deliver_at`.
    Transmit {
        /// When the transmitter becomes free.
        free_at: SimTime,
        /// When the packet arrives at the far end.
        deliver_at: SimTime,
    },
    /// The packet was queued behind the current transmission.
    Queued,
    /// The queue was full; the packet was dropped.
    Dropped,
}

impl Link {
    /// Create an idle link.
    pub fn new(cfg: LinkConfig, to: NodeId) -> Self {
        Link {
            cfg,
            to,
            queue: VecDeque::new(),
            busy: false,
            drops: 0,
            delivered: 0,
            queued_bytes: 0,
        }
    }

    /// Offer a packet to the link at time `now`.
    pub fn offer(&mut self, pkt: Packet, now: SimTime) -> (Offer, Option<Packet>) {
        if !self.busy {
            self.busy = true;
            let tx = SimDuration::from_secs_f64(pkt.tx_time_ms(self.cfg.rate_bps) / 1_000.0);
            let free_at = now + tx;
            let deliver_at = free_at + self.cfg.prop;
            (
                Offer::Transmit {
                    free_at,
                    deliver_at,
                },
                Some(pkt),
            )
        } else if self.queue.len() < self.cfg.queue_packets {
            self.queued_bytes += pkt.size_bytes as u64;
            self.queue.push_back(pkt);
            (Offer::Queued, None)
        } else {
            self.drops += 1;
            (Offer::Dropped, None)
        }
    }

    /// The transmitter finished a packet; start the next queued one, if
    /// any. Returns the same schedule information as [`Link::offer`].
    pub fn on_free(&mut self, now: SimTime) -> Option<(Packet, SimTime, SimTime)> {
        self.delivered += 1;
        match self.queue.pop_front() {
            Some(pkt) => {
                self.queued_bytes -= pkt.size_bytes as u64;
                let tx = SimDuration::from_secs_f64(pkt.tx_time_ms(self.cfg.rate_bps) / 1_000.0);
                let free_at = now + tx;
                let deliver_at = free_at + self.cfg.prop;
                Some((pkt, free_at, deliver_at))
            }
            None => {
                self.busy = false;
                None
            }
        }
    }

    /// Number of packets waiting (excluding the one in transmission).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Bytes waiting in the queue.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Instantaneous one-way latency a new arrival would experience:
    /// queued bytes drained at line rate, plus its own serialization,
    /// plus propagation. In milliseconds.
    pub fn current_latency_ms(&self, packet_bytes: u32) -> f64 {
        let queue_ms = (self.queued_bytes as f64 * 8.0) / self.cfg.rate_bps * 1_000.0;
        let tx_ms = (packet_bytes as f64 * 8.0) / self.cfg.rate_bps * 1_000.0;
        queue_ms + tx_ms + self.cfg.prop.as_millis() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn pkt(size: u32) -> Packet {
        Packet {
            src: 0,
            dst: 1,
            size_bytes: size,
            kind: PacketKind::Udp { flow: 0 },
            created: SimTime::EPOCH,
        }
    }

    fn link(queue: usize) -> Link {
        Link::new(
            LinkConfig {
                rate_bps: 1e6, // 1 Mbps: 1250 B = 10 ms
                prop: SimDuration::from_millis(5),
                queue_packets: queue,
            },
            1,
        )
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut l = link(10);
        let now = SimTime::from_millis(100);
        match l.offer(pkt(1250), now) {
            (
                Offer::Transmit {
                    free_at,
                    deliver_at,
                },
                Some(_),
            ) => {
                assert_eq!(free_at, SimTime::from_millis(110));
                assert_eq!(deliver_at, SimTime::from_millis(115));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link(2);
        let now = SimTime::EPOCH;
        assert!(matches!(l.offer(pkt(1250), now).0, Offer::Transmit { .. }));
        assert_eq!(l.offer(pkt(1250), now).0, Offer::Queued);
        assert_eq!(l.offer(pkt(1250), now).0, Offer::Queued);
        assert_eq!(l.offer(pkt(1250), now).0, Offer::Dropped);
        assert_eq!(l.drops, 1);
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.queued_bytes(), 2_500);
    }

    #[test]
    fn on_free_drains_fifo() {
        let mut l = link(5);
        let t0 = SimTime::EPOCH;
        l.offer(pkt(1250), t0);
        l.offer(pkt(625), t0);
        l.offer(pkt(1250), t0);
        // First transmission finishes at 10 ms.
        let (next, free_at, _) = l.on_free(SimTime::from_millis(10)).unwrap();
        assert_eq!(next.size_bytes, 625, "FIFO order");
        assert_eq!(free_at, SimTime::from_millis(15)); // 625 B = 5 ms
        let (next, _, _) = l.on_free(SimTime::from_millis(15)).unwrap();
        assert_eq!(next.size_bytes, 1250);
        assert!(l.on_free(SimTime::from_millis(25)).is_none());
        assert_eq!(l.delivered, 3);
        // Link is idle again.
        assert!(matches!(
            l.offer(pkt(1250), SimTime::from_millis(30)).0,
            Offer::Transmit { .. }
        ));
    }

    #[test]
    fn transfer_delay_is_serialization_plus_prop() {
        let cfg = LinkConfig {
            rate_bps: 1e6,
            prop: SimDuration::from_millis(5),
            queue_packets: 8,
        };
        // 1250 B at 1 Mbps = 10 ms tx + 5 ms prop.
        assert_eq!(cfg.transfer_delay(1250), SimDuration::from_millis(15));
        // Zero-length frames still pay propagation.
        assert_eq!(cfg.transfer_delay(0), SimDuration::from_millis(5));
    }

    #[test]
    fn latency_estimate_tracks_queue() {
        let mut l = link(100);
        let now = SimTime::EPOCH;
        // Empty: tx (10 ms) + prop (5 ms).
        assert!((l.current_latency_ms(1250) - 15.0).abs() < 1e-9);
        l.offer(pkt(1250), now); // in transmission, not queued
        for _ in 0..4 {
            l.offer(pkt(1250), now);
        }
        // 4 queued packets = 40 ms extra.
        assert!((l.current_latency_ms(1250) - 55.0).abs() < 1e-9);
    }
}
