//! The clean stage: §3.3 per-`{streamer, game}` cleaning and
//! classification — segmentation, glitch/spike anomaly detection, and
//! static/mobile cluster classification — fanned out over the pool.

use super::{Stage, StageCx};
use crate::analysis::anomaly::{detect_anomalies, AnomalyReport, SegmentLabel};
use crate::analysis::clusters::{classify_streamer, ClassifiedStreamer};
use crate::analysis::segments::{segment_stream, Segment, StreamSeries};
use std::collections::BTreeMap;
use tero_trace::{Level, TaskTrace};
use tero_types::{AnonId, GameId};

/// What the clean stage hands the publish stage.
pub struct Cleaned {
    /// Stitched streams per `{streamer, game}` (passed through).
    pub streams: BTreeMap<(AnonId, GameId), Vec<StreamSeries>>,
    /// Anomaly reports per `{streamer, game}`.
    pub anomalies: BTreeMap<(AnonId, GameId), AnomalyReport>,
    /// Classified streamers per `{streamer, game}`.
    pub classified: BTreeMap<(AnonId, GameId), ClassifiedStreamer>,
}

/// The clean stage. Stateless: pure analysis over the stitched streams.
#[derive(Debug, Default)]
pub struct CleanStage;

impl Stage for CleanStage {
    type In = BTreeMap<(AnonId, GameId), Vec<StreamSeries>>;
    type Out = Cleaned;
    const NAME: &'static str = "clean";

    /// Segment, anomaly-scan and classify every `{streamer, game}` series.
    fn run(&mut self, cx: &mut StageCx<'_>, streams: Self::In) -> Self::Out {
        let m = cx.stage_metrics(Self::NAME);
        let _t = m.begin();
        m.records_in.add(streams.len() as u64);
        // The cleaning + PELT changepoint fan-out: each `{streamer, game}`
        // series is segmented, anomaly-scanned and classified
        // independently; counters are bumped in the ordered merge.
        let mut anomalies: BTreeMap<(AnonId, GameId), AnomalyReport> = BTreeMap::new();
        let mut classified: BTreeMap<(AnonId, GameId), ClassifiedStreamer> = BTreeMap::new();
        let stream_entries: Vec<(&(AnonId, GameId), &Vec<StreamSeries>)> = streams.iter().collect();
        let sp_analyze = cx.sp_run.child("stage.analyze");
        let analyze_stage = cx.tero.trace.stage(&sp_analyze, "analyze.task");
        let params = &cx.tero.params;
        let analyzed: Vec<((AnomalyReport, ClassifiedStreamer), TaskTrace)> = {
            let _t = cx.tero.obs.stage_timer(&cx.metrics.stage_analyze_us);
            cx.pool
                .par_map_indexed(&stream_entries, |i, (key, series)| {
                    let mut t = analyze_stage.task(i as u64);
                    if let Some(first) = series.first().and_then(|s| s.samples.first()) {
                        t.set_sim_time(first.at);
                    }
                    let (anon, _game) = **key;
                    let mut segments: Vec<Segment> = Vec::new();
                    for (idx, s) in series.iter().enumerate() {
                        segments.extend(segment_stream(idx, &s.samples, params));
                    }
                    let report = detect_anomalies(segments, params);
                    if report.all_unstable {
                        t.event(Level::Warn, "all segments unstable; streamer discarded");
                    }
                    let cls = classify_streamer(anon, &report, params);
                    ((report, cls), t.finish())
                })
        };
        let mut analyze_traces = Vec::with_capacity(analyzed.len());
        for ((key, _series), ((report, cls), trace)) in stream_entries.iter().zip(analyzed) {
            analyze_traces.push(trace);
            let (anon, game) = **key;
            cx.metrics.segments_built.add(report.segments.len() as u64);
            cx.metrics.spikes_detected.add(report.spikes.len() as u64);
            for label in &report.labels {
                match label {
                    SegmentLabel::CorrectedGlitch => cx.metrics.glitches_corrected.inc(),
                    SegmentLabel::DiscardedGlitch => cx.metrics.glitches_discarded.inc(),
                    _ => {}
                }
            }
            let total_points: usize = report.segments.iter().map(|s| s.samples.len()).sum();
            let kept = report.clean_count();
            cx.metrics
                .points_discarded
                .add(total_points.saturating_sub(kept) as u64);
            classified.insert((anon, game), cls);
            anomalies.insert((anon, game), report);
        }
        analyze_stage.flush(analyze_traces);
        drop(sp_analyze);
        m.records_out.add(anomalies.len() as u64);
        drop(stream_entries);
        Cleaned {
            streams,
            anomalies,
            classified,
        }
    }
}
