//! A 5×7 bitmap font.
//!
//! The glyph shapes are chosen so that the confusion pairs the paper reports
//! for real OCR on 75-dpi footage arise organically here: **8** differs from
//! **B** in a handful of pixels (and from **S** under blur), **0** differs
//! from **O** only in its inner diagonal, and **4** shares its diagonal
//! stroke pattern with **A**. Lowercase glyphs cover the HUD decorations the
//! games draw around the number ("ms", "ping", "latency") plus a clock's
//! colon.

use crate::image::Image;

/// Glyph width in font units.
pub const GLYPH_W: usize = 5;
/// Glyph height in font units.
pub const GLYPH_H: usize = 7;
/// Horizontal spacing between glyphs, in font units.
pub const GLYPH_SPACING: usize = 1;

/// A 5×7 glyph: 7 rows of 5 bits each (MSB-left in the low 5 bits).
pub type Glyph = [u8; GLYPH_H];

/// Look up the glyph for a character. Returns `None` for unsupported
/// characters (they render as blank space).
pub fn glyph(c: char) -> Option<Glyph> {
    let g: Glyph = match c {
        '0' => [
            0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110,
        ],
        '1' => [
            0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        '2' => [
            0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111,
        ],
        '3' => [
            0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110,
        ],
        '4' => [
            0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010,
        ],
        '5' => [
            0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110,
        ],
        '6' => [
            0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110,
        ],
        '7' => [
            0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000,
        ],
        '8' => [
            0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110,
        ],
        '9' => [
            0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100,
        ],
        // Confusable capitals (§3.2: "mistake 8 for B or S, 0 for O, 4 for A").
        'O' => [
            0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110,
        ],
        'B' => [
            0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110,
        ],
        'S' => [
            0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110,
        ],
        'A' => [
            0b00100, 0b01010, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001,
        ],
        // Lowercase for HUD decorations.
        'm' => [
            0b00000, 0b00000, 0b11010, 0b10101, 0b10101, 0b10101, 0b10101,
        ],
        's' => [
            0b00000, 0b00000, 0b01111, 0b10000, 0b01110, 0b00001, 0b11110,
        ],
        'p' => [
            0b00000, 0b00000, 0b11110, 0b10001, 0b11110, 0b10000, 0b10000,
        ],
        'i' => [
            0b00100, 0b00000, 0b01100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        'n' => [
            0b00000, 0b00000, 0b10110, 0b11001, 0b10001, 0b10001, 0b10001,
        ],
        'g' => [
            0b00000, 0b00000, 0b01111, 0b10001, 0b01111, 0b00001, 0b01110,
        ],
        'l' => [
            0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        'a' => [
            0b00000, 0b00000, 0b01110, 0b00001, 0b01111, 0b10001, 0b01111,
        ],
        't' => [
            0b01000, 0b01000, 0b11110, 0b01000, 0b01000, 0b01001, 0b00110,
        ],
        'e' => [
            0b00000, 0b00000, 0b01110, 0b10001, 0b11111, 0b10000, 0b01110,
        ],
        'c' => [
            0b00000, 0b00000, 0b01110, 0b10001, 0b10000, 0b10001, 0b01110,
        ],
        'y' => [
            0b00000, 0b00000, 0b10001, 0b10001, 0b01111, 0b00001, 0b01110,
        ],
        ':' => [
            0b00000, 0b00100, 0b00100, 0b00000, 0b00100, 0b00100, 0b00000,
        ],
        ' ' => [0; 7],
        _ => return None,
    };
    Some(g)
}

/// All characters the OCR template banks know about. Digits first, then the
/// confusable capitals, then HUD lowercase and the colon.
pub const TEMPLATE_CHARS: &[char] = &[
    '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'O', 'B', 'S', 'A', 'm', 's', 'p', 'i', 'n',
    'g', 'l', 'a', 't', 'e', 'c', 'y', ':',
];

/// Render `text` into a fresh image at integer `scale` (each font unit
/// becomes a `scale × scale` block), with the given foreground/background
/// shades. Unsupported characters render as spaces.
pub fn rasterize(text: &str, scale: usize, fg: u8, bg: u8) -> Image {
    let scale = scale.max(1);
    let n = text.chars().count();
    let width = if n == 0 {
        0
    } else {
        (n * (GLYPH_W + GLYPH_SPACING) - GLYPH_SPACING) * scale
    };
    let mut img = Image::filled(width.max(1), GLYPH_H * scale, bg);
    let mut x0 = 0usize;
    for c in text.chars() {
        if let Some(g) = glyph(c) {
            for (row, bits) in g.iter().enumerate() {
                for col in 0..GLYPH_W {
                    if bits & (1 << (GLYPH_W - 1 - col)) != 0 {
                        // Fill the scale×scale block.
                        for dy in 0..scale {
                            for dx in 0..scale {
                                img.set((x0 + col) * scale + dx, row * scale + dy, fg);
                            }
                        }
                    }
                }
            }
        }
        x0 += GLYPH_W + GLYPH_SPACING;
    }
    img
}

/// Hamming distance between two glyph bitmaps (number of differing pixels).
pub fn glyph_distance(a: &Glyph, b: &Glyph) -> u32 {
    a.iter()
        .zip(b)
        .map(|(&ra, &rb)| ((ra ^ rb) & 0b11111).count_ones())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_template_chars_have_glyphs() {
        for &c in TEMPLATE_CHARS {
            assert!(glyph(c).is_some(), "missing glyph for {c:?}");
        }
        assert!(glyph(' ').is_some());
        assert!(glyph('€').is_none());
    }

    #[test]
    fn glyphs_fit_five_bits() {
        for &c in TEMPLATE_CHARS {
            for row in glyph(c).unwrap() {
                assert!(row < 32, "{c:?} row {row:#b} exceeds 5 bits");
            }
        }
    }

    #[test]
    fn confusion_pairs_are_close_but_distinct() {
        let d8b = glyph_distance(&glyph('8').unwrap(), &glyph('B').unwrap());
        let d0o = glyph_distance(&glyph('0').unwrap(), &glyph('O').unwrap());
        let d8_0 = glyph_distance(&glyph('8').unwrap(), &glyph('0').unwrap());
        assert!(d8b > 0 && d8b <= 6, "8 vs B distance {d8b}");
        assert!(d0o > 0 && d0o <= 6, "0 vs O distance {d0o}");
        assert!(d8_0 > 0, "distinct digits must differ");
        // Non-confusable pairs are far apart.
        let d1_8 = glyph_distance(&glyph('1').unwrap(), &glyph('8').unwrap());
        assert!(d1_8 > 8, "1 vs 8 distance {d1_8}");
    }

    #[test]
    fn digits_pairwise_distinct() {
        for a in '0'..='9' {
            for b in '0'..='9' {
                if a != b {
                    let d = glyph_distance(&glyph(a).unwrap(), &glyph(b).unwrap());
                    assert!(d >= 3, "{a} vs {b} too close: {d}");
                }
            }
        }
    }

    #[test]
    fn rasterize_dimensions() {
        let img = rasterize("45ms", 2, 0, 255);
        // 4 chars: 4*(5+1)-1 = 23 units wide, 7 tall; ×2.
        assert_eq!((img.width, img.height), (46, 14));
        assert!(img.count_below(128) > 0, "some foreground drawn");
        let empty = rasterize("", 1, 0, 255);
        assert_eq!(empty.height, GLYPH_H);
    }

    #[test]
    fn rasterize_scale_one_matches_glyph() {
        let img = rasterize("1", 1, 0, 255);
        let g = glyph('1').unwrap();
        for (row, bits) in g.iter().enumerate() {
            for col in 0..GLYPH_W {
                let expect = if bits & (1 << (GLYPH_W - 1 - col)) != 0 {
                    0
                } else {
                    255
                };
                assert_eq!(img.get(col, row), expect, "pixel ({col},{row})");
            }
        }
    }

    #[test]
    fn glyph_distance_symmetric_and_zero_on_self() {
        let a = glyph('7').unwrap();
        let b = glyph('2').unwrap();
        assert_eq!(glyph_distance(&a, &a), 0);
        assert_eq!(glyph_distance(&a, &b), glyph_distance(&b, &a));
    }
}
