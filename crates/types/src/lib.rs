//! # tero-types
//!
//! Shared domain types for the Tero reproduction (*Using Gaming Footage as a
//! Source of Internet Latency Information*, IMC '23).
//!
//! This crate is deliberately dependency-light: everything else in the
//! workspace builds on the vocabulary defined here — simulated time
//! ([`SimTime`]), anonymised identifiers ([`ids`]), geography and the paper's
//! *corrected distance* ([`geo`]), the `{city, region, country}` location
//! tuple ([`Location`]), the configurable parameters of Table 1
//! ([`TeroParams`]), and the deterministic random-number generator
//! ([`SimRng`]) that makes every experiment bit-reproducible.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod geo;
pub mod ids;
pub mod latency;
pub mod location;
pub mod params;
pub mod rng;
pub mod time;

pub use geo::{corrected_distance_km, fiber_delay_ms, haversine_km, LatLon};
pub use ids::{consistent_hash, AnonId, GameId, ShardSpec, StreamerId};
pub use latency::LatencySample;
pub use location::{Continent, Location};
pub use params::TeroParams;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
