//! Online-cleaner explorer: drive a pinned-streamer world through 1-day
//! windows and watch the served per-`{location, game}` distributions
//! refresh — and drift — window by window, without waiting for the
//! horizon (docs/CLEANING.md).
//!
//! ```sh
//! cargo run --release --example streaming_clean          # default seed
//! cargo run --release --example streaming_clean -- 7     # explicit seed
//! ```
//!
//! After every non-final window the clean stage reseals its per-series
//! state and rebuilds the distribution sketch of every dirty
//! `{location, game}` group — under the *canonical* locations the
//! budgeted locate stage has committed so far (all of them, at the
//! default unlimited budget), with provisional tags-only fallbacks for
//! anyone still queued. This example snapshots the in-flight engine's
//! store after each window and queries those mid-run sketches, printing
//! each one's provenance marker (`c`/`p`). Stdout is **byte-stable**:
//! for a fixed seed it is identical across repeat runs and worker
//! counts, because everything printed derives from committed sketch
//! bytes and the committed `engine:clean:*` summaries, both covered by
//! the determinism contract (`tests/determinism.rs`). `scripts/ci.sh`
//! runs this example twice and diffs stdout.

use tero::core::pipeline::{ExtractionMode, Tero, WindowOutcome};
use tero::core::serving::{dist_provenance, dist_sketch_key};
use tero::core::stages::clean::CLEAN_CURSORS_KEY;
use tero::serve::{QueryEngine, SketchRef};
use tero::store::KvStore;
use tero::types::{GameId, Location, SimDuration, SimTime};
use tero::world::{World, WorldConfig};

/// Query every distribution the given store serves and print one line
/// per sketch — with its provenance marker — in the serving layer's
/// stable key order.
fn print_served(label: &str, kv: KvStore, obs: &tero::obs::Registry) {
    let engine = QueryEngine::new(kv.clone(), obs);
    let served = engine.distributions();
    println!("{label}: {} distributions served", served.len());
    for (granularity, game, location_key) in &served {
        let target = SketchRef::dist(*granularity, *game, location_key);
        let bp = engine.boxplot(&target).expect("served sketch is non-empty");
        let prov = dist_provenance(&kv, &dist_sketch_key(*granularity, *game, location_key))
            .expect("every served sketch carries a provenance marker");
        println!(
            "  [{granularity:?}/{}] {location_key} / {game}: n={} p25={:.2} p50={:.2} p95={:.2}",
            prov.tag(),
            bp.n,
            bp.p25,
            bp.p50,
            bp.p95
        );
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(7);

    // Streamers pinned to a handful of places (the §5.2 workload shape),
    // so the provisional groups clear `min_streamers` from the first
    // window on — a random small world rarely concentrates enough.
    let locations = [
        Location::country("Netherlands"),
        Location::country("Poland"),
        Location::region("United States", "Illinois"),
    ];
    let pinned = locations
        .iter()
        .map(|l| (l.clone(), GameId::LeagueOfLegends, 16))
        .collect();
    let mut world = World::build(WorldConfig {
        seed,
        n_streamers: 0,
        days: 3,
        pinned,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        ..Tero::default()
    };

    println!("== per-window serving refresh (seed {seed}) ==");
    let horizon = world.horizon;
    let day = SimDuration::from_hours(24);
    let mut to = SimTime::EPOCH + day;
    let mut window = 0u32;
    let report = loop {
        match tero.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => break report,
            WindowOutcome::Advanced => {
                window += 1;
                // The run is still in flight, so the serving handle has
                // not swapped yet; read the engine's committed store
                // through a snapshot instead.
                let snap = tero.engine_snapshot().expect("run in flight");
                let kv = KvStore::new();
                kv.restore(&snap.kv);
                let series = kv.hgetall(CLEAN_CURSORS_KEY).len();
                println!();
                println!("-- after window {window} ({series} series fed) --");
                print_served("mid-run view", kv, &tero.obs);
                to = (to + day).min(horizon);
            }
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    };

    // The horizon settles the mid-run view: the publish finalizer
    // replays the committed aggregation state and rewrites the whole
    // family under canonical locations (every marker reads `c`). Same
    // cleaning — the online views are byte-identical to a batch clean
    // (the docs/CLEANING.md contract) — so any drift between the last
    // mid-run view and this one is late-arriving data, not relocation.
    println!();
    println!("== finalize ==");
    print_served(
        "canonical view",
        tero.serving_store().expect("run completed"),
        &tero.obs,
    );
    println!(
        "report: {} distributions, {} streamers located, {} anomaly series",
        report.distributions.len(),
        report.locations.len(),
        report.anomalies.len()
    );
}
