//! The ingest stage: App. A's coordinator/downloader module, windowed.
//!
//! Wraps the stateful [`DownloadModule`] plus its resumable
//! [`DownloadCursor`] and advances them one window at a time. Output
//! records are the thumbnail tasks the module pushes onto the KV list
//! `queue:thumbs` (and the blobs it puts in the `thumbs` bucket) — the
//! store-mediated hand-off the extract stage drains.

use super::{Stage, StageCx};
use crate::download::{DownloadCursor, DownloadModule, DownloadStats};
use tero_types::SimTime;

/// The ingest stage. Owns the only mutable download state in the engine;
/// the cursor is what the engine persists at each window commit.
pub struct IngestStage {
    /// The App. A download module (coordinator + downloader pool).
    pub download: DownloadModule,
    /// Resumable event-loop state spanning the whole run.
    pub cursor: DownloadCursor,
}

impl IngestStage {
    /// A fresh ingest stage over `download`, covering `[from, horizon]`.
    pub fn new(download: DownloadModule, from: SimTime, horizon: SimTime) -> IngestStage {
        IngestStage {
            download,
            cursor: DownloadCursor::new(from, horizon),
        }
    }

    /// Cumulative download statistics across every window so far.
    pub fn stats(&self) -> &DownloadStats {
        self.cursor.stats()
    }
}

impl Stage for IngestStage {
    type In = SimTime;
    type Out = u64;
    const NAME: &'static str = "ingest";

    /// Advance the download cursor to the window end. Returns the number
    /// of thumbnails enqueued during this window.
    fn run(&mut self, cx: &mut StageCx<'_>, window_end: Self::In) -> Self::Out {
        let m = cx.stage_metrics(Self::NAME);
        let _t = m.begin();
        let before = self.cursor.stats().downloaded;
        self.download
            .run_cursor(cx.world, &mut self.cursor, window_end);
        let produced = self.cursor.stats().downloaded - before;
        m.records_out.add(produced);
        produced
    }
}
