//! The staged execution engine: owns the run-scoped wiring (stores, pool,
//! tracer spans, chaos hookup) once, and drives the [`crate::stages`]
//! either as a single full-horizon window or incrementally.
//!
//! # Windowed execution and crash recovery
//!
//! The engine processes `[from, horizon]` as a sequence of windows. The
//! ingest, extract, clean, locate and aggregation stages all advance per
//! window: the clean stage stitches, seals and re-serves incrementally
//! over each window's new records (see `docs/CLEANING.md`); the locate
//! stage spends an explicit per-window simulated-API budget and commits
//! canonical `engine:locate:*` results as they settle; the aggregation
//! stage re-analyses only the `{location, game}` groups the window
//! dirtied and commits them under `engine:agg:*` (see
//! `docs/AGGREGATION.md`). Only publish remains a *finalize* stage: it
//! replays the committed aggregation state once, when a window reaches
//! the horizon. After every per-window stage the
//! engine **commits**: the download cursor, the funnel ledger delta,
//! every counter, the cleaner's `engine:clean:*` state, and the
//! engine's own progress markers are written under the chaos-exempt
//! `engine:` key prefix. A run killed mid-window (see
//! [`tero_chaos::EngineKill`]) can therefore be resumed — in-process or
//! from a [`StoreSnapshot`] in a fresh [`Tero`] — without re-ingesting or
//! double-counting anything: resumption replays the committed state and
//! re-runs only the work after the last commit.

use crate::download::{DownloadCursor, DownloadModule};
use crate::pipeline::{PipelineMetrics, Tero, TeroReport, WindowOutcome};
use crate::serving::{parse_raw_sketch_key, raw_sketch_key, RAW_SKETCH_PREFIX, SERVE_VERSION_KEY};
use crate::stages::agg::AggStage;
use crate::stages::clean::CleanStage;
use crate::stages::extract::ExtractStage;
use crate::stages::ingest::IngestStage;
use crate::stages::locate::LocateStage;
use crate::stages::publish::{MapViews, PublishInput, PublishStage};
use crate::stages::{Stage, StageCx};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tero_obs::Registry;
use tero_pool::Pool;
use tero_store::{KvSnapshot, KvStore, ObjectSnapshot, ObjectStore};
use tero_trace::{DropReason, SampleKey, SampleState, SpanGuard};
use tero_types::{AnonId, GameId, SimTime};
use tero_world::World;

/// KV key holding the serialised [`DownloadCursor`].
pub(crate) const CURSOR_KEY: &str = "engine:download_cursor";
/// KV hash holding the engine's own progress markers.
pub(crate) const ENGINE_KEY: &str = "engine:cursor";
/// KV hash holding every counter value at the last commit.
pub(crate) const COUNTERS_KEY: &str = "engine:counters";
/// KV list holding the committed ledger records, in ingest order.
pub(crate) const LEDGER_KEY: &str = "engine:ledger";

/// A portable snapshot of the engine's stores, for resuming a killed run
/// in a fresh process (the in-memory analogue of Redis persistence plus
/// an S3 bucket listing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// The KV store: queues, leases, and all committed `engine:` state.
    pub kv: KvSnapshot,
    /// The object store: thumbnail blobs not yet consumed.
    pub objects: ObjectSnapshot,
}

/// The staged engine for one run. Created lazily by the first
/// [`Tero::run_window`] call and dropped when the run completes.
pub struct Engine {
    kv: KvStore,
    objects: ObjectStore,
    pool: Pool,
    /// Store-facing I/O view shared by the non-ingest stages.
    io: DownloadModule,
    sp_run: SpanGuard,
    metrics: PipelineMetrics,
    ingest: IngestStage,
    extract: ExtractStage,
    locate: LocateStage,
    clean: CleanStage,
    agg: AggStage,
    /// Series fed by the clean stage since the last aggregation pass —
    /// the aggregation stage's dirty-member input. Cleared after each
    /// pass; the finalize pass consumes whatever the last window left.
    agg_pending: BTreeSet<(AnonId, GameId)>,
    publish: PublishStage,
    /// Index of the window currently being processed (0-based).
    window_index: u64,
    /// High-water mark of completed ingest work.
    ingested_to: Option<SimTime>,
    /// High-water mark of completed extract work.
    extracted_to: Option<SimTime>,
    horizon: SimTime,
    /// Ledger records already written to `engine:ledger`.
    ledger_committed: usize,
}

impl Engine {
    /// Wire up a fresh engine: stores, pool, chaos, tracer — everything
    /// the legacy `run()` preamble did, done once per run.
    pub fn new(tero: &Tero, world: &World, from: SimTime) -> Engine {
        let metrics = tero.metrics_for_run();
        tero.trace.begin_run();
        tero.trace.instrument(&tero.obs);
        let sp_run = tero.trace.span("pipeline.run");
        let pool = Pool::with_metrics(tero.worker_threads, &tero.obs);
        // A sharded deployment injects network-backed store facades; a
        // plain run gets private in-process stores. Either way the
        // facade is the same type, so every stage below is oblivious to
        // where its reads and writes actually land.
        let (kv, objects) = match &tero.stores {
            Some((kv, objects)) => (kv.clone(), objects.clone()),
            None => (KvStore::new(), ObjectStore::new()),
        };
        kv.instrument(&tero.obs);
        objects.instrument(&tero.obs);
        // If the world carries a fault injector, surface its counters in
        // this registry and let it sabotage store writes too.
        if let Some(chaos) = world.chaos().cloned() {
            chaos.instrument(&tero.obs);
            // Injected faults journal themselves as trace events, so a
            // flight-recorder dump shows *why* a window looks anomalous.
            chaos.set_trace(&tero.trace);
            kv.inject_faults(chaos.clone());
            objects.inject_faults(chaos);
        }
        let mut download = DownloadModule::new(kv.clone(), objects.clone());
        download.instrument(&tero.obs);
        download.set_trace(&tero.trace);
        let mut io = DownloadModule::new(kv.clone(), objects.clone());
        io.instrument(&tero.obs);
        io.set_trace(&tero.trace);
        let horizon = world.horizon;
        Engine {
            pool,
            io,
            sp_run,
            extract: ExtractStage::new(&tero.obs),
            ingest: IngestStage::new(download, from, horizon),
            locate: LocateStage::default(),
            clean: CleanStage::default(),
            agg: AggStage::default(),
            agg_pending: BTreeSet::new(),
            publish: PublishStage,
            metrics,
            kv,
            objects,
            window_index: 0,
            ingested_to: None,
            extracted_to: None,
            horizon,
            ledger_committed: 0,
        }
    }

    /// Rebuild an engine from a [`StoreSnapshot`] taken after a kill:
    /// restore the stores, replay the committed counters and ledger, and
    /// deserialise the download cursor and progress markers.
    pub fn restore(tero: &Tero, world: &World, snap: &StoreSnapshot) -> Engine {
        let mut engine = Engine::new(tero, world, SimTime::EPOCH);
        engine.kv.restore(&snap.kv);
        engine.objects.restore(&snap.objects);
        // Counters are monotonic, so a fresh registry catches up by adding
        // each committed value. (Histograms hold only summary snapshots
        // and are not restorable; every cross-run comparison uses
        // counters, the funnel, and the report.)
        let mut counters: Vec<(String, u64)> = engine
            .kv
            .hgetall(COUNTERS_KEY)
            .into_iter()
            .filter_map(|(name, v)| Some((name, v.parse().ok()?)))
            .collect();
        counters.sort_unstable();
        for (name, value) in counters {
            tero.obs.counter(&name).add(value);
        }
        // Replay the ledger: every committed record is re-ingested in its
        // original FIFO order, and resolved records resolve immediately.
        let records = engine.kv.lpop_batch(LEDGER_KEY, engine.kv.llen(LEDGER_KEY));
        engine.kv.rpush_batch(LEDGER_KEY, records.iter().cloned());
        let ledger = tero.trace.ledger();
        for raw in &records {
            let Some((key, state)) = decode_ledger_record(raw) else {
                continue;
            };
            ledger.ingest(key);
            if state != SampleState::Pending {
                ledger.resolve(&key, state);
            }
        }
        engine.ledger_committed = records.len();
        if let Some(cursor) = engine
            .kv
            .get(CURSOR_KEY)
            .and_then(|raw| serde_json::from_str::<DownloadCursor>(&raw).ok())
        {
            engine.ingest.cursor = cursor;
        }
        let markers = engine.kv.hgetall(ENGINE_KEY);
        let read = |field: &str| markers.get(field).and_then(|v| v.parse::<u64>().ok());
        engine.window_index = read("window_index").unwrap_or(0);
        engine.ingested_to = read("ingested_to").map(SimTime::from_micros);
        engine.extracted_to = read("extracted_to").map(SimTime::from_micros);
        engine.extract.tasks_processed = read("tasks_processed").unwrap_or(0);
        engine.extract.extracted = read("extracted").unwrap_or(0);
        // Rebuild the extract stage's raw serving sketches from the
        // committed view, so later windows extend them instead of
        // restarting from empty (the committed sketch already holds every
        // value extracted before the kill).
        for key in engine.kv.keys_with_prefix(RAW_SKETCH_PREFIX) {
            let Some(pair) = parse_raw_sketch_key(&key) else {
                continue;
            };
            if let Some(sketch) = engine
                .kv
                .get(&key)
                .and_then(|raw| tero_stats::QuantileSketch::decode(&raw))
            {
                engine.extract.sketches.insert(pair, sketch);
            }
        }
        // Rebuild the online cleaner from the committed sample lists and
        // `engine:clean:*` cursors (metric-silent: the counters above
        // already carry the cleaner's committed totals).
        engine.clean.rebuild(&engine.kv, &tero.params);
        // Rebuild the budgeted locate stage from its committed
        // `engine:locate:*` hashes (profile outcomes are never re-drawn),
        // and force the aggregation stage's next pass to recompute every
        // group — the committed `engine:agg:*` keys may hold pre-kill or
        // merged-shard fragments.
        engine.locate.rebuild(&engine.kv);
        engine.agg.mark_all_dirty();
        engine.metrics.window_resumed.inc();
        engine
    }

    /// Advance the run to `to` (clamped to the horizon): run the
    /// per-window stages with a commit after each, honour any scheduled
    /// [`tero_chaos::EngineKill`], and finalize when the horizon is
    /// reached.
    pub fn run_window(&mut self, tero: &Tero, world: &mut World, to: SimTime) -> WindowOutcome {
        self.drive(tero, world, to, true)
    }

    /// Like [`Engine::run_window`], but never finalizes: reaching the
    /// horizon still runs ingest and extract (with commits) and returns
    /// [`WindowOutcome::Advanced`]. A sharded orchestrator drives every
    /// per-shard engine this way, then merges their committed state and
    /// finalizes the merged store exactly once.
    pub fn advance_window(&mut self, tero: &Tero, world: &mut World, to: SimTime) -> WindowOutcome {
        self.drive(tero, world, to, false)
    }

    fn drive(
        &mut self,
        tero: &Tero,
        world: &mut World,
        to: SimTime,
        finalize: bool,
    ) -> WindowOutcome {
        let to = to.min(self.horizon);
        if self.ingested_to.is_none_or(|t| t < to) {
            let mut cx = StageCx {
                tero,
                world,
                pool: &self.pool,
                kv: &self.kv,
                objects: &self.objects,
                io: &self.io,
                metrics: &self.metrics,
                sp_run: &self.sp_run,
            };
            self.ingest.run(&mut cx, to);
            self.ingested_to = Some(to);
            self.commit(tero);
        }
        // The scheduled kill fires between the ingest commit and the
        // extract stage — the worst case for double-counting, since the
        // queued tasks are committed but not yet drained.
        if world
            .chaos()
            .is_some_and(|c| c.engine_kill(self.window_index))
        {
            self.metrics.window_killed.inc();
            return WindowOutcome::Killed;
        }
        if self.extracted_to.is_none_or(|t| t < to) {
            let mut cx = StageCx {
                tero,
                world,
                pool: &self.pool,
                kv: &self.kv,
                objects: &self.objects,
                io: &self.io,
                metrics: &self.metrics,
                sp_run: &self.sp_run,
            };
            self.extract.run(&mut cx, ());
            // Clean incrementally over the records extract just appended,
            // then run the window's budgeted locate slice over the names
            // extract just registered.
            let fed = self.clean.advance(&mut cx);
            self.agg_pending.extend(fed);
            self.locate.advance(&mut cx);
            // Skip the aggregation pass and serving refresh when this
            // window finalizes anyway: finalize aggregates against the
            // horizon views and publish rewrites the whole distribution
            // family.
            let refresh_serving = !(finalize && to >= self.horizon);
            if refresh_serving {
                let fresh = self.clean.refresh_views(&mut cx);
                let refreshed = {
                    let views = self.clean.views();
                    let series = self.clean.series_keys();
                    self.agg.advance(
                        &mut cx,
                        &views,
                        &series,
                        self.locate.locations(),
                        &self.agg_pending,
                    )
                };
                self.agg_pending.clear();
                self.clean.refresh_serving(
                    &mut cx,
                    self.locate.locations(),
                    &self.agg,
                    &fresh,
                    &refreshed,
                );
            }
            self.extracted_to = Some(to);
            self.commit(tero);
        }
        self.window_index += 1;
        self.metrics.window_runs.inc();
        if finalize && to >= self.horizon {
            WindowOutcome::Complete(self.finalize(tero, world))
        } else {
            WindowOutcome::Advanced
        }
    }

    /// Persist everything needed to resume after this point: the download
    /// cursor, the counter values, the ledger delta, and the progress
    /// markers. All under `engine:` keys, which chaos never drops.
    fn commit(&mut self, tero: &Tero) {
        self.kv.set(
            CURSOR_KEY,
            serde_json::to_string(&self.ingest.cursor).expect("cursor serialises"),
        );
        for c in tero.obs.snapshot().counters {
            self.kv.hset(COUNTERS_KEY, &c.name, c.value.to_string());
        }
        let records = tero.trace.ledger().records();
        if records.len() > self.ledger_committed {
            self.kv.rpush_batch(
                LEDGER_KEY,
                records[self.ledger_committed..]
                    .iter()
                    .map(|(k, s)| encode_ledger_record(k, s)),
            );
            self.ledger_committed = records.len();
        }
        self.kv
            .hset(ENGINE_KEY, "window_index", self.window_index.to_string());
        if let Some(t) = self.ingested_to {
            self.kv
                .hset(ENGINE_KEY, "ingested_to", t.as_micros().to_string());
        }
        if let Some(t) = self.extracted_to {
            self.kv
                .hset(ENGINE_KEY, "extracted_to", t.as_micros().to_string());
        }
        self.kv.hset(
            ENGINE_KEY,
            "tasks_processed",
            self.extract.tasks_processed.to_string(),
        );
        self.kv
            .hset(ENGINE_KEY, "extracted", self.extract.extracted.to_string());
        // Persist this window's dirty raw sketches and bump the serving
        // version so `tero-serve` caches drop entries computed over the
        // now-stale view. Re-writing a whole sketch (not a delta) keeps
        // the commit idempotent: resuming and re-extracting a window
        // rebuilds the identical sketch (bucket addition is
        // order-independent) and overwrites with the same bytes.
        let dirty = std::mem::take(&mut self.extract.dirty_sketches);
        if !dirty.is_empty() {
            for (anon, game) in dirty {
                let encoded = self.extract.sketches[&(anon, game)].encode();
                self.metrics.sketch_bytes.add(encoded.len() as u64);
                self.metrics.sketch_commits.inc();
                self.kv.set(&raw_sketch_key(anon, game), encoded);
            }
            self.kv.incr_by(SERVE_VERSION_KEY, 1);
        }
        self.metrics.window_commits.inc();
    }

    /// A portable snapshot of the stores for cross-process resume.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            kv: self.kv.snapshot(),
            objects: self.objects.snapshot(),
        }
    }

    /// Run the finalize pass — drain the locate queue, produce the full
    /// per-series analyses, settle the last aggregation pass against the
    /// horizon views, and let publish replay the committed state into
    /// the report. Called once, when a window reaches the horizon.
    fn finalize(&mut self, tero: &Tero, world: &mut World) -> TeroReport {
        let mut cx = StageCx {
            tero,
            world,
            pool: &self.pool,
            kv: &self.kv,
            objects: &self.objects,
            io: &self.io,
            metrics: &self.metrics,
            sp_run: &self.sp_run,
        };
        let located = self.locate.finalize(&mut cx);
        let cleaned = self.clean.run(&mut cx, ());
        let pending = std::mem::take(&mut self.agg_pending);
        {
            let views = MapViews {
                classified: &cleaned.classified,
                anomalies: &cleaned.anomalies,
            };
            let series: Vec<(AnonId, GameId)> = cleaned.streams.keys().copied().collect();
            self.agg
                .advance(&mut cx, &views, &series, &located.locations, &pending);
        }
        let agg = self.agg.take_output();
        self.publish.run(
            &mut cx,
            PublishInput {
                cleaned,
                located,
                agg,
                download: self.ingest.stats().clone(),
                thumbnails: self.extract.tasks_processed,
                extracted: self.extract.extracted,
            },
        )
    }

    /// The metric registry this engine records into (for assertions).
    pub fn registry(&self) -> &Registry {
        self.metrics.registry()
    }

    /// The engine's KV store — shared-handle clone-able; the pipeline
    /// stashes it as the serving store when a run completes.
    pub(crate) fn kv_store(&self) -> &KvStore {
        &self.kv
    }
}

/// Wire encoding of one ledger record:
/// `{anon:016x}|{game_idx:02}|{at_micros}|{state}` with state `?`
/// (pending), `P` (published) or `D{drop_reason_idx}`.
fn encode_ledger_record(key: &SampleKey, state: &SampleState) -> String {
    let game_idx = GameId::ALL
        .iter()
        .position(|g| *g == key.game)
        .expect("every GameId is in GameId::ALL");
    let state = match state {
        SampleState::Pending => "?".to_string(),
        SampleState::Published => "P".to_string(),
        SampleState::Dropped(reason) => format!("D{}", reason.index()),
    };
    format!(
        "{:016x}|{game_idx:02}|{}|{state}",
        key.anon.0,
        key.at.as_micros()
    )
}

/// Decode an [`encode_ledger_record`] string.
fn decode_ledger_record(raw: &str) -> Option<(SampleKey, SampleState)> {
    let mut parts = raw.split('|');
    let anon = AnonId(u64::from_str_radix(parts.next()?, 16).ok()?);
    let game = *GameId::ALL.get(parts.next()?.parse::<usize>().ok()?)?;
    let at = SimTime::from_micros(parts.next()?.parse().ok()?);
    let state = match parts.next()? {
        "?" => SampleState::Pending,
        "P" => SampleState::Published,
        s => {
            let idx: usize = s.strip_prefix('D')?.parse().ok()?;
            SampleState::Dropped(*DropReason::ALL.get(idx)?)
        }
    };
    if parts.next().is_some() {
        return None;
    }
    Some((SampleKey { anon, game, at }, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_record_roundtrip() {
        let key = SampleKey {
            anon: AnonId(0xfeed_0000_0000_0042),
            game: GameId::ALL[3],
            at: SimTime::from_mins(17),
        };
        for state in [
            SampleState::Pending,
            SampleState::Published,
            SampleState::Dropped(DropReason::ALL[0]),
            SampleState::Dropped(DropReason::ALL[10]),
        ] {
            let raw = encode_ledger_record(&key, &state);
            assert_eq!(decode_ledger_record(&raw), Some((key, state)));
        }
        assert_eq!(decode_ledger_record("junk"), None);
        assert_eq!(decode_ledger_record("00|00|1|P|extra"), None);
    }
}
