//! Generation of profile text with known ground truth.
//!
//! The location module's accuracy (Table 3) depends on *how* streamers
//! describe where they live. We generate the styles the paper describes:
//! formal ("From Miami, Florida"), informal ("Join us in Detroit!"),
//! misleading ("I live in Denmarkian but have roots in Iran"), place-word
//! bait ("Phoenix main, road to radiant"), and non-geographic text; plus
//! Twitter location fields from structured to jokey ("Your heart,
//! Chicago").

use tero_geoparse::Place;
use tero_types::SimRng;

/// How a generated description relates to the streamer's true location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DescriptionStyle {
    /// "From `<City>`, `<Region>`" — passes the conservative filter.
    Formal,
    /// "Join us in `<City>`!" — correct but filter-hostile.
    Informal,
    /// Country-level only: "Streaming from `<Country>`".
    CountryOnly,
    /// Misleading text with a mangled demonym plus another country.
    Misleading,
    /// No location, but contains a capitalised place word used as gaming
    /// slang (false-positive bait).
    Bait,
    /// No location information at all.
    NonGeo,
}

impl DescriptionStyle {
    /// Whether a perfect extractor should output the true location for
    /// this style (`Bait`/`NonGeo` should yield nothing; `Misleading`
    /// yields something wrong).
    pub fn has_true_location(self) -> bool {
        matches!(
            self,
            DescriptionStyle::Formal | DescriptionStyle::Informal | DescriptionStyle::CountryOnly
        )
    }
}

const NONGEO_LINES: &[&str] = &[
    "pro gamer, road to top 500",
    "daily streams, good vibes only",
    "3k elo support main, come hang out",
    "speedruns and chill",
    "variety streamer, mostly ranked grind",
    "your favorite backseat gamer",
];

const BAIT_LINES: &[&str] = &[
    "Phoenix main, road to radiant",
    "Jersey collector and FPS enjoyer",
    "Apex Legends all day, Mirage enjoyer",
    "Valorant grinder, Phoenix one-trick",
];

/// Generate a Twitch description of the given style for a streamer whose
/// true home is `home`.
pub fn twitch_description(style: DescriptionStyle, home: &Place, rng: &mut SimRng) -> String {
    let country = &home.location.country;
    // Region- or country-level homes fall back to coarser phrasing.
    let region = home.location.region.as_deref().unwrap_or(country);
    let city = home.location.city.as_deref().unwrap_or(region);
    match style {
        DescriptionStyle::Formal => match rng.below(3) {
            0 => format!("From {city}, {region}. Streams every evening!"),
            1 => format!("Living in {city}, {country}. Come say hi!"),
            _ => format!("{city}, {region} based streamer, playing ranked daily"),
        },
        DescriptionStyle::Informal => match rng.below(3) {
            0 => format!("Join us in {city}!"),
            1 => format!("Greetings from {city} — streams most nights"),
            _ => format!("{city} represent! Love my city"),
        },
        DescriptionStyle::CountryOnly => match rng.below(2) {
            0 => format!("Streaming from {country}, usually after work"),
            _ => format!("{country} streamer, chat in any language"),
        },
        DescriptionStyle::Misleading => {
            format!("I live in {country}ian but have roots in Iran")
        }
        DescriptionStyle::Bait => (*rng.choose(BAIT_LINES)).to_string(),
        DescriptionStyle::NonGeo => (*rng.choose(NONGEO_LINES)).to_string(),
    }
}

/// How a generated Twitter location field relates to the truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwitterFieldStyle {
    /// "`<City>`, `<Region>`" — the clean case.
    CityRegion,
    /// "`<City>`, `<Country>`".
    CityCountry,
    /// Just the city.
    CityOnly,
    /// Jokey but resolvable: "Your heart, `<City>`".
    Joke,
    /// Unresolvable fiction ("the moon").
    Fiction,
    /// Empty field.
    Empty,
}

impl TwitterFieldStyle {
    /// Whether the field carries the true location.
    pub fn has_true_location(self) -> bool {
        matches!(
            self,
            TwitterFieldStyle::CityRegion
                | TwitterFieldStyle::CityCountry
                | TwitterFieldStyle::CityOnly
                | TwitterFieldStyle::Joke
        )
    }
}

const FICTION_FIELDS: &[&str] = &[
    "the moon",
    "everywhere and nowhere",
    "in the rift",
    "gamer land",
];

/// Generate a Twitter location field of the given style.
pub fn twitter_field(style: TwitterFieldStyle, home: &Place, rng: &mut SimRng) -> String {
    let country = &home.location.country;
    let region = home.location.region.as_deref().unwrap_or(country);
    let city = home.location.city.as_deref().unwrap_or(region);
    match style {
        TwitterFieldStyle::CityRegion => format!("{city}, {region}"),
        TwitterFieldStyle::CityCountry => format!("{city}, {country}"),
        TwitterFieldStyle::CityOnly => city.to_string(),
        TwitterFieldStyle::Joke => format!("Your heart, {city}"),
        TwitterFieldStyle::Fiction => (*rng.choose(FICTION_FIELDS)).to_string(),
        TwitterFieldStyle::Empty => String::new(),
    }
}

/// Sample a description style with realistic frequencies: most
/// descriptions carry no location (the paper located only 2.77 % of
/// streamers overall; descriptions yielded ~1 %).
pub fn sample_description_style(rng: &mut SimRng) -> DescriptionStyle {
    let styles = [
        DescriptionStyle::Formal,
        DescriptionStyle::Informal,
        DescriptionStyle::CountryOnly,
        DescriptionStyle::Misleading,
        DescriptionStyle::Bait,
        DescriptionStyle::NonGeo,
    ];
    // The paper located only ~1 % of streamers via descriptions; most
    // descriptions carry no (usable) location at all.
    let weights = [0.020, 0.008, 0.006, 0.001, 0.012, 0.953];
    styles[rng.choose_weighted(&weights)]
}

/// Sample a Twitter-field style: Twitter fields are location-ish far more
/// often (the paper extracts from ~70 % of them).
pub fn sample_twitter_style(rng: &mut SimRng) -> TwitterFieldStyle {
    let styles = [
        TwitterFieldStyle::CityRegion,
        TwitterFieldStyle::CityCountry,
        TwitterFieldStyle::CityOnly,
        TwitterFieldStyle::Joke,
        TwitterFieldStyle::Fiction,
        TwitterFieldStyle::Empty,
    ];
    let weights = [0.30, 0.20, 0.15, 0.05, 0.10, 0.20];
    styles[rng.choose_weighted(&weights)]
}

/// Generate a username: adjective + noun + optional digits.
pub fn username(rng: &mut SimRng) -> String {
    const ADJ: &[&str] = &[
        "dark", "mega", "tilted", "cozy", "rapid", "silent", "spicy", "frost", "neon", "hyper",
        "sleepy", "wild", "pixel", "turbo", "lucky", "salty", "shadow", "crimson", "arcane",
        "grim", "velvet", "static", "quantum", "feral",
    ];
    const NOUN: &[&str] = &[
        "wolf", "panda", "mage", "sniper", "toad", "falcon", "gremlin", "wizard", "viking",
        "ninja", "badger", "reaper", "goblin", "knight", "otter", "phantom", "drake", "raven",
        "lynx", "mantis", "golem", "sprite", "warden", "yeti",
    ];
    let adj = rng.choose(ADJ);
    let noun = rng.choose(NOUN);
    if rng.chance(0.8) {
        format!("{adj}{noun}{}", rng.below(100_000))
    } else {
        format!("{adj}_{noun}{}", rng.below(1_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_geoparse::Gazetteer;

    fn miami() -> Place {
        let gaz = Gazetteer::new();
        gaz.lookup_kind("Miami", tero_geoparse::PlaceKind::City)[0].clone()
    }

    #[test]
    fn formal_mentions_region_or_country() {
        let home = miami();
        let mut rng = SimRng::new(1);
        for _ in 0..20 {
            let d = twitch_description(DescriptionStyle::Formal, &home, &mut rng);
            assert!(d.contains("Florida") || d.contains("United States"), "{d}");
            assert!(d.contains("Miami"));
        }
    }

    #[test]
    fn informal_mentions_city_only() {
        let home = miami();
        let mut rng = SimRng::new(2);
        for _ in 0..20 {
            let d = twitch_description(DescriptionStyle::Informal, &home, &mut rng);
            assert!(d.contains("Miami"), "{d}");
            assert!(!d.contains("Florida"), "{d}");
        }
    }

    #[test]
    fn nongeo_and_bait_omit_home() {
        let home = miami();
        let mut rng = SimRng::new(3);
        for style in [DescriptionStyle::NonGeo, DescriptionStyle::Bait] {
            for _ in 0..10 {
                let d = twitch_description(style, &home, &mut rng);
                assert!(!d.contains("Miami"), "{style:?}: {d}");
            }
        }
    }

    #[test]
    fn twitter_fields() {
        let home = miami();
        let mut rng = SimRng::new(4);
        assert_eq!(
            twitter_field(TwitterFieldStyle::CityRegion, &home, &mut rng),
            "Miami, Florida"
        );
        assert_eq!(
            twitter_field(TwitterFieldStyle::Joke, &home, &mut rng),
            "Your heart, Miami"
        );
        assert!(twitter_field(TwitterFieldStyle::Empty, &home, &mut rng).is_empty());
    }

    #[test]
    fn style_sampling_is_mostly_nongeo() {
        let mut rng = SimRng::new(5);
        let n = 10_000;
        let nongeo = (0..n)
            .filter(|_| sample_description_style(&mut rng) == DescriptionStyle::NonGeo)
            .count();
        let frac = nongeo as f64 / n as f64;
        assert!((0.93..0.99).contains(&frac), "{frac}");
    }

    #[test]
    fn usernames_unique_enough() {
        let mut rng = SimRng::new(6);
        let mut set = std::collections::HashSet::new();
        for _ in 0..500 {
            set.insert(username(&mut rng));
        }
        assert!(set.len() > 400, "collisions too frequent: {}", set.len());
    }
}
