//! Live ops console: watch a sharded run's health while it runs.
//!
//! ```sh
//! cargo run --release --example ops_console        # defaults
//! cargo run --release --example ops_console -- 7   # explicit seed
//! ```
//!
//! Runs the sharded topology (2 engines, 3 store shards, 6 windows)
//! under the stock `default_net_fault` schedule — background frame
//! drop/delay, shard 1's primary killed for the middle third, engine 0
//! partitioned from shard 2's primary just past halfway — with a
//! `tero-ops` [`HealthMonitor`] polling the mesh after every window
//! over the quiet ops plane. The console prints:
//!
//! * one health dashboard per window: per-shard
//!   healthy/degraded/partitioned, every derived gauge with its healthy
//!   band, and the network-vs-processing starvation verdict;
//! * the per-stage latency-budget table aggregated from the stitched
//!   mesh trace (logical ticks, so the numbers replay exactly);
//! * the mesh Chrome-trace size — the export `tests/observability.rs`
//!   pins byte-identical across worker counts and replays.
//!
//! Stdout is **byte-stable** for a fixed seed: the fault timeline is
//! planned, the ops plane draws no randomness, and every table is a
//! pure function of deterministic state. `scripts/ci.sh` runs it twice
//! and diffs.

use tero::chaos::FaultPlan;
use tero::core::pipeline::ExtractionMode;
use tero::core::sharded::{run_sharded_observed, ShardedConfig};
use tero::net::default_net_fault;
use tero::ops::{default_stage_budgets, BudgetSource, BudgetTable, HealthMonitor, ShardStatus};
use tero::trace::SpanRecord;
use tero::world::WorldConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(4242);

    // Same pinned world as sharded_explore: two concentrated location
    // groups so the publish stage has something to publish.
    let pinned = [
        tero::types::Location::country("Netherlands"),
        tero::types::Location::country("Poland"),
    ]
    .map(|l| (l, tero::types::GameId::LeagueOfLegends, 5))
    .into_iter()
    .collect();
    let world = WorldConfig {
        seed,
        n_streamers: 6,
        days: 1,
        shared_events: 1,
        pinned,
        ..WorldConfig::default()
    };
    let (engines, shards, windows) = (2usize, 3usize, 6u64);
    let cfg = ShardedConfig {
        engines,
        shards,
        windows,
        world,
        mode: ExtractionMode::Calibrated,
        min_streamers: 3,
        plan: FaultPlan {
            net: default_net_fault(shards, windows),
            ..FaultPlan::quiet(seed)
        },
        net_seed: seed,
        trace: true,
        ..ShardedConfig::default()
    };

    println!("== ops console (seed {seed}) ==");
    println!(
        "{engines} engines, {shards} store shards (primary + replica), \
         {windows} windows, stock net-fault schedule"
    );
    println!();

    // The monitor is created inside the first observation (the net
    // registry only exists once the run is underway) and polls the mesh
    // after every window.
    let mut monitor: Option<HealthMonitor> = None;
    let mut reports = Vec::new();
    let out = run_sharded_observed(&cfg, |view| {
        let monitor =
            monitor.get_or_insert_with(|| HealthMonitor::new(view.net, view.net_registry));
        let report = monitor.observe(view.window, view.clients, view.engine_registries);
        print!("{}", report.render_text());
        println!();
        reports.push(report);
    });

    // The injected incident and its recovery, as the monitor saw them.
    let partitioned: Vec<u64> = reports
        .iter()
        .filter(|r| r.count(ShardStatus::Partitioned) > 0)
        .map(|r| r.window)
        .collect();
    println!("windows with a partitioned shard: {partitioned:?}");
    let last = reports.last().expect("at least one window ran");
    assert_eq!(
        last.count(ShardStatus::Healthy),
        shards as u64,
        "the mesh must have recovered by the horizon"
    );
    println!("final window {}: all {shards} shards healthy", last.window);

    // Per-stage latency budgets over the whole mesh trace, in logical
    // ticks — deterministic, so safe to pin on stdout.
    let spans: Vec<SpanRecord> = out
        .mesh
        .iter()
        .flat_map(|(_, tracer)| tracer.records().0)
        .collect();
    let table = BudgetTable::from_spans(&spans, &default_stage_budgets(), BudgetSource::Ticks);
    println!("\n== latency budgets (logical ticks) ==");
    print!("{}", table.render_text());
    println!("any stage over budget: {}", table.any_over());

    // The stitched mesh trace (every host, client spans + server-side
    // handling under them).
    let trace_json = out.mesh_chrome_trace();
    let host_names: Vec<&str> = out.mesh.iter().map(|(name, _)| name.as_str()).collect();
    println!("\n== mesh trace ==");
    println!("hosts: {}", host_names.join(", "));
    println!(
        "chrome trace: {} events, {} bytes",
        trace_json.matches("\"ph\":").count(),
        trace_json.len()
    );
    println!(
        "merged report: {} streamers seen, {} samples extracted, {} distributions",
        out.report.streamers_seen,
        out.report.extracted,
        out.report.distributions.len()
    );
}
