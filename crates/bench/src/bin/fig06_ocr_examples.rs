//! Fig 6 — examples of OCR input, rendered as ASCII art.
//!
//! (a) a typical latency display, (b) a font too light for extraction,
//! (c) a value partially hidden by an open menu, (d) a clock where the
//! latency normally goes. For each, the cropped region of interest and
//! what the image-processing module extracted from it.

use tero_bench::header;
use tero_types::SimRng;
use tero_vision::combine::{CombineOutcome, OcrCombiner};
use tero_vision::scene::HudScene;

fn show(title: &str, scene: &HudScene, seed: u64) {
    let combiner = OcrCombiner::new();
    let mut rng = SimRng::new(seed);
    let thumb = scene.render(&mut rng);
    let roi = scene.roi();
    let crop = thumb.crop(roi.0, roi.1, roi.2, roi.3);
    println!();
    println!("--- {title} (true value: {} ms) ---", scene.latency_ms);
    print!("{}", crop.to_ascii());
    match combiner.extract(&crop) {
        CombineOutcome::Extracted {
            primary,
            alternative,
        } => println!("=> extracted: {primary} ms (alternative: {alternative:?})"),
        CombineOutcome::NoMeasurement => println!("=> extracted: nothing"),
    }
}

fn main() {
    header("Fig 6: examples of OCR input");
    show("(a) typical latency display", &HudScene::typical(45), 1);
    show("(b) latency font too light", &HudScene::light_font(45), 2);
    show(
        "(c) latency partially hidden",
        &HudScene::partially_hidden(145, 0.38),
        3,
    );
    show(
        "(d) latency replaced by clock",
        &HudScene::clock_overlay(45, 19, 42),
        4,
    );
}
