//! # tero-simnet
//!
//! A discrete-event network simulator, built to reproduce the paper's
//! gaming-vs-network-latency evaluation (§4.1, Fig 3, Fig 4, Table 2).
//!
//! The simulator models:
//!
//! * store-and-forward [`link::Link`]s with finite drop-tail FIFO queues,
//!   serialization delay and propagation delay;
//! * switches that forward along BFS-computed shortest-path routes;
//! * UDP constant-bit-rate background flows ([`udp`]);
//! * a Reno-style TCP with slow start, congestion avoidance, fast
//!   retransmit and RTO ([`tcp`]), optionally application-rate-limited
//!   (Table 2's "10 % BD each" flows);
//! * a game client/server protocol whose server measures application-layer
//!   RTT and displays a **windowed average** — the mechanism behind the
//!   paper's observation that gaming latency lags network latency by a few
//!   seconds at sharp congestion transitions ([`game`]);
//! * the Fig 3 testbed and the Table 2 experiment matrix ([`testbed`],
//!   [`experiment`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiment;
pub mod game;
pub mod link;
pub mod packet;
pub mod sim;
pub mod tcp;
pub mod testbed;
pub mod udp;

pub use experiment::{run_experiment, ExperimentConfig, ExperimentResult, GameProfile};
pub use link::{Link, LinkConfig, LinkId};
pub use packet::{NodeId, Packet, PacketKind};
pub use sim::Simulator;
pub use testbed::Testbed;
