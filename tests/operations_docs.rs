//! docs/OPERATIONS.md ↔ registry cross-check.
//!
//! The operations guide promises to document *every* metric the pipeline
//! registers. This test enforces the contract in both directions: each
//! documented name must appear in a populated registry, and each
//! registered name must have a catalogue row. Adding a metric without a
//! row (or a row without a metric) fails here.

use std::collections::BTreeSet;
use tero::core::pipeline::{ExtractionMode, Tero, WindowOutcome};
use tero::core::serving::ServeGranularity;
use tero::serve::{QueryEngine, SketchRef};
use tero::store::DocumentStore;
use tero_simnet::udp::UdpFlow;
use tero_simnet::{LinkConfig, Simulator};
use tero_types::{GameId, SimDuration, SimTime};
use tero_world::{World, WorldConfig};

const OPERATIONS_MD: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/OPERATIONS.md"));

/// Metric names from the catalogue tables: first backtick span of rows
/// shaped `| \`name\` | ...`.
fn documented_names() -> BTreeSet<String> {
    OPERATIONS_MD
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("| `")?;
            let name = rest.split('`').next()?;
            // Catalogue rows hold dotted metric names; other tables (e.g.
            // the overhead table) put API names in the same position.
            let dotted = name.contains('.')
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c));
            dotted.then(|| name.to_string())
        })
        .collect()
}

/// A registry populated the way the guide describes: one pipeline run
/// (FullOcr, so the `ocr.*` engines fire) plus the two opt-in
/// subsystems — an instrumented document store and simulator. The run
/// is driven as 1-day windows so the online cleaner's per-window
/// refresh counters (`clean.*`) move too — a single-shot run is one
/// finalizing window, which skips the serving refresh.
fn populated_registry() -> tero_obs::Registry {
    let mut world = World::build(WorldConfig {
        seed: 9,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    });
    // Install the stock fault plan so the `chaos.*` and recovery-side
    // `download.*` metrics are registered (and exercised) too.
    world.install_chaos(tero::chaos::ChaosInjector::new(
        tero::chaos::FaultPlan::default_plan(5),
    ));
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 2,
        ..Tero::default()
    };
    let horizon = world.horizon;
    let day = SimDuration::from_hours(24);
    let mut to = SimTime::EPOCH + day;
    loop {
        match tero.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(_) => break,
            WindowOutcome::Advanced => to = (to + day).min(horizon),
            WindowOutcome::Killed => {}
        }
    }

    // The serving front-end registers the `serve.*` family on
    // construction; issue a query per served distribution (plus one
    // guaranteed miss — a small world can publish nothing) so the
    // counters move too.
    let serve = QueryEngine::new(tero.serving_store().expect("run completed"), &tero.obs);
    for (granularity, game, location_key) in serve.distributions() {
        serve.percentile(&SketchRef::dist(granularity, game, &location_key), 95.0);
    }
    serve.percentile(
        &SketchRef::dist(
            ServeGranularity::Country,
            GameId::LeagueOfLegends,
            "Atlantis",
        ),
        50.0,
    );

    // The networked-store layer registers the `net.*` family when a
    // sharded client is constructed; route a couple of ops through a
    // quiet one-shard mesh so the traffic counters move too. (The
    // `chaos.injected.net_*` counters were registered above by
    // `instrument` — every injector registers the full fault catalogue.)
    let mesh_chaos = tero::chaos::ChaosInjector::new(tero::chaos::FaultPlan::quiet(3));
    let mesh = tero::net::SimNet::with_shards(tero::net::default_link(), mesh_chaos, 1);
    let client = std::sync::Arc::new(tero::net::ShardedStoreClient::new(
        mesh.clone(),
        0,
        1,
        &tero.obs,
        3,
    ));
    let net_kv = tero::store::KvStore::remote(
        client.clone() as std::sync::Arc<dyn tero::store::RemoteStore>
    );
    net_kv.set("ops:net", "1");
    assert_eq!(net_kv.get("ops:net").as_deref(), Some("1"));

    // The ops layer registers `ops.*` / `health.*` on construction and
    // moves them with one observation of the quiet mesh.
    let mut monitor = tero::ops::HealthMonitor::new(&mesh, &tero.obs);
    let report = monitor.observe(0, &[client], std::slice::from_ref(&tero.obs));
    assert_eq!(report.count(tero::ops::ShardStatus::Healthy), 1);

    let docs = DocumentStore::new();
    docs.instrument(&tero.obs);
    docs.insert("ops", &42u32);
    let _: Vec<u32> = docs.all("ops");

    let mut sim = Simulator::new();
    sim.instrument(&tero.obs);
    let a = sim.add_node();
    let b = sim.add_node();
    sim.add_duplex_link(
        a,
        b,
        LinkConfig {
            rate_bps: 1e6,
            prop: SimDuration::from_millis(5),
            queue_packets: 10,
        },
    );
    sim.compute_routes();
    sim.add_udp_flow(UdpFlow::cbr(
        a,
        b,
        1e5,
        1250,
        SimTime::EPOCH,
        SimTime::from_millis(100),
    ));
    sim.run_until(SimTime::from_secs(1));

    tero.obs.clone()
}

#[test]
fn catalogue_matches_registry_both_ways() {
    let documented = documented_names();
    assert!(
        documented.len() >= 40,
        "catalogue parse found only {} rows — table format changed?",
        documented.len()
    );
    let registered: BTreeSet<String> = populated_registry().metric_names().into_iter().collect();

    let undocumented: Vec<&String> = registered.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "registered but missing from docs/OPERATIONS.md: {undocumented:?}"
    );
    let stale: Vec<&String> = documented.difference(&registered).collect();
    assert!(
        stale.is_empty(),
        "documented but never registered: {stale:?}"
    );
}

#[test]
fn documented_counters_move_during_a_run() {
    // Spot-check the guide's "healthy look" claims on the load-bearing
    // funnel counters.
    let snap = populated_registry().snapshot();
    let thumbs = snap.counter("pipeline.thumbnails").unwrap();
    let extracted = snap.counter("pipeline.extracted").unwrap();
    let misses = snap.counter("pipeline.no_measurement").unwrap();
    assert!(thumbs > 0, "pipeline processed no thumbnails");
    assert!(extracted > 0 && extracted <= thumbs);
    assert_eq!(
        snap.counter("download.get_hits"),
        Some(thumbs),
        "everything fetched gets processed"
    );
    assert!(extracted + misses <= thumbs, "funnel rows are consistent");
    assert!(snap.counter("ocr.vote_unanimous").unwrap() > 0);
    assert!(snap.counter("analysis.segments_built").unwrap() > 0);
    assert!(snap.counter("store.kv.writes").unwrap() > 0);
    assert!(snap.counter("simnet.events").unwrap() > 0);
    assert_eq!(snap.counter("store.doc.writes"), Some(1));
    assert!(
        snap.counter("stats.sketch.inserts").unwrap() > 0,
        "extraction feeds the serving sketches"
    );
    assert_eq!(
        snap.counter("clean.samples_in"),
        Some(extracted),
        "the online cleaner consumes every extracted sample"
    );
    assert_eq!(
        snap.counter("stats.changepoint.points"),
        snap.counter("clean.samples_in"),
        "every consumed sample feeds the streaming changepoint detector"
    );
    assert!(
        snap.counter("clean.views_refreshed").unwrap() > 0,
        "windowed drive refreshes per-series views"
    );
    assert!(snap.counter("clean.segments_sealed").unwrap() > 0);
    assert!(
        snap.counter("stats.sketch.commits").unwrap() > 0,
        "window commits persist the sketches"
    );
    assert!(snap.counter("serve.queries").unwrap() > 0);
    assert!(snap.counter("serve.cache.misses").unwrap() > 0);
}

#[test]
fn trace_metrics_are_catalogued_and_consistent() {
    // The tero-trace layer registers its metrics eagerly (even with span
    // recording disabled), so every trace.* and pipeline.funnel.* name
    // must be present after a run and have a catalogue row.
    let registry = populated_registry();
    let registered: BTreeSet<String> = registry.metric_names().into_iter().collect();
    let documented = documented_names();
    let fixed = [
        "trace.spans",
        "trace.events.trace",
        "trace.events.debug",
        "trace.events.info",
        "trace.events.warn",
        "trace.events.error",
        "trace.ring.evicted",
        "trace.export_bytes",
        "pipeline.funnel.ingested",
        "pipeline.funnel.published",
    ];
    let funnel_drops = tero::trace::DropReason::ALL.map(|r| r.metric_name());
    for name in fixed.iter().copied().chain(funnel_drops.iter().copied()) {
        assert!(registered.contains(name), "{name} not registered");
        assert!(documented.contains(name), "{name} has no catalogue row");
    }

    // The funnel conserves samples: ingested = published + every typed
    // drop, straight from the counters (the ledger proves the same
    // equality record-by-record; see tests/end_to_end.rs).
    let snap = registry.snapshot();
    let ingested = snap.counter("pipeline.funnel.ingested").unwrap();
    let published = snap.counter("pipeline.funnel.published").unwrap();
    let dropped: u64 = funnel_drops.iter().map(|n| snap.counter(n).unwrap()).sum();
    assert!(ingested > 0, "run ingested nothing");
    assert_eq!(published + dropped, ingested, "funnel leaks samples");
    assert_eq!(
        snap.counter("pipeline.funnel.ingested"),
        snap.counter("pipeline.thumbnails"),
        "funnel ingestion mirrors the legacy thumbnail counter"
    );
    // Span recording stays off by default: the counters exist but are
    // untouched until `Tracer::set_enabled(true)`.
    assert_eq!(snap.counter("trace.spans"), Some(0));
    assert_eq!(snap.counter("trace.ring.evicted"), Some(0));
    assert_eq!(snap.counter("trace.export_bytes"), Some(0));
}
