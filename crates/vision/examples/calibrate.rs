//! Diagnostic: per-engine and voted OCR rates by scenario — the tuning
//! harness used to calibrate the engines against Table 4's shape.
//!
//! ```sh
//! cargo run --release -p tero-vision --example calibrate
//! ```
use tero_types::SimRng;
use tero_vision::combine::{CombineOutcome, OcrCombiner};
use tero_vision::ocr::OcrEngineKind;
use tero_vision::scene::HudScene;

fn run(label: &str, mk: impl Fn(&mut SimRng) -> HudScene) {
    let c = OcrCombiner::new();
    let mut rng = SimRng::new(99);
    let n = 400;
    let mut miss = [0usize; 3];
    let mut err = [0usize; 3];
    let mut vmiss = 0;
    let mut verr = 0;
    for _ in 0..n {
        let scene = mk(&mut rng);
        let lat = scene.latency_ms;
        let thumb = scene.render(&mut rng);
        let roi = scene.roi();
        let crop = thumb.crop(roi.0, roi.1, roi.2, roi.3);
        for (i, &k) in OcrEngineKind::ALL.iter().enumerate() {
            match c.extract_single(&crop, k) {
                None => miss[i] += 1,
                Some(v) if v != lat => err[i] += 1,
                _ => {}
            }
        }
        match c.extract(&crop) {
            CombineOutcome::NoMeasurement => vmiss += 1,
            CombineOutcome::Extracted { primary, .. } if primary != lat => verr += 1,
            _ => {}
        }
    }
    let p = |x: usize| 100.0 * x as f64 / n as f64;
    println!(
        "{label:<18} tess {:>5.1}/{:<5.1} easy {:>5.1}/{:<5.1} padd {:>5.1}/{:<5.1} | vote {:>5.1}/{:<5.1}",
        p(miss[0]), p(err[0]), p(miss[1]), p(err[1]), p(miss[2]), p(err[2]), p(vmiss), p(verr)
    );
}

fn main() {
    println!("{:<18} (miss/err per engine and voted)", "scenario");
    run("light 206-225", |r| {
        let mut s = HudScene::light_font(r.range_u64(5, 250) as u32);
        s.fg = 206 + r.below(20) as u8;
        s.noise = 0.005 + r.f64() * 0.06;
        s.grain = 1.0 + r.f64() * 7.0;
        s
    });
    run("typical mixed", |r| {
        let mut s = HudScene::typical(r.range_u64(5, 250) as u32);
        s.noise = 0.005 + r.f64() * 0.06;
        s.grain = 1.0 + r.f64() * 7.0;
        s
    });
    run("occluded", |r| {
        HudScene::partially_hidden(r.range_u64(5, 250) as u32, 0.15 + 0.4 * r.f64())
    });
}
