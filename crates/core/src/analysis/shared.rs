//! Shared-anomaly detection (§3.3.2 last part, App. F).
//!
//! Streamers are grouped per `{game, region}` (the paper's best available
//! aggregate: same-region players typically share a server and some
//! network infrastructure). For each detected spike, Tero counts how many
//! of the concurrently-streaming group members also spiked within a
//! 12-minute window, and applies the binomial test of App. F.

use crate::analysis::anomaly::SpikeEvent;
use serde::{Deserialize, Serialize};
use tero_stats::SharedAnomalyTest;
use tero_types::{AnonId, GameId, Location, SimDuration, SimTime};

/// The window around a spike within which another streamer counts as
/// "streaming during the spike" / "spiking with it": ±6 minutes (the 90th
/// percentile of thumbnail inter-arrival is 6 minutes, Fig 13).
pub const SHARED_WINDOW: SimDuration = SimDuration(12 * 60 * 1_000_000);

/// One streamer's contribution to a `{game, region}` aggregate.
#[derive(Debug, Clone)]
pub struct StreamerActivity {
    /// Who.
    pub anon: AnonId,
    /// Times of all their (clean + spike) measurements.
    pub measurement_times: Vec<SimTime>,
    /// Their detected spikes.
    pub spikes: Vec<SpikeEvent>,
}

/// One detected shared anomaly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedAnomaly {
    /// Game of the aggregate.
    pub game: GameId,
    /// Region-level location of the aggregate.
    pub region: Location,
    /// Centre of the triggering spike window.
    pub at: SimTime,
    /// Streamers active in the window.
    pub active: u64,
    /// Streamers who spiked in the window.
    pub spiking: u64,
    /// The binomial probability of independence (Eq. 3).
    pub probability: f64,
}

/// Detect shared anomalies within one `{game, region}` aggregate.
pub fn detect_shared_anomalies(
    game: GameId,
    region: &Location,
    activities: &[StreamerActivity],
) -> Vec<SharedAnomaly> {
    let total_measurements: u64 = activities
        .iter()
        .map(|a| a.measurement_times.len() as u64)
        .sum();
    let total_spikes: u64 = activities.iter().map(|a| a.spikes.len() as u64).sum();
    let Some(test) = SharedAnomalyTest::from_counts(total_spikes, total_measurements) else {
        return vec![];
    };
    if !test.is_significant() {
        return vec![];
    }

    let half = SimDuration(SHARED_WINDOW.as_micros() / 2);
    let mut out: Vec<SharedAnomaly> = Vec::new();
    for (i, activity) in activities.iter().enumerate() {
        for spike in &activity.spikes {
            let center = spike.start;
            let lo = center - half;
            let hi = center + half;
            // N: streamers with ≥1 measurement in the window.
            // D: of those, streamers with a spike overlapping the window.
            let mut active = 0u64;
            let mut spiking = 0u64;
            for (j, other) in activities.iter().enumerate() {
                let has_measurement = other.measurement_times.iter().any(|&t| t >= lo && t <= hi);
                if !has_measurement {
                    continue;
                }
                active += 1;
                let spiked = if i == j {
                    true
                } else {
                    other.spikes.iter().any(|s| s.start <= hi && s.end >= lo)
                };
                if spiked {
                    spiking += 1;
                }
            }
            if spiking >= 2 && test.is_shared_anomaly(active, spiking) {
                // Deduplicate: skip if we already emitted an anomaly whose
                // window overlaps this one.
                let dup = out.iter().any(|a| a.at >= lo && a.at <= hi);
                if !dup {
                    out.push(SharedAnomaly {
                        game,
                        region: region.clone(),
                        at: center,
                        active,
                        spiking,
                        probability: test.independence_probability(active, spiking),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimTime;

    fn spike(at_min: u64, dur_min: u64) -> SpikeEvent {
        SpikeEvent {
            segment_idxs: vec![],
            magnitude_ms: 30.0,
            start: SimTime::from_mins(at_min),
            end: SimTime::from_mins(at_min + dur_min),
            samples: 2,
        }
    }

    /// A streamer measured every 5 minutes across `hours`, with the given
    /// spikes.
    fn activity(id: u64, hours: u64, spikes: Vec<SpikeEvent>) -> StreamerActivity {
        StreamerActivity {
            anon: AnonId(id),
            measurement_times: (0..hours * 12).map(|i| SimTime::from_mins(5 * i)).collect(),
            spikes,
        }
    }

    fn region() -> Location {
        Location::region("United States", "California")
    }

    #[test]
    fn correlated_spikes_fire_the_test() {
        // 10 streamers, 100 h of data each, a few unrelated background
        // spikes apiece (so Eq. 2's significance gate passes); 8 of them
        // also spike together at minute 600.
        let activities: Vec<StreamerActivity> = (0..10u64)
            .map(|i| {
                let mut spikes = vec![
                    spike(3_000 + i * 137, 8),
                    spike(4_500 + i * 89, 8),
                    spike(5_400 + i * 53, 8),
                ];
                if i < 8 {
                    spikes.insert(0, spike(600, 10));
                }
                activity(i, 100, spikes)
            })
            .collect();
        let found = detect_shared_anomalies(GameId::LeagueOfLegends, &region(), &activities);
        assert!(!found.is_empty(), "anomaly must fire");
        let hit = found
            .iter()
            .find(|a| a.at.as_mins().abs_diff(600) <= 12)
            .expect("anomaly at the correlated window");
        assert_eq!(hit.active, 10);
        assert_eq!(hit.spiking, 8);
        assert!(hit.probability <= 1e-4);
    }

    #[test]
    fn lone_spike_is_not_shared() {
        let activities: Vec<StreamerActivity> = (0..10)
            .map(|i| {
                let spikes = if i == 0 { vec![spike(600, 10)] } else { vec![] };
                activity(i, 100, spikes)
            })
            .collect();
        let found = detect_shared_anomalies(GameId::LeagueOfLegends, &region(), &activities);
        assert!(found.is_empty());
    }

    #[test]
    fn insufficient_data_is_silent() {
        // Eq. 2 gate: a tiny aggregate cannot produce shared anomalies even
        // when everything spikes together.
        let activities: Vec<StreamerActivity> = (0..3)
            .map(|i| StreamerActivity {
                anon: AnonId(i),
                measurement_times: vec![SimTime::from_mins(600)],
                spikes: vec![spike(600, 10)],
            })
            .collect();
        let found = detect_shared_anomalies(GameId::LeagueOfLegends, &region(), &activities);
        assert!(found.is_empty());
    }

    #[test]
    fn uncorrelated_spikes_do_not_fire() {
        // Everyone spikes, but at well-separated times.
        let activities: Vec<StreamerActivity> = (0..10)
            .map(|i| activity(i, 100, vec![spike(i * 300 + 20, 8)]))
            .collect();
        let found = detect_shared_anomalies(GameId::LeagueOfLegends, &region(), &activities);
        assert!(found.is_empty(), "{found:?}");
    }
}
