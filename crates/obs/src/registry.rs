//! The named-metric registry.

use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};
use crate::timer::StageTimer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Shared handle to a registered counter. Bumping through the handle is
/// lock-free; only the initial name lookup takes the registry lock.
pub type CounterHandle = Arc<Counter>;
/// Shared handle to a registered gauge.
pub type GaugeHandle = Arc<Gauge>;
/// Shared handle to a registered histogram.
pub type HistogramHandle = Arc<Histogram>;

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, CounterHandle>>,
    gauges: Mutex<BTreeMap<String, GaugeHandle>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
    /// The sampling knob for wall-clock stage timing. Off by default:
    /// [`StageTimer`]s become no-ops and snapshots stay deterministic.
    timing: AtomicBool,
}

/// A registry of named metrics, shared by every pipeline stage.
///
/// Cloning is cheap (`Arc`); all clones see the same metrics. Metric
/// names are dotted paths, `<stage>.<event>[_<unit>]` — see
/// `docs/OPERATIONS.md` for the catalogue.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry with timing disabled.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Enable or disable wall-clock stage timing. Counters and
    /// value-histograms are unaffected — they are always on.
    pub fn set_timing(&self, enabled: bool) {
        self.inner.timing.store(enabled, Ordering::Relaxed);
    }

    /// Whether wall-clock stage timing is enabled.
    #[inline]
    pub fn timing_enabled(&self) -> bool {
        self.inner.timing.load(Ordering::Relaxed)
    }

    /// Whether `other` is a clone of this registry (same underlying
    /// metric tables). Handles resolved from one registry record into
    /// every clone of it, but not into a distinct registry — callers that
    /// cache handle bundles (e.g. the pipeline's `PipelineMetrics`) use
    /// this to detect that the registry was swapped out and the bundle
    /// must be re-resolved.
    pub fn same_registry(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Look up or create the counter `name`.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Look up or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        let mut map = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Look up or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Start a stage timer recording into `hist` on drop — a no-op guard
    /// (no clock read) unless [`Registry::set_timing`] enabled timing.
    #[inline]
    pub fn stage_timer(&self, hist: &HistogramHandle) -> StageTimer {
        StageTimer::start(self.timing_enabled(), hist.clone())
    }

    /// All registered metric names, sorted (counters, gauges, histograms
    /// concatenated).
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        names.extend(
            self.inner
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .keys()
                .cloned(),
        );
        names.extend(
            self.inner
                .gauges
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .keys()
                .cloned(),
        );
        names.extend(
            self.inner
                .histograms
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .keys()
                .cloned(),
        );
        names.sort();
        names
    }

    /// A point-in-time snapshot of every metric, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
                high_watermark: g.high_watermark(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                mean: h.mean(),
                p50: h.percentile(50.0).unwrap_or(0.0),
                p95: h.percentile(95.0).unwrap_or(0.0),
                p99: h.percentile(99.0).unwrap_or(0.0),
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// The change in every metric since `baseline` was taken: a snapshot
    /// whose counter values, gauge levels and histogram count/sum are the
    /// difference between now and the baseline. Metrics registered after
    /// the baseline delta against zero. Distribution-shape fields
    /// (histogram min/max/percentiles, gauge high-watermark) cannot be
    /// recovered for a window from two point-in-time summaries, so the
    /// delta carries their *current* values; a delta histogram's mean is
    /// recomputed from the differenced count and sum.
    pub fn delta_since(&self, baseline: &Snapshot) -> Snapshot {
        let mut now = self.snapshot();
        for c in &mut now.counters {
            c.value = c
                .value
                .saturating_sub(baseline.counter(&c.name).unwrap_or(0));
        }
        for g in &mut now.gauges {
            g.value -= baseline.gauge(&g.name).map(|b| b.value).unwrap_or(0);
        }
        for h in &mut now.histograms {
            if let Some(b) = baseline.histogram(&h.name) {
                h.count = h.count.saturating_sub(b.count);
                h.sum = h.sum.saturating_sub(b.sum);
            }
            h.mean = if h.count == 0 {
                0.0
            } else {
                h.sum as f64 / h.count as f64
            };
        }
        now
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metric_names().len())
            .field("timing", &self.timing_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_across_clones() {
        let r = Registry::new();
        let c1 = r.counter("a.b");
        let c2 = r.clone().counter("a.b");
        c1.inc();
        c2.inc();
        assert_eq!(r.snapshot().counter("a.b"), Some(2));
    }

    #[test]
    fn names_are_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z.last");
        r.gauge("m.middle");
        r.histogram("a.first");
        assert_eq!(r.metric_names(), vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn delta_since_equals_snapshot_difference() {
        let r = Registry::new();
        r.counter("work.done").add(5);
        r.gauge("queue.depth").set(9);
        r.histogram("op.us").record(100);
        let baseline = r.snapshot();

        r.counter("work.done").add(3);
        r.counter("work.late").add(2); // registered after the baseline
        r.gauge("queue.depth").set(4);
        r.histogram("op.us").record(50);
        r.histogram("op.us").record(50);

        let delta = r.delta_since(&baseline);
        // Counters: difference of the two snapshots, field by field.
        let after = r.snapshot();
        assert_eq!(
            delta.counter("work.done"),
            Some(after.counter("work.done").unwrap() - baseline.counter("work.done").unwrap())
        );
        assert_eq!(delta.counter("work.done"), Some(3));
        assert_eq!(delta.counter("work.late"), Some(2), "new metric vs zero");
        // Gauges difference signed levels.
        assert_eq!(delta.gauge("queue.depth").unwrap().value, -5);
        // Histograms difference count/sum and recompute the mean.
        let h = delta.histogram("op.us").unwrap();
        assert_eq!((h.count, h.sum), (2, 100));
        assert!((h.mean - 50.0).abs() < 1e-9);
        // A delta against the latest snapshot is all zeros.
        let zero = r.delta_since(&after);
        assert!(zero.counters.iter().all(|c| c.value == 0));
        assert!(zero.histograms.iter().all(|h| h.count == 0));
    }

    #[test]
    fn timing_defaults_off() {
        let r = Registry::new();
        assert!(!r.timing_enabled());
        let h = r.histogram("t.us");
        {
            let _guard = r.stage_timer(&h);
        }
        assert_eq!(h.count(), 0, "disabled timer records nothing");
        r.set_timing(true);
        {
            let _guard = r.stage_timer(&h);
        }
        assert_eq!(h.count(), 1, "enabled timer records one sample");
    }
}
