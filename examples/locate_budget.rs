//! Budgeted-locate explorer: drive a pinned-streamer world through
//! 1-day windows under a deliberately tight per-window API budget and
//! watch the location coverage ramp — spend, carry-over queue, and the
//! served distributions flipping from provisional (`p`) to canonical
//! (`c`) as budgeted profile lookups land (docs/AGGREGATION.md).
//!
//! ```sh
//! cargo run --release --example locate_budget           # default seed
//! cargo run --release --example locate_budget -- 7      # explicit seed
//! ```
//!
//! Every window the locate stage admits queued streamers while the
//! budget covers the worst-case lookup cost and defers the rest; the
//! per-window serving refresh groups series under whatever locations
//! are canonical so far, falling back to tags-only provisional lookups
//! for the still-queued. At the horizon the queue is drained regardless
//! of budget, so the final report and committed state are byte-identical
//! to an unbudgeted run (`tests/determinism.rs`). Stdout is
//! **byte-stable**: for a fixed seed it is identical across repeat runs
//! and worker counts, because everything printed derives from committed
//! `engine:locate:*` / `engine:serve:*` state and deterministic
//! counters. `scripts/ci.sh` runs this example twice and diffs stdout.

use tero::core::pipeline::{ExtractionMode, Tero, WindowOutcome};
use tero::core::serving::{dist_provenance, DistProvenance, DIST_SKETCH_PREFIX};
use tero::core::stages::locate::LOCATE_PROFILES_KEY;
use tero::core::stages::NAMES_KEY;
use tero::store::KvStore;
use tero::types::{GameId, Location, SimDuration, SimTime};
use tero::world::{World, WorldConfig};

/// Canonical-vs-provisional marker counts over every committed
/// distribution sketch.
fn served_provenance(kv: &KvStore) -> (usize, usize) {
    let mut canonical = 0;
    let mut provisional = 0;
    for key in kv.keys_with_prefix(DIST_SKETCH_PREFIX) {
        match dist_provenance(kv, &key).expect("every served sketch carries a marker") {
            DistProvenance::Canonical => canonical += 1,
            DistProvenance::Provisional => provisional += 1,
        }
    }
    (canonical, provisional)
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(7);

    // The §5.2 workload shape (streamers pinned to a few places, so
    // groups clear `min_streamers` from the first window on), with a
    // budget tight enough that coverage takes several windows to ramp:
    // 24 streamers, worst-case 5 calls each, 10 calls per window.
    let locations = [
        Location::country("Netherlands"),
        Location::country("Poland"),
        Location::region("United States", "Illinois"),
    ];
    let pinned = locations
        .iter()
        .map(|l| (l.clone(), GameId::LeagueOfLegends, 8))
        .collect();
    let mut world = World::build(WorldConfig {
        seed,
        n_streamers: 0,
        days: 6,
        pinned,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        locate_budget: Some(10),
        ..Tero::default()
    };

    println!("== budgeted locate ramp (seed {seed}, budget 10 calls/window) ==");
    let horizon = world.horizon;
    let day = SimDuration::from_hours(24);
    let mut to = SimTime::EPOCH + day;
    let mut window = 0u32;
    let report = loop {
        match tero.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => break report,
            WindowOutcome::Advanced => {
                window += 1;
                let snap = tero.engine_snapshot().expect("run in flight");
                let kv = KvStore::new();
                kv.restore(&snap.kv);
                let seen = kv.hgetall(NAMES_KEY).len();
                let settled = kv.hgetall(LOCATE_PROFILES_KEY).len();
                let metrics = tero.metrics_snapshot();
                let spent = metrics.counter("locate.budget.spent").unwrap_or(0);
                let queued = metrics
                    .gauge("locate.queue.depth")
                    .map(|g| g.value)
                    .unwrap_or(0);
                let (canonical, provisional) = served_provenance(&kv);
                println!(
                    "window {window}: spent={spent} settled={settled}/{seen} queued={queued} \
                     served c={canonical} p={provisional}"
                );
                to = (to + day).min(horizon);
            }
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    };

    // The horizon drain ignores the budget: the queue empties, the
    // publish finalizer rewrites the serving family from the settled
    // aggregation state, and every marker reads canonical.
    let store = tero.serving_store().expect("run completed");
    let (canonical, provisional) = served_provenance(&store);
    assert_eq!(
        provisional, 0,
        "the horizon serves canonical locations only"
    );
    println!();
    println!(
        "horizon: {} streamers located, served c={canonical} p={provisional}",
        report.locations.len()
    );
    let metrics = tero.metrics_snapshot();
    println!(
        "budget: {} calls spent in total, {} deferrals along the way",
        metrics.counter("locate.budget.spent").unwrap_or(0),
        metrics.counter("locate.budget.deferred").unwrap_or(0)
    );
}
