//! Fig 11 — League-of-Legends latency for EU countries within the same
//! 500-km-thick doughnut around the Amsterdam server.
//!
//! Paper's shape: smaller spreads than the US doughnuts, but Poland's 75th
//! percentile exceeds 40 ms while Switzerland sits at 15 ms; Italy's
//! 25th–75th gap exceeds 15 ms while France's is ~5 ms (per-streamer
//! spread differs by country).
//!
//! Usage: `fig11_eu_doughnuts [--per 60] [--days 8]`

use serde::Serialize;
use tero_bench::{arg_usize, ascii_box, header, run_lol_world, write_json};
use tero_types::{GameId, Location};

#[derive(Serialize)]
struct Row {
    country: String,
    doughnut: &'static str,
    corrected_km: f64,
    p25: f64,
    p50: f64,
    p75: f64,
    iqr: f64,
    n: usize,
}

fn main() {
    let per = arg_usize("--per", 60);
    let days = arg_usize("--days", 8) as u64;

    let near = [
        "Austria",
        "Denmark",
        "France",
        "Germany",
        "Italy",
        "Poland",
        "Switzerland",
        "United Kingdom",
    ];
    let far = ["France", "Italy", "Spain", "Poland"];
    let mut locations: Vec<Location> = near
        .iter()
        .chain(far.iter())
        .map(|c| Location::country(*c))
        .collect();
    locations.sort();
    locations.dedup();

    header("Fig 11: EU countries in Amsterdam doughnuts (building world, running pipeline)");
    let (_world, report) = run_lol_world(&locations, per, days, 1111);

    let mut rows = Vec::new();
    for (doughnut, members) in [("500-1000 km", &near[..]), ("1000-1500 km", &far[..])] {
        println!();
        println!("({doughnut} from the Amsterdam server)");
        let mut sub: Vec<Row> = Vec::new();
        for c in members {
            let loc = Location::country(*c);
            let Some(dist) = report.distribution(&loc, GameId::LeagueOfLegends) else {
                eprintln!("warning: no distribution for {loc}");
                continue;
            };
            sub.push(Row {
                country: c.to_string(),
                doughnut,
                corrected_km: dist.corrected_distance_km.unwrap_or(0.0),
                p25: dist.stats.p25,
                p50: dist.stats.p50,
                p75: dist.stats.p75,
                iqr: dist.stats.iqr(),
                n: dist.stats.n,
            });
        }
        sub.sort_by(|a, b| a.p75.partial_cmp(&b.p75).unwrap());
        for r in &sub {
            let stats = tero_stats::BoxplotStats {
                n: r.n,
                mean: r.p50,
                p5: r.p25,
                p25: r.p25,
                p50: r.p50,
                p75: r.p75,
                p95: r.p75 + r.iqr,
            };
            println!(
                "  {:<18} [{}] p75 {:>5.1} ms  IQR {:>4.1} ms ({:>4.0} km)",
                r.country,
                ascii_box(&stats, 0.0, 60.0, 40),
                r.p75,
                r.iqr,
                r.corrected_km
            );
        }
        rows.extend(sub);
    }

    // Paper cross-checks.
    println!();
    let get = |name: &str| rows.iter().find(|r| r.country == name);
    if let (Some(pl), Some(ch)) = (get("Poland"), get("Switzerland")) {
        println!(
            "Poland p75 {:.0} ms vs Switzerland p75 {:.0} ms (paper: >40 vs 15)",
            pl.p75, ch.p75
        );
    }
    if let (Some(it), Some(fr)) = (get("Italy"), get("France")) {
        println!(
            "Italy IQR {:.1} ms vs France IQR {:.1} ms (paper: >15 vs ~5)",
            it.iqr, fr.iqr
        );
    }

    write_json("fig11_eu_doughnuts", &rows);
}
