//! Offline stand-in for `serde_json`.
//!
//! Builds on the vendored `serde` crate's [`Value`] data model and adds the
//! JSON text layer: [`to_string`] / [`to_string_pretty`] encoding and a
//! [`from_str`] recursive-descent parser, plus the [`to_value`] /
//! [`from_value`] conversions the document store uses.

pub use serde::Value;

use serde::de::DeserializeOwned;
use serde::{Error, Serialize};
use std::fmt::Write as _;

/// Convert any [`Serialize`] type into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Convert a [`Value`] into any [`DeserializeOwned`] type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(&value)
}

/// Serialise to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialise to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any [`DeserializeOwned`] type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        src: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

// ------------------------------------------------------------- encoding --

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // Keep a trailing .0 on integral floats so the type is
                // visible in output, matching serde_json.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing --

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::custom(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' in array, found '{}'",
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(entries)),
                c => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        if (0xd800..0xdc00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?,
                            );
                        }
                    }
                    c => return Err(Error::custom(format!("invalid escape '\\{}'", c as char))),
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-decode multi-byte UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let width = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = start + width;
                    let chunk = self
                        .src
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()? as char;
            v = v * 16
                + c.to_digit(16)
                    .ok_or_else(|| Error::custom("invalid hex digit"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![("k".into(), Value::U64(7))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 7\n}");
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(from_str::<Value>("-12").unwrap(), Value::I64(-12));
        assert_eq!(from_str::<Value>("3.5").unwrap(), Value::F64(3.5));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(from_str::<Value>("42").unwrap(), Value::U64(42));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""a\nA😀é""#).unwrap();
        assert_eq!(v, Value::String("a\nA😀é".into()));
    }

    #[test]
    fn float_formatting_keeps_type_marker() {
        assert_eq!(to_string(&Value::F64(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::F64(2.25)).unwrap(), "2.25");
    }

    #[test]
    fn to_from_value_roundtrip() {
        let v = to_value(vec![1u32, 2]).unwrap();
        let back: Vec<u32> = from_value(v).unwrap();
        assert_eq!(back, vec![1, 2]);
    }
}
