//! Offline stand-in for `rand`.
//!
//! The workspace's simulators use their own `SimRng`; this crate exists so
//! the declared `rand` dependency resolves offline. It provides a tiny
//! deterministic PRNG ([`SmallRng`], splitmix64-based) behind a subset of
//! rand's trait surface.

/// Core RNG trait: produce raw random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `u64` in `[lo, hi)`. Panics if `lo >= hi`.
    fn random_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// A random boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable RNGs.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A small, fast, deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The `rand::rngs` namespace (compatibility).
pub mod rngs {
    pub use crate::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_hold() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
