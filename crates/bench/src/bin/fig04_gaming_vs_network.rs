//! Fig 4 / Table 2 / Fig 3 — gaming vs network latency on the testbed.
//!
//! Runs the Table 2 experiment matrix (2 games × 2 bottleneck bandwidths ×
//! 4 queue sizes, `--reps` repetitions each) on the Fig 3 testbed and
//! reports, per experiment, the distribution of
//! `|(Test − Control displayed latency) − bottleneck network latency|` —
//! the quantity of Fig 4 — sorted by the worst bottleneck latency created,
//! exactly like the paper's x-axis.
//!
//! Paper's findings to compare against: the 95th percentile of the
//! difference stays ≤ 8.5 ms in the worst experiment; differences above
//! 4 ms cluster at the start/end of background traffic and recover within
//! a few seconds (the display-window lag).
//!
//! Usage: `fig04_gaming_vs_network [--scale 0.2] [--reps 3]`
//! (`--scale` shrinks the 5-minute protocol; 1.0 = paper timeline).

use serde::Serialize;
use tero_bench::{arg_f64, arg_usize, header, write_json};
use tero_simnet::experiment::{
    run_experiment, ExperimentConfig, GameProfile, STARTUP_END_S, TCP_START_S, UDP_END_S,
};
use tero_stats::BoxplotStats;

#[derive(Serialize)]
struct Row {
    game: &'static str,
    bottleneck_gbps: f64,
    queue_packets: usize,
    max_bottleneck_ms: f64,
    diff_p50_ms: f64,
    diff_p95_ms: f64,
    diff_max_ms: f64,
    control_mean_ms: f64,
    control_sd_ms: f64,
    large_diffs_at_transitions_pct: f64,
    startup_ok: bool,
}

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let reps = arg_usize("--reps", 3);
    header("Fig 4: difference between gaming and network latency");
    println!("(protocol scale {scale}, {reps} repetitions per experiment)");

    let mut rows: Vec<Row> = Vec::new();
    for game in [GameProfile::GENSHIN, GameProfile::LOL] {
        for config in ExperimentConfig::matrix(game) {
            let mut diffs: Vec<f64> = Vec::new();
            let mut max_bottleneck: f64 = 0.0;
            let mut control_means = Vec::new();
            let mut control_sds = Vec::new();
            let mut at_transitions = 0usize;
            let mut large = 0usize;
            let mut startup_ok = true;
            for _rep in 0..reps {
                let result = run_experiment(config, scale);
                startup_ok &= result.startup_ok;
                diffs.extend(result.differences());
                max_bottleneck = max_bottleneck.max(result.max_bottleneck_ms());
                let (m, sd) = result.control_stats();
                control_means.push(m);
                control_sds.push(sd);
                // Lag analysis: large differences should cluster around
                // the background-traffic transitions.
                let window_ms = (20.0 * 1_000.0 * scale) as u64;
                let transitions: Vec<u64> = [STARTUP_END_S, TCP_START_S, UDP_END_S]
                    .iter()
                    .map(|&s| (s as f64 * scale * 1_000.0) as u64)
                    .collect();
                for t in result.large_difference_times(4.0) {
                    large += 1;
                    if transitions.iter().any(|&tr| t.abs_diff(tr) <= window_ms) {
                        at_transitions += 1;
                    }
                }
            }
            let stats = BoxplotStats::from_samples(&diffs).expect("diffs");
            let diff_max = diffs.iter().cloned().fold(0.0, f64::max);
            rows.push(Row {
                game: config.game.name,
                bottleneck_gbps: config.bottleneck_bps / 1e9,
                queue_packets: config.bottleneck_queue,
                max_bottleneck_ms: max_bottleneck,
                diff_p50_ms: stats.p50,
                diff_p95_ms: stats.p95,
                diff_max_ms: diff_max,
                control_mean_ms: control_means.iter().sum::<f64>() / reps as f64,
                control_sd_ms: control_sds.iter().sum::<f64>() / reps as f64,
                large_diffs_at_transitions_pct: if large == 0 {
                    100.0
                } else {
                    100.0 * at_transitions as f64 / large as f64
                },
                startup_ok,
            });
        }
    }

    // Paper sorts experiments by the worst network latency they created.
    rows.sort_by(|a, b| {
        a.max_bottleneck_ms
            .partial_cmp(&b.max_bottleneck_ms)
            .unwrap()
    });

    println!(
        "{:<18} {:>5} {:>6} | {:>12} | {:>8} {:>8} {:>8} | {:>14} | {:>6}",
        "game",
        "bw",
        "queue",
        "max bneck ms",
        "diff p50",
        "diff p95",
        "diff max",
        "control (m±sd)",
        "@trans"
    );
    for r in &rows {
        println!(
            "{:<18} {:>4.1}G {:>6} | {:>12.1} | {:>8.2} {:>8.2} {:>8.1} | {:>8.1}±{:<4.1} | {:>5.0}%",
            r.game,
            r.bottleneck_gbps,
            r.queue_packets,
            r.max_bottleneck_ms,
            r.diff_p50_ms,
            r.diff_p95_ms,
            r.diff_max_ms,
            r.control_mean_ms,
            r.control_sd_ms,
            r.large_diffs_at_transitions_pct,
        );
    }

    let worst_p95 = rows.iter().map(|r| r.diff_p95_ms).fold(0.0, f64::max);
    println!();
    println!("worst per-experiment p95 difference: {worst_p95:.2} ms (paper: ≤ 8.5 ms)");
    let genshin_control = rows
        .iter()
        .filter(|r| r.game.starts_with("Genshin"))
        .map(|r| r.control_mean_ms)
        .sum::<f64>()
        / 8.0;
    let lol_control = rows
        .iter()
        .filter(|r| r.game.starts_with("League"))
        .map(|r| r.control_mean_ms)
        .sum::<f64>()
        / 8.0;
    println!("Genshin Impact control latency ≈ {genshin_control:.1} ms (paper: 15 ± 1.5 ms)");
    println!("League of Legends control latency ≈ {lol_control:.1} ms (paper: 37 ± 1.4 ms)");

    write_json("fig04_gaming_vs_network", &rows);
}
