//! Property tests for the mergeable quantile sketch behind the serving
//! layer (`tero_stats::QuantileSketch`).
//!
//! The serving determinism contract rests on three sketch properties:
//! merging is commutative and associative *in effect* (identical wire
//! bytes, whatever the merge tree — this is what makes the committed
//! sketches worker-count- and window-schedule-invariant), served
//! quantiles sit within the documented relative-error bound of the exact
//! nearest-rank values, and empty distributions answer `None` rather
//! than inventing a number.

use proptest::prelude::*;
use tero::stats::{percentile_nearest_rank, QuantileSketch, DEFAULT_ALPHA};

fn sketch(values: &[f64]) -> QuantileSketch {
    QuantileSketch::from_values(values)
}

/// Integer-millisecond latencies as f64 — the sketch's real input
/// domain: the pipeline inserts OCR-extracted integer values, whose f64
/// sums are exact (< 2^53), so byte-identity holds for the *wire* bytes
/// including the running sum. Arbitrary reals would break the last ulp
/// of the sum under re-ordered addition; the bucket counts never move.
fn ms(values: &[u16]) -> Vec<f64> {
    values.iter().map(|&v| f64::from(v)).collect()
}

proptest! {
    // ---- merge algebra ----------------------------------------------------

    #[test]
    fn merge_is_commutative_in_effect(
        a in prop::collection::vec(1u16..800, 0..120),
        b in prop::collection::vec(1u16..800, 0..120),
    ) {
        let (a, b) = (ms(&a), ms(&b));
        let mut ab = sketch(&a);
        ab.merge(&sketch(&b));
        let mut ba = sketch(&b);
        ba.merge(&sketch(&a));
        prop_assert_eq!(ab.encode(), ba.encode(), "merge order changed the wire bytes");
    }

    #[test]
    fn merge_is_associative_in_effect(
        a in prop::collection::vec(1u16..800, 0..80),
        b in prop::collection::vec(1u16..800, 0..80),
        c in prop::collection::vec(1u16..800, 0..80),
    ) {
        let (a, b, c) = (ms(&a), ms(&b), ms(&c));
        // (a ∪ b) ∪ c
        let mut left = sketch(&a);
        left.merge(&sketch(&b));
        left.merge(&sketch(&c));
        // a ∪ (b ∪ c)
        let mut bc = sketch(&b);
        bc.merge(&sketch(&c));
        let mut right = sketch(&a);
        right.merge(&bc);
        prop_assert_eq!(left.encode(), right.encode(), "merge tree changed the wire bytes");

        // And both equal inserting everything into one sketch — a merge
        // of partial views is indistinguishable from the unpartitioned
        // stream, the property window commits rely on.
        let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left.encode(), sketch(&all).encode());
    }

    #[test]
    fn insert_order_is_irrelevant(
        values in prop::collection::vec(1u16..800, 0..150),
    ) {
        let values = ms(&values);
        let forward = sketch(&values);
        let reversed: Vec<f64> = values.iter().rev().copied().collect();
        prop_assert_eq!(forward.encode(), sketch(&reversed).encode());
        // Round-trip stability: decode(encode(s)) re-encodes identically.
        let decoded = QuantileSketch::decode(&forward.encode()).unwrap();
        prop_assert_eq!(forward.encode(), decoded.encode());
    }

    // ---- accuracy ---------------------------------------------------------

    #[test]
    fn quantiles_within_documented_bound(
        values in prop::collection::vec(0.5f64..800.0, 1..200),
        p in 0.0f64..100.0,
    ) {
        let s = sketch(&values);
        let served = s.quantile(p).unwrap();
        let exact = percentile_nearest_rank(&values, p).unwrap();
        let bound = s.relative_error_bound();
        prop_assert!(
            (served - exact).abs() <= bound * exact + 1e-9,
            "p{}: served {} vs exact {} exceeds relative bound {}",
            p, served, exact, bound
        );
        prop_assert!((DEFAULT_ALPHA - 0.01).abs() < 1e-12, "bound documented for α = 0.01");
    }

    #[test]
    fn cdf_is_a_distribution_function(
        values in prop::collection::vec(0.5f64..800.0, 1..150),
        x in 0.0f64..900.0,
        y in 0.0f64..900.0,
    ) {
        let s = sketch(&values);
        let fx = s.cdf(x).unwrap();
        let fy = s.cdf(y).unwrap();
        prop_assert!((0.0..=1.0).contains(&fx));
        if x <= y {
            prop_assert!(fx <= fy + 1e-12, "CDF must be monotone");
        }
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((s.cdf(max + 1.0).unwrap() - 1.0).abs() < 1e-12, "everything below max+1");
    }

    // ---- emptiness --------------------------------------------------------

    #[test]
    fn empty_sketches_answer_none(p in 0.0f64..100.0) {
        let empty = QuantileSketch::new(DEFAULT_ALPHA);
        prop_assert!(empty.is_empty());
        prop_assert_eq!(empty.quantile(p), None);
        prop_assert_eq!(empty.cdf(p), None);
        prop_assert_eq!(empty.boxplot(), None);
        prop_assert_eq!(empty.wasserstein(&empty), None);
        prop_assert!(empty.histogram().is_empty());
        // Merging empties is the identity on the wire.
        let mut merged = QuantileSketch::new(DEFAULT_ALPHA);
        merged.merge(&empty);
        prop_assert_eq!(merged.encode(), empty.encode());
    }
}
