//! # tero-trace — structured tracing + sample provenance for the Tero pipeline
//!
//! `tero-obs` counters say *how many* thumbnails died at each funnel stage;
//! this crate says *which ones* and *why*, and shows *when* each pipeline
//! stage ran. It has three pillars:
//!
//! 1. **Spans & events** ([`Tracer`], [`SpanGuard`], [`Level`]): hierarchical
//!    spans carrying both simulated time ([`tero_types::SimTime`]) and
//!    optional wall time, plus a leveled event journal. Span ids and record
//!    order are fully deterministic (see [`span`] for the contract), so
//!    traces are byte-identical across `worker_threads ∈ {1, 2, 8}`. Spans
//!    propagate across `tero_pool::par_map` workers via a stamped context
//!    ([`StageCtx`] / [`TaskCtx`]), and a bounded ring-buffer *flight
//!    recorder* mode retains only the last N spans/events for post-mortem
//!    dumps after a chaos fault.
//! 2. **Exporters** ([`export`]): Chrome trace-event JSON (loadable in
//!    Perfetto / `chrome://tracing`, with pool lanes as tids) and an
//!    aligned-text timeline.
//! 3. **Sample provenance** ([`Ledger`], [`DropReason`]): every sample
//!    entering the pipeline gets a lineage record; each drop appends a
//!    typed reason, and [`Ledger::reconcile`] proves the ledger totals
//!    equal the `pipeline.funnel.*` counters in a [`tero_obs::Registry`].
//!
//! The crate is built only on the workspace's vendored shims
//! (`parking_lot`), with no unsafe code and no external dependencies.
//!
//! ```
//! use tero_trace::{Level, Tracer};
//!
//! let tracer = Tracer::new();
//! tracer.set_enabled(true);
//! let run = tracer.span("pipeline.run");
//! let poll = run.child("download.poll");
//! poll.event(Level::Info, "42 streams live");
//! drop(poll);
//! drop(run);
//! let json = tracer.chrome_trace();
//! assert!(json.contains("\"pipeline.run\""));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod ledger;
pub mod span;

pub use export::merged_chrome_trace;
pub use ledger::{DropReason, Ledger, LedgerSummary, ReconcileError, SampleKey, SampleState};
pub use span::{
    EventRecord, Level, SpanGuard, SpanRecord, StageCtx, TaskCtx, TaskTrace, TraceContext, Tracer,
    VIRTUAL_LANES,
};
