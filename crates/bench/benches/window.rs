//! Windowed-execution overhead: what slicing a run into N windows costs
//! over the single-shot path. Each window adds a store commit (cursor +
//! counter + ledger-delta writes into the `engine:*` keys) and an extra
//! ingest/extract stage invocation; the report is byte-identical either
//! way, so the delta between these benches *is* the windowing overhead.
//! The numbers feed docs/PERFORMANCE.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tero_core::pipeline::{ExtractionMode, Tero, WindowOutcome};
use tero_types::{SimDuration, SimTime};
use tero_world::{World, WorldConfig};

fn build_world() -> World {
    World::build(WorldConfig {
        seed: 7,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    })
}

fn build_tero() -> Tero {
    Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: 2,
        ..Tero::default()
    }
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("window");
    group.sample_size(10);

    // Baseline: the legacy single-shot path (one full-horizon window).
    // World construction is included in every variant, so it cancels.
    group.bench_function("single_shot", |b| {
        b.iter(|| {
            let mut world = build_world();
            let tero = build_tero();
            black_box(tero.run(&mut world).thumbnails)
        })
    });

    for windows in [4u64, 16, 64] {
        group.bench_function(BenchmarkId::new("windows", windows), |b| {
            b.iter(|| {
                let mut world = build_world();
                let tero = build_tero();
                let horizon = world.horizon;
                let step = SimDuration::from_micros(horizon.as_micros().div_ceil(windows).max(1));
                let mut to = SimTime::EPOCH + step;
                let report = loop {
                    match tero.run_window(&mut world, SimTime::EPOCH, to) {
                        WindowOutcome::Complete(report) => break report,
                        WindowOutcome::Advanced => to += step,
                        WindowOutcome::Killed => unreachable!("no chaos installed"),
                    }
                };
                black_box(report.thumbnails)
            })
        });
    }

    // The commit in isolation: after one real quarter-horizon window, 16
    // one-second slivers each advance the cursor past (almost) no new
    // data but still pay the full per-window cost — an ingest invocation,
    // an extract invocation over an empty drain, and two store commits
    // (cursor + counters + ledger delta + markers).
    group.bench_function("near_empty_window_marginal_x16", |b| {
        b.iter(|| {
            let mut world = build_world();
            let tero = build_tero();
            let horizon = world.horizon;
            let quarter = SimDuration::from_micros(horizon.as_micros() / 4);
            let mut to = SimTime::EPOCH + quarter;
            assert!(matches!(
                tero.run_window(&mut world, SimTime::EPOCH, to),
                WindowOutcome::Advanced
            ));
            for _ in 0..16 {
                to += SimDuration::from_secs(1);
                match tero.run_window(&mut world, SimTime::EPOCH, to) {
                    WindowOutcome::Advanced => {}
                    _ => unreachable!("bound is below the horizon"),
                }
            }
            black_box(tero.engine_snapshot().is_some())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_window
}
criterion_main!(benches);
