//! The Tero orchestrator: download → image-processing → location →
//! data-analysis, decomposed into the staged execution engine of
//! [`crate::engine`] and [`crate::stages`] (App. B's architecture), wired
//! through the stores of `tero-store` and run against a `tero-world`
//! platform.
//!
//! [`Tero::run`] processes the whole horizon as one window;
//! [`Tero::run_window`] drives the same engine incrementally, one time
//! slice at a time, committing resumable state into the store after every
//! per-window stage. Both produce byte-identical reports, funnel counters
//! and ledger books — at any window schedule and any worker count, and
//! across a chaos kill/resume (see `tests/determinism.rs`).
//!
//! The three hot stages — thumbnail extraction, per-`{streamer, game}`
//! cleaning/changepoint analysis, and per-group aggregation — fan out over
//! a [`tero_pool::Pool`] sized by [`Tero::worker_threads`]. Each parallel
//! stage is a pure map whose results are merged back *in input order*, so
//! the report (and every funnel counter) is byte-identical at any worker
//! count; `worker_threads == 1` runs the exact legacy sequential path.

use crate::analysis::anomaly::AnomalyReport;
use crate::analysis::clusters::{ClassifiedStreamer, EndPointChange, LatencyCluster};
use crate::analysis::distributions::LocationDistribution;
use crate::analysis::segments::StreamSeries;
use crate::analysis::shared::SharedAnomaly;
use crate::behavior::BehaviorStream;
use crate::download::DownloadStats;
use crate::engine::{Engine, StoreSnapshot};
use crate::location::LocationSource;
use crate::serving::{ServingError, DIST_SKETCH_PREFIX};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, PoisonError};
use tero_obs::{CounterHandle, GaugeHandle, HistogramHandle, Registry, Snapshot, StageMetrics};
use tero_store::{KvStore, ObjectStore};
use tero_trace::{DropReason, Tracer};
use tero_types::{AnonId, GameId, Location, ShardSpec, SimDuration, SimTime, TeroParams};
use tero_world::games::match_length_mins;
use tero_world::World;

/// How thumbnails are turned into measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionMode {
    /// Render every thumbnail and run the full three-engine OCR pipeline —
    /// the honest path; used for all accuracy evaluations.
    FullOcr,
    /// Skip rendering: derive the extraction outcome mechanically from the
    /// scene's ground truth using the *same failure mechanisms* the OCR
    /// path exhibits (light fonts miss; occlusions drop leading digits;
    /// clocks read as plausible wrong values; mislabeled streams read
    /// nothing), at rates matched to the measured OCR behaviour. Used only
    /// to scale the analysis-heavy regenerators (Figs 9–16, Table 5);
    /// see DESIGN.md.
    Calibrated,
}

/// The Tero system.
pub struct Tero {
    /// Table 1 parameters.
    pub params: TeroParams,
    /// Anonymisation salt (§7's consistent hashing).
    pub salt: u64,
    /// Extraction mode.
    pub mode: ExtractionMode,
    /// Minimum streamers per `{location, game}` before a distribution is
    /// published (the paper uses 50; tests use less).
    pub min_streamers: usize,
    /// §3.1.2's suggested-but-not-taken step: reject measurements that
    /// fall outside every latency cluster of their `{location, game}`,
    /// which screens out mislocated streamers (the paper leaves this to
    /// the data-set's users; we implement it as an opt-in).
    pub reject_outside_clusters: bool,
    /// Simulated-API budget of the incremental locate stage, in calls
    /// per window (a lookup costs up to five: the first call plus four
    /// retries). Streamers whose lookup does not fit carry over to the
    /// next window's queue; the horizon window ignores the budget and
    /// drains the queue, so the report is identical for every value.
    /// `None` (the default) is unlimited — every newly-seen streamer is
    /// located in the window that first sees it.
    pub locate_budget: Option<u64>,
    /// The metric registry every stage reports into. Counters are always
    /// on; per-operation timing histograms only populate after
    /// `obs.set_timing(true)`.
    pub obs: Registry,
    /// Worker threads for the parallel stages (extraction, per-stream
    /// analysis, per-group aggregation). Defaults to the machine's
    /// available parallelism; `1` runs the exact sequential legacy path.
    /// The report is identical for every value — see `tests/determinism.rs`.
    pub worker_threads: usize,
    /// The structured tracer (`tero-trace`). Span/event recording is off
    /// by default — enable with `trace.set_enabled(true)` — but the
    /// sample-provenance ledger underneath it is always on, so
    /// [`tero_trace::Ledger::reconcile`] can audit any run. Trace output
    /// is deterministic: identical for every `worker_threads` value.
    pub trace: Tracer,
    /// Every pipeline metric handle, resolved once at construction
    /// against [`Tero::obs`] and reused across windows.
    pub metrics: PipelineMetrics,
    /// The engine slot behind [`Tero::run_window`]: holds the staged
    /// engine between windows, or a [`StoreSnapshot`] scheduled for
    /// restore. [`Tero::run`] resets it and drives one full-horizon
    /// window.
    pub engine: EngineCell,
    /// Pre-built store backends for the engine. `None` (the default)
    /// gives each run private in-process stores; a sharded deployment
    /// injects facades backed by a `tero-net` client here, so every
    /// engine read and write crosses the simulated store network.
    pub stores: Option<(KvStore, ObjectStore)>,
    /// Restrict this instance to its shard of the streamer population:
    /// the extract stage keeps only thumbnail tasks whose anonymised
    /// streamer id satisfies [`ShardSpec::owns`]. `None` (the default)
    /// processes everything. Used by [`crate::sharded`], which runs one
    /// engine per shard and merges their state at the horizon.
    pub shard: Option<ShardSpec>,
}

impl Default for Tero {
    fn default() -> Self {
        let obs = Registry::new();
        let metrics = PipelineMetrics::new(&obs);
        Tero {
            params: TeroParams::default(),
            salt: 0x7e60,
            mode: ExtractionMode::FullOcr,
            min_streamers: 5,
            reject_outside_clusters: false,
            locate_budget: None,
            obs,
            worker_threads: tero_pool::default_workers(),
            trace: Tracer::new(),
            metrics,
            engine: EngineCell::default(),
            stores: None,
            shard: None,
        }
    }
}

/// Every counter and histogram handle the pipeline bumps, resolved (and
/// eagerly registered, so the catalogue is complete even on clean runs)
/// once per registry instead of 30+ times at the top of every run.
#[derive(Clone)]
pub struct PipelineMetrics {
    registry: Registry,
    pub(crate) run_us: HistogramHandle,
    pub(crate) thumbnails: CounterHandle,
    pub(crate) extracted: CounterHandle,
    pub(crate) no_measurement: CounterHandle,
    pub(crate) images_missing: CounterHandle,
    pub(crate) streams_stitched: CounterHandle,
    pub(crate) streamers_located: CounterHandle,
    pub(crate) segments_built: CounterHandle,
    pub(crate) glitches_corrected: CounterHandle,
    pub(crate) glitches_discarded: CounterHandle,
    pub(crate) spikes_detected: CounterHandle,
    pub(crate) points_discarded: CounterHandle,
    pub(crate) distributions_published: CounterHandle,
    pub(crate) shared_anomalies: CounterHandle,
    pub(crate) profile_retries: CounterHandle,
    pub(crate) stage_extract_us: HistogramHandle,
    pub(crate) stage_locate_us: HistogramHandle,
    pub(crate) stage_analyze_us: HistogramHandle,
    pub(crate) stage_aggregate_us: HistogramHandle,
    pub(crate) stage_behavior_us: HistogramHandle,
    /// The provenance funnel: `ingested` counts every thumbnail task,
    /// `published` the samples that reached a distribution, and one
    /// counter per typed drop reason accounts for the rest. Every one is
    /// provably equal to the ledger's books — see
    /// [`tero_trace::Ledger::reconcile`].
    pub(crate) funnel_ingested: CounterHandle,
    pub(crate) funnel_published: CounterHandle,
    pub(crate) funnel_dropped: Vec<CounterHandle>,
    pub(crate) window_runs: CounterHandle,
    pub(crate) window_killed: CounterHandle,
    pub(crate) window_resumed: CounterHandle,
    pub(crate) window_commits: CounterHandle,
    /// Serving-layer sketch accounting: values folded into the extract
    /// stage's raw sketches, sketch encodings committed to the store
    /// (raw at window commits, distributions at publish), and the total
    /// encoded bytes written.
    pub(crate) sketch_inserts: CounterHandle,
    pub(crate) sketch_commits: CounterHandle,
    pub(crate) sketch_bytes: CounterHandle,
    /// Online-cleaning accounting (`clean.*`): per-window work done by
    /// the incremental clean stage. All schedule-dependent — a finer
    /// window schedule feeds/seals/refreshes in more, smaller steps —
    /// and therefore excluded from the determinism tests'
    /// schedule-invariant counter set (see ARCHITECTURE.md).
    pub(crate) clean_samples_in: CounterHandle,
    pub(crate) clean_series_dirty: CounterHandle,
    pub(crate) clean_segments_sealed: CounterHandle,
    pub(crate) clean_views: CounterHandle,
    pub(crate) clean_dists_refreshed: CounterHandle,
    pub(crate) clean_provisional_locations: CounterHandle,
    /// Canonical-vs-provisional split of the live serving view: how
    /// many `engine:serve:dist:*` keys currently carry each provenance
    /// marker. Levels, not totals — set after every serving refresh and
    /// by the publish finalizer (which pins provisional to zero).
    pub(crate) clean_dists_canonical: GaugeHandle,
    pub(crate) clean_dists_provisional: GaugeHandle,
    /// Budgeted-locate accounting (`locate.budget.*`, `locate.queue.*`,
    /// `location.api_calls`): simulated API calls spent, lookups pushed
    /// past their window by the budget, the carry-over queue's depth
    /// after each window, and the running API-call total. The counters
    /// are schedule-dependent (a finer schedule defers differently) and
    /// excluded from the determinism tests' schedule-invariant set.
    pub(crate) locate_budget_spent: CounterHandle,
    pub(crate) locate_budget_deferred: CounterHandle,
    pub(crate) locate_queue_depth: GaugeHandle,
    pub(crate) locate_api_calls: GaugeHandle,
    /// Incremental-aggregation accounting (`agg.dirty_groups`): how many
    /// `{location, game}` groups each aggregation pass re-merged because
    /// membership moved or a member gained sealed data. Schedule-
    /// dependent for the same reason as `clean.*`.
    pub(crate) agg_dirty_groups: CounterHandle,
    /// Streaming changepoint accounting (`stats.changepoint.*`): samples
    /// pushed into the per-series online PELT detectors, and level shifts
    /// currently detected (the estimate is revised as data arrives, so
    /// the family is schedule-dependent too).
    pub(crate) changepoint_points: CounterHandle,
    pub(crate) changepoint_shifts: CounterHandle,
    st_ingest: StageMetrics,
    st_extract: StageMetrics,
    st_locate: StageMetrics,
    st_clean: StageMetrics,
    st_publish: StageMetrics,
}

impl PipelineMetrics {
    /// Resolve every pipeline handle against `registry`.
    pub fn new(registry: &Registry) -> PipelineMetrics {
        PipelineMetrics {
            run_us: registry.histogram("pipeline.run_us"),
            thumbnails: registry.counter("pipeline.thumbnails"),
            extracted: registry.counter("pipeline.extracted"),
            no_measurement: registry.counter("pipeline.no_measurement"),
            images_missing: registry.counter("pipeline.images_missing"),
            streams_stitched: registry.counter("pipeline.streams_stitched"),
            streamers_located: registry.counter("pipeline.streamers_located"),
            segments_built: registry.counter("analysis.segments_built"),
            glitches_corrected: registry.counter("analysis.glitches_corrected"),
            glitches_discarded: registry.counter("analysis.glitches_discarded"),
            spikes_detected: registry.counter("analysis.spikes_detected"),
            points_discarded: registry.counter("analysis.points_discarded"),
            distributions_published: registry.counter("analysis.distributions_published"),
            shared_anomalies: registry.counter("analysis.shared_anomalies"),
            profile_retries: registry.counter("pipeline.profile_retries"),
            stage_extract_us: registry.histogram("pipeline.stage.extract_us"),
            stage_locate_us: registry.histogram("pipeline.stage.locate_us"),
            stage_analyze_us: registry.histogram("pipeline.stage.analyze_us"),
            stage_aggregate_us: registry.histogram("pipeline.stage.aggregate_us"),
            stage_behavior_us: registry.histogram("pipeline.stage.behavior_us"),
            funnel_ingested: registry.counter("pipeline.funnel.ingested"),
            funnel_published: registry.counter("pipeline.funnel.published"),
            funnel_dropped: DropReason::ALL
                .iter()
                .map(|r| registry.counter(r.metric_name()))
                .collect(),
            window_runs: registry.counter("pipeline.window.runs"),
            window_killed: registry.counter("pipeline.window.killed"),
            window_resumed: registry.counter("pipeline.window.resumed"),
            window_commits: registry.counter("pipeline.window.commits"),
            sketch_inserts: registry.counter("stats.sketch.inserts"),
            sketch_commits: registry.counter("stats.sketch.commits"),
            sketch_bytes: registry.counter("stats.sketch.bytes"),
            clean_samples_in: registry.counter("clean.samples_in"),
            clean_series_dirty: registry.counter("clean.series_dirty"),
            clean_segments_sealed: registry.counter("clean.segments_sealed"),
            clean_views: registry.counter("clean.views_refreshed"),
            clean_dists_refreshed: registry.counter("clean.dists_refreshed"),
            clean_provisional_locations: registry.counter("clean.provisional_locations"),
            clean_dists_canonical: registry.gauge("clean.dists_canonical"),
            clean_dists_provisional: registry.gauge("clean.dists_provisional"),
            locate_budget_spent: registry.counter("locate.budget.spent"),
            locate_budget_deferred: registry.counter("locate.budget.deferred"),
            locate_queue_depth: registry.gauge("locate.queue.depth"),
            locate_api_calls: registry.gauge("location.api_calls"),
            agg_dirty_groups: registry.counter("agg.dirty_groups"),
            changepoint_points: registry.counter("stats.changepoint.points"),
            changepoint_shifts: registry.counter("stats.changepoint.shifts"),
            st_ingest: StageMetrics::new(registry, "ingest"),
            st_extract: StageMetrics::new(registry, "extract"),
            st_locate: StageMetrics::new(registry, "locate"),
            st_clean: StageMetrics::new(registry, "clean"),
            st_publish: StageMetrics::new(registry, "publish"),
            registry: registry.clone(),
        }
    }

    /// The `stage.<name>.*` bundle for one of the five engine stages.
    pub(crate) fn stage(&self, name: &str) -> &StageMetrics {
        match name {
            "ingest" => &self.st_ingest,
            "extract" => &self.st_extract,
            "locate" => &self.st_locate,
            "clean" => &self.st_clean,
            "publish" => &self.st_publish,
            other => panic!("unknown stage {other:?}"),
        }
    }

    /// The registry these handles record into.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Whether these handles record into `registry`.
    pub(crate) fn same_registry(&self, registry: &Registry) -> bool {
        self.registry.same_registry(registry)
    }
}

impl std::fmt::Debug for PipelineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineMetrics").finish_non_exhaustive()
    }
}

/// What one [`Tero::run_window`] call did.
// The report-carrying variant is built once per completed run and moved
// straight to the caller; the size gap never sits in a hot collection.
#[allow(clippy::large_enum_variant)]
pub enum WindowOutcome {
    /// The window's ingest + extract work completed and was committed;
    /// the horizon is not yet reached — call again with a later `to`.
    Advanced,
    /// A scheduled [`tero_chaos::EngineKill`] fired mid-window, after the
    /// ingest commit. The committed state is intact: calling
    /// [`Tero::run_window`] again resumes from it (in-process), or
    /// [`Tero::engine_snapshot`] / [`Tero::restore_engine`] carry it to a
    /// fresh `Tero`.
    Killed,
    /// The horizon was reached: the finalize stages ran and produced the
    /// report. The engine slot is cleared.
    Complete(TeroReport),
}

/// Interior-mutable slot holding the staged engine between
/// [`Tero::run_window`] calls (`run(&self)` keeps its historical shared
/// receiver, so the engine cannot live in a `&mut Tero` field).
#[derive(Default)]
pub struct EngineCell {
    slot: Mutex<EngineSlot>,
    /// The completed run's KV store, kept alive for the serving layer
    /// after the engine itself is dropped (see [`Tero::serving_store`]).
    served: Mutex<Option<KvStore>>,
}

#[derive(Default)]
enum EngineSlot {
    #[default]
    Idle,
    Restore(StoreSnapshot),
    Running(Box<Engine>),
}

impl EngineCell {
    fn lock(&self) -> std::sync::MutexGuard<'_, EngineSlot> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drop any in-flight engine or pending restore, and forget the
    /// previous run's serving store.
    pub fn reset(&self) {
        *self.lock() = EngineSlot::Idle;
        *self.served.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

impl std::fmt::Debug for EngineCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &*self.lock() {
            EngineSlot::Idle => "Idle",
            EngineSlot::Restore(_) => "Restore",
            EngineSlot::Running(_) => "Running",
        };
        f.debug_struct("EngineCell").field("slot", &state).finish()
    }
}

/// Everything one pipeline run produces.
pub struct TeroReport {
    /// Download-module statistics.
    pub download: DownloadStats,
    /// Thumbnails processed by image-processing.
    pub thumbnails: u64,
    /// Measurements extracted (primary values).
    pub extracted: u64,
    /// Streamers the location module located, with source.
    pub locations: HashMap<AnonId, (Location, LocationSource)>,
    /// Streamers seen (denominator of the 2.77 % figure).
    pub streamers_seen: usize,
    /// Stitched streams per `{streamer, game}`.
    pub streams: BTreeMap<(AnonId, GameId), Vec<StreamSeries>>,
    /// Anomaly reports per `{streamer, game}`.
    pub anomalies: BTreeMap<(AnonId, GameId), AnomalyReport>,
    /// Classified streamers per `{streamer, game}`.
    pub classified: BTreeMap<(AnonId, GameId), ClassifiedStreamer>,
    /// Per-`{region-key, game}` merged latency clusters.
    pub location_clusters: BTreeMap<(String, GameId), Vec<LatencyCluster>>,
    /// End-point changes per `{streamer, game}`.
    pub endpoint_changes: BTreeMap<(AnonId, GameId), Vec<EndPointChange>>,
    /// Published latency distributions.
    pub distributions: Vec<LocationDistribution>,
    /// Shared anomalies.
    pub shared_anomalies: Vec<SharedAnomaly>,
    /// Streams prepared for the §6 behaviour study.
    pub behavior_streams: Vec<BehaviorStream>,
}

impl TeroReport {
    /// Total clean measurements retained after anomaly filtering.
    pub fn retained_measurements(&self) -> usize {
        self.anomalies.values().map(|r| r.clean_count()).sum()
    }

    /// The distribution for a location (any granularity key) and game.
    pub fn distribution(&self, location: &Location, game: GameId) -> Option<&LocationDistribution> {
        self.distributions
            .iter()
            .find(|d| d.location == *location && d.game == game)
    }

    /// A canonical, deterministic textual rendering of every report
    /// field (unordered maps are sorted first): two reports are
    /// byte-identical exactly when their digests are equal. This is the
    /// comparator behind the sharded-deployment invariant — a merged
    /// sharded run under network chaos must digest identically to the
    /// fault-free single-process run (`tests/net_failover.rs`,
    /// `scripts/ci.sh`).
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let locations: BTreeMap<_, _> = self.locations.iter().collect();
        let _ = writeln!(out, "download: {:?}", self.download);
        let _ = writeln!(out, "thumbnails: {}", self.thumbnails);
        let _ = writeln!(out, "extracted: {}", self.extracted);
        let _ = writeln!(out, "locations: {locations:?}");
        let _ = writeln!(out, "streamers_seen: {}", self.streamers_seen);
        let _ = writeln!(out, "streams: {:?}", self.streams);
        let _ = writeln!(out, "anomalies: {:?}", self.anomalies);
        let _ = writeln!(out, "classified: {:?}", self.classified);
        let _ = writeln!(out, "location_clusters: {:?}", self.location_clusters);
        let _ = writeln!(out, "endpoint_changes: {:?}", self.endpoint_changes);
        let _ = writeln!(out, "distributions: {:?}", self.distributions);
        let _ = writeln!(out, "shared_anomalies: {:?}", self.shared_anomalies);
        let _ = writeln!(out, "behavior_streams: {:?}", self.behavior_streams);
        out
    }
}

impl Tero {
    /// A point-in-time snapshot of every metric recorded so far. Usually
    /// read after [`Tero::run`]; safe to call at any time.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.obs.snapshot()
    }

    /// The metric handles to use for a run: the pre-built
    /// [`Tero::metrics`] when they still point at [`Tero::obs`], or a
    /// fresh resolution when a caller swapped in a different registry via
    /// struct-update syntax.
    pub(crate) fn metrics_for_run(&self) -> PipelineMetrics {
        if self.metrics.same_registry(&self.obs) {
            self.metrics.clone()
        } else {
            PipelineMetrics::new(&self.obs)
        }
    }

    /// Run the full pipeline over a world's entire data-set, as one
    /// horizon-sized window through the staged engine.
    pub fn run(&self, world: &mut World) -> TeroReport {
        let metrics = self.metrics_for_run();
        let _run_timer = self.obs.stage_timer(&metrics.run_us);
        self.engine.reset();
        let horizon = world.horizon;
        // A scheduled engine kill returns `Killed` once; looping resumes
        // from the commit and completes — `run()` under chaos degrades to
        // kill-and-resume instead of dying.
        loop {
            if let WindowOutcome::Complete(report) = self.run_window(world, SimTime::EPOCH, horizon)
            {
                return report;
            }
        }
    }

    /// Process one window of the run: ingest then extract up to `to`
    /// (clamped to the world horizon), committing resumable state after
    /// each stage; when `to` reaches the horizon, run the finalize stages
    /// and return [`WindowOutcome::Complete`].
    ///
    /// The first call creates the engine (`from` sets the start of the
    /// download range; later calls ignore it); subsequent calls must use
    /// non-decreasing `to`. Driving the run as any sequence of windows
    /// produces a report byte-identical to [`Tero::run`].
    pub fn run_window(&self, world: &mut World, from: SimTime, to: SimTime) -> WindowOutcome {
        let mut slot = self.engine.lock();
        let mut engine = match std::mem::take(&mut *slot) {
            EngineSlot::Running(engine) => engine,
            EngineSlot::Idle => Box::new(Engine::new(self, world, from)),
            EngineSlot::Restore(snap) => Box::new(Engine::restore(self, world, &snap)),
        };
        let outcome = engine.run_window(self, world, to);
        if matches!(outcome, WindowOutcome::Complete(_)) {
            // The engine is dropped, but its KV store — holding the
            // committed serving sketches — stays alive for `tero-serve`.
            *self
                .engine
                .served
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(engine.kv_store().clone());
        } else {
            *slot = EngineSlot::Running(engine);
        }
        outcome
    }

    /// Like [`Tero::run_window`], but never finalizes: a window that
    /// reaches the horizon still runs ingest and extract (committing
    /// after each) and returns [`WindowOutcome::Advanced`], leaving the
    /// engine in place. The sharded orchestrator ([`crate::sharded`])
    /// drives every per-shard engine this way, then merges the committed
    /// per-shard state and finalizes the merged store exactly once.
    pub fn advance_window(&self, world: &mut World, from: SimTime, to: SimTime) -> WindowOutcome {
        let mut slot = self.engine.lock();
        let mut engine = match std::mem::take(&mut *slot) {
            EngineSlot::Running(engine) => engine,
            EngineSlot::Idle => Box::new(Engine::new(self, world, from)),
            EngineSlot::Restore(snap) => Box::new(Engine::restore(self, world, &snap)),
        };
        let outcome = engine.advance_window(self, world, to);
        *slot = EngineSlot::Running(engine);
        outcome
    }

    /// The serving store of the most recently completed run on this
    /// `Tero`: the KV store holding every committed serving-layer sketch
    /// (see [`crate::serving`]), ready to back a `tero-serve` query
    /// engine. `None` before the first completed run. While a windowed
    /// run is in flight, the previous run's store is still served — the
    /// handle swaps atomically when the new run completes.
    pub fn serving_store(&self) -> Option<KvStore> {
        self.engine
            .served
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Like [`Tero::serving_store`], but distinguishes *why* there is
    /// nothing to serve: [`ServingError::NoCompletedRun`] when no run
    /// has finalized on this `Tero`, and — the subtle case —
    /// [`ServingError::NoDistributions`] when a run completed but its
    /// publish stage wrote zero distribution sketches (every
    /// `{location, game}` group fell below [`Tero::min_streamers`],
    /// which small random worlds hit routinely). A plain
    /// [`Tero::serving_store`] returns `Some(store)` in that second
    /// case, and a query engine over it answers every distribution
    /// query with an empty result — prefer this method anywhere an
    /// empty serving view should be an error rather than a shrug.
    pub fn try_serving_store(&self) -> Result<KvStore, ServingError> {
        let kv = self.serving_store().ok_or(ServingError::NoCompletedRun)?;
        if kv.keys_with_prefix(DIST_SKETCH_PREFIX).is_empty() {
            return Err(ServingError::NoDistributions);
        }
        Ok(kv)
    }

    /// A portable snapshot of the in-flight engine's stores (committed
    /// cursors, queues, ledger, counters, blobs), or `None` when no
    /// windowed run is in flight. Restore it into a fresh `Tero` with
    /// [`Tero::restore_engine`].
    pub fn engine_snapshot(&self) -> Option<StoreSnapshot> {
        match &*self.engine.lock() {
            EngineSlot::Running(engine) => Some(engine.snapshot()),
            _ => None,
        }
    }

    /// Schedule `snapshot` to be restored on the next
    /// [`Tero::run_window`] call, resuming a killed run in this `Tero`.
    pub fn restore_engine(&self, snapshot: StoreSnapshot) {
        *self.engine.lock() = EngineSlot::Restore(snapshot);
    }
}

/// The minimum-play constraint used by the behaviour study for one game:
/// §6's stream-preparation step 2 drops streams shorter than the game's
/// typical match length (the `Min. play` column of Table 4), because a
/// server or game change cannot plausibly occur before one full match.
pub fn min_play_for(game: GameId) -> SimDuration {
    SimDuration::from_mins(match_length_mins(game))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::clean::STREAM_GAP;
    use tero_world::WorldConfig;

    #[test]
    fn stream_gap_splits_series() {
        // Exercise the stream-splitting rule end to end: gaps within a
        // stream stay below the threshold; gaps between streams exceed it.
        let mut world = World::build(WorldConfig {
            seed: 3131,
            n_streamers: 15,
            days: 3,
            ..WorldConfig::default()
        });
        let tero = Tero {
            mode: ExtractionMode::Calibrated,
            ..Tero::default()
        };
        let report = tero.run(&mut world);
        for series in report.streams.values() {
            for stream in series {
                for w in stream.samples.windows(2) {
                    assert!(w[1].at.since(w[0].at) <= STREAM_GAP);
                }
            }
            for pair in series.windows(2) {
                let end = pair[0].samples.last().unwrap().at;
                let start = pair[1].samples.first().unwrap().at;
                assert!(start.since(end) > STREAM_GAP, "adjacent streams not split");
            }
        }
    }

    fn run(mode: ExtractionMode, seed: u64, n: usize, days: u64) -> (TeroReport, World) {
        let mut world = World::build(WorldConfig {
            seed,
            n_streamers: n,
            days,
            ..WorldConfig::default()
        });
        let tero = Tero {
            mode,
            min_streamers: 2,
            ..Tero::default()
        };
        let report = tero.run(&mut world);
        (report, world)
    }

    #[test]
    fn full_ocr_pipeline_end_to_end() {
        let (report, world) = run(ExtractionMode::FullOcr, 42, 30, 3);
        assert!(report.thumbnails > 100, "thumbnails {}", report.thumbnails);
        // Extraction rate in the right regime (the paper misses ~28 %).
        let rate = report.extracted as f64 / report.thumbnails as f64;
        assert!((0.4..0.98).contains(&rate), "extraction rate {rate}");
        // Some streamers located (not all — most have no usable footprint).
        assert!(!report.locations.is_empty());
        assert!(report.locations.len() < report.streamers_seen);
        // Streams and analysis products exist.
        assert!(!report.streams.is_empty());
        assert!(!report.anomalies.is_empty());
        assert!(report.retained_measurements() > 0);
        let _ = world;
    }

    #[test]
    fn calibrated_mode_matches_full_ocr_shape() {
        let (full, _) = run(ExtractionMode::FullOcr, 7, 25, 3);
        let (cal, _) = run(ExtractionMode::Calibrated, 7, 25, 3);
        assert_eq!(full.thumbnails, cal.thumbnails, "same downloads");
        let rate_full = full.extracted as f64 / full.thumbnails as f64;
        let rate_cal = cal.extracted as f64 / cal.thumbnails as f64;
        assert!(
            (rate_full - rate_cal).abs() < 0.15,
            "extraction rates {rate_full} vs {rate_cal}"
        );
    }

    #[test]
    fn metrics_snapshot_mirrors_report() {
        let mut world = World::build(WorldConfig {
            seed: 51,
            n_streamers: 25,
            days: 3,
            ..WorldConfig::default()
        });
        let tero = Tero {
            mode: ExtractionMode::Calibrated,
            min_streamers: 2,
            ..Tero::default()
        };
        let report = tero.run(&mut world);
        let snap = tero.metrics_snapshot();
        assert_eq!(snap.counter("pipeline.thumbnails"), Some(report.thumbnails));
        assert_eq!(snap.counter("pipeline.extracted"), Some(report.extracted));
        assert_eq!(
            snap.counter("pipeline.no_measurement"),
            Some(report.thumbnails - report.extracted),
            "calibrated mode never skips an image, so misses + hits = thumbnails"
        );
        let stitched: u64 = report.streams.values().map(|s| s.len() as u64).sum();
        assert_eq!(snap.counter("pipeline.streams_stitched"), Some(stitched));
        assert_eq!(
            snap.counter("pipeline.streamers_located"),
            Some(report.locations.len() as u64)
        );
        let segments: u64 = report
            .anomalies
            .values()
            .map(|r| r.segments.len() as u64)
            .sum();
        assert_eq!(snap.counter("analysis.segments_built"), Some(segments));
        assert_eq!(
            snap.counter("analysis.distributions_published"),
            Some(report.distributions.len() as u64)
        );
        // Download metrics arrive through the same registry.
        assert_eq!(
            snap.counter("download.get_hits"),
            Some(report.download.downloaded)
        );
        // Store counters are live: the run reads and writes the kv store.
        assert!(snap.counter("store.kv.writes").unwrap() > 0);
        assert!(snap.counter("store.object.writes").unwrap() > 0);
        // The staged engine's own accounting: one window, one commit per
        // per-window stage, no kills, no resumes.
        assert_eq!(snap.counter("pipeline.window.runs"), Some(1));
        assert_eq!(snap.counter("pipeline.window.commits"), Some(2));
        assert_eq!(snap.counter("pipeline.window.killed"), Some(0));
        assert_eq!(snap.counter("pipeline.window.resumed"), Some(0));
        // Per-stage record flow matches the report.
        assert_eq!(snap.counter("stage.ingest.runs"), Some(1));
        assert_eq!(
            snap.counter("stage.extract.records_in"),
            Some(report.thumbnails)
        );
        assert_eq!(
            snap.counter("stage.extract.records_out"),
            Some(report.extracted)
        );
        assert_eq!(
            snap.counter("stage.clean.records_out"),
            Some(report.anomalies.len() as u64)
        );
        let sample_total: u64 = report
            .streams
            .values()
            .flat_map(|series| series.iter())
            .map(|s| s.samples.len() as u64)
            .sum();
        assert_eq!(snap.counter("clean.samples_in"), Some(sample_total));
        assert_eq!(snap.counter("stats.changepoint.points"), Some(sample_total));
        assert_eq!(
            snap.counter("stage.locate.records_in"),
            Some(report.streamers_seen as u64)
        );
        assert_eq!(
            snap.counter("stage.publish.records_out"),
            Some(report.distributions.len() as u64)
        );
        // Timing is off by default: histograms registered but empty.
        let run_us = snap.histogram("pipeline.run_us").unwrap();
        assert_eq!(run_us.count, 0, "timing disabled by default");
    }

    #[test]
    fn ledger_reconciles_with_funnel_counters() {
        // The provenance pass must account for every ingested thumbnail
        // in both extraction modes, and the ledger's books must match the
        // pipeline.funnel.* counters exactly.
        for mode in [ExtractionMode::Calibrated, ExtractionMode::FullOcr] {
            let mut world = World::build(WorldConfig {
                seed: 77,
                n_streamers: 25,
                days: 2,
                ..WorldConfig::default()
            });
            let tero = Tero {
                mode,
                min_streamers: 2,
                ..Tero::default()
            };
            let report = tero.run(&mut world);
            let summary = tero
                .trace
                .ledger()
                .reconcile(&tero.obs)
                .expect("ledger reconciles");
            assert_eq!(summary.ingested, report.thumbnails, "{mode:?}");
            assert!(summary.ingested > 0, "{mode:?}");
            assert!(
                summary.published + summary.total_dropped() == summary.ingested,
                "{mode:?}: every sample resolved"
            );
        }
    }

    #[test]
    fn extraction_accuracy_against_ground_truth() {
        let (report, world) = run(ExtractionMode::FullOcr, 11, 25, 3);
        // Compare extracted values to the world's truth samples.
        let mut correct = 0u64;
        let mut wrong = 0u64;
        for ((anon, _game), series) in &report.streams {
            // Recover the username (test-only; the pipeline itself never
            // stores it).
            let Some(streamer) = world
                .streamers()
                .iter()
                .find(|s| AnonId::from_streamer(&s.id, 0x7e60) == *anon)
            else {
                continue;
            };
            for s in series.iter().flat_map(|s| &s.samples) {
                if let Some(truth) = world.twitch.truth_sample(streamer.id.as_str(), s.at) {
                    if truth.displayed_ms == s.latency_ms {
                        correct += 1;
                    } else {
                        wrong += 1;
                    }
                }
            }
        }
        let total = correct + wrong;
        assert!(total > 100);
        let err = wrong as f64 / total as f64;
        assert!(err < 0.15, "extraction error rate {err}");
    }
}
