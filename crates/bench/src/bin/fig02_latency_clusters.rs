//! Fig 2 / Fig 14 — examples of per-`{location, game}` latency clusters,
//! at the default merge threshold (Fig 2) and at ×0.5 / ×1.5 `LatGap`
//! (Fig 14's sensitivity to the merging criterion).
//!
//! Paper's shape: most locations have only one or two clusters heavier
//! than 10 %; a looser threshold merges clusters, a tighter one splits
//! them.
//!
//! Usage: `fig02_latency_clusters [--per 60] [--days 8]`

use serde::Serialize;
use tero_bench::{arg_usize, header, run_lol_world, write_json};
use tero_core::analysis::clusters::merge_location_clusters;
use tero_types::{GameId, Location};

#[derive(Serialize)]
struct ClusterRow {
    location: String,
    factor: f64,
    clusters: Vec<(u32, u32, f64)>, // (min_ms, max_ms, weight)
}

fn main() {
    let per = arg_usize("--per", 60);
    let days = arg_usize("--days", 8) as u64;

    // Fig 2's locations (city pins grouped at region level).
    let pins = vec![
        Location::city("France", "Ile-de-France", "Paris"),
        Location::city("Spain", "Catalunya", "Barcelona"),
        Location::city("Argentina", "Buenos Aires", "Buenos Aires City"),
        Location::city("Brazil", "Sao Paulo", "Sao Paulo"),
        Location::city("Canada", "Ontario", "Toronto"),
        Location::city("United States", "California", "Los Angeles"),
    ];
    header("Fig 2 / Fig 14: latency clusters per location");
    let (_world, report) = run_lol_world(&pins, per, days, 202);

    let labels = [
        ("Ile-de-France (FR)", "France/Ile-de-France"),
        ("Catalunya (ES)", "Spain/Catalunya"),
        ("Buenos Aires (AR)", "Argentina/Buenos Aires"),
        ("Sao Paulo (BR)", "Brazil/Sao Paulo"),
        ("Ontario (CA)", "Canada/Ontario"),
        ("California (US)", "United States/California"),
    ];

    let mut rows: Vec<ClusterRow> = Vec::new();
    for factor in [1.0f64, 0.5, 1.5] {
        let gap = (15.0 * factor).round() as u32;
        println!();
        println!(
            "merge threshold ×{factor} LatGap ({gap} ms){}",
            if factor == 1.0 {
                "  — Fig 2"
            } else {
                "  — Fig 14"
            }
        );
        for (label, key) in labels {
            // Re-merge from the classified streamers of the group.
            let members: Vec<_> = report
                .classified
                .iter()
                .filter(|((anon, game), _)| {
                    *game == GameId::LeagueOfLegends
                        && report
                            .locations
                            .get(anon)
                            .is_some_and(|(l, _)| l.to_region_level().key() == key)
                })
                .map(|(_, c)| c)
                .collect();
            let clusters = merge_location_clusters(&members, gap);
            let mut strip = String::new();
            let mut list = Vec::new();
            for c in &clusters {
                let mid = (c.min_ms + c.max_ms) / 2;
                let size = if c.weight > 0.75 {
                    'O'
                } else if c.weight > 0.5 {
                    'o'
                } else if c.weight > 0.25 {
                    '*'
                } else {
                    '.'
                };
                list.push((c.min_ms, c.max_ms, c.weight));
                // Place on a 0..80 ms strip.
                let pos = (mid.min(80) as usize * 60) / 80;
                while strip.len() <= pos {
                    strip.push(' ');
                }
                strip.replace_range(pos..pos + 1, &size.to_string());
            }
            println!("  {label:<22} |{strip:<61}| {} clusters", clusters.len());
            rows.push(ClusterRow {
                location: label.to_string(),
                factor,
                clusters: list,
            });
        }
    }
    println!();
    println!("legend: O >75%  o 50-75%  * 25-50%  . <25% of streamers; x-axis 0..80 ms");
    println!("(paper: most locations have one or two clusters heavier than 10 %)");

    write_json("fig02_fig14_latency_clusters", &rows);
}
