#!/usr/bin/env bash
# Tier-1 gate plus lint hygiene, in the order a failure is cheapest to
# surface. Run from anywhere; everything is offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --examples"
cargo build --release --examples

echo "==> cargo test"
cargo test -q

echo "==> trace determinism (trace_explore twice, byte-compare + JSON parse)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --quiet --release --example trace_explore -- 7 "$trace_dir/a.json" > "$trace_dir/a.out"
cargo run --quiet --release --example trace_explore -- 7 "$trace_dir/b.json" > "$trace_dir/b.out"
cmp "$trace_dir/a.json" "$trace_dir/b.json" \
  || { echo "FAIL: chrome trace differs across identical runs"; exit 1; }
cmp "$trace_dir/a.out" "$trace_dir/b.out" \
  || { echo "FAIL: trace_explore stdout differs across identical runs"; exit 1; }
# The JSON must round-trip through the workspace's own serde_json.
cargo test -q --test determinism chrome_trace_parses -- --exact >/dev/null \
  || { echo "FAIL: chrome trace is not valid JSON"; exit 1; }

echo "==> window determinism (trace_explore single-shot vs 4 windows, funnel compare)"
# The third argument drives the run through Tero::run_window in N equal
# slices and prints the sample funnel only; the funnel must be
# byte-identical between the legacy single-shot path and any schedule.
cargo run --quiet --release --example trace_explore -- 7 "$trace_dir/w1.json" 1 > "$trace_dir/w1.out"
cargo run --quiet --release --example trace_explore -- 7 "$trace_dir/w4.json" 4 > "$trace_dir/w4.out"
cmp "$trace_dir/w1.out" "$trace_dir/w4.out" \
  || { echo "FAIL: sample funnel differs between single-shot and windowed runs"; exit 1; }

echo "==> serving determinism (serve_explore twice + windowed, stdout byte-compare)"
# Everything serve_explore prints derives from the committed sketches
# (byte-identical across schedules by contract) and seed-pinned query
# streams; only stderr carries run-specific facts like the serving
# version. Stdout must be byte-identical run-to-run AND between the
# single-shot and a 4-window schedule.
cargo run --quiet --release --example serve_explore -- 7 > "$trace_dir/s1.out" 2>/dev/null
cargo run --quiet --release --example serve_explore -- 7 > "$trace_dir/s2.out" 2>/dev/null
cmp "$trace_dir/s1.out" "$trace_dir/s2.out" \
  || { echo "FAIL: serve_explore stdout differs across identical runs"; exit 1; }
cargo run --quiet --release --example serve_explore -- 7 4 > "$trace_dir/s4.out" 2>/dev/null
cmp "$trace_dir/s1.out" "$trace_dir/s4.out" \
  || { echo "FAIL: served answers differ between single-shot and windowed runs"; exit 1; }

echo "==> online cleaning determinism (streaming_clean twice, stdout byte-compare)"
# The example drives 1-day windows and prints the provisional serving
# view after each one plus the canonical view at finalize — all derived
# from committed sketch bytes and engine:clean:* summaries, so two runs
# of the same seed must produce identical stdout (docs/CLEANING.md).
cargo run --quiet --release --example streaming_clean -- 7 > "$trace_dir/c1.out" 2>/dev/null
cargo run --quiet --release --example streaming_clean -- 7 > "$trace_dir/c2.out" 2>/dev/null
cmp "$trace_dir/c1.out" "$trace_dir/c2.out" \
  || { echo "FAIL: streaming_clean stdout differs across identical runs"; exit 1; }

echo "==> budgeted locate determinism (locate_budget twice, stdout byte-compare)"
# The example drives 1-day windows under a tight per-window API budget
# and prints the coverage ramp — spend, carry-over queue, served
# canonical/provisional marker counts per window — all derived from
# committed engine:locate:* / engine:serve:* state and deterministic
# counters, so two runs of the same seed must produce identical stdout
# (docs/AGGREGATION.md).
cargo run --quiet --release --example locate_budget -- 7 > "$trace_dir/l1.out" 2>/dev/null
cargo run --quiet --release --example locate_budget -- 7 > "$trace_dir/l2.out" 2>/dev/null
cmp "$trace_dir/l1.out" "$trace_dir/l2.out" \
  || { echo "FAIL: locate_budget stdout differs across identical runs"; exit 1; }

echo "==> sharded topology (sharded_explore twice under the stock NetFault plan, stdout byte-compare)"
# The example runs 2 engines over the 3-shard store mesh under the
# default NetFault schedule (frame loss/delay, one partition, one
# primary kill), asserts the merged report is byte-identical to a
# fault-free single-process run of the same world, and prints the
# injected-fault and recovery counters — all deterministic for a fixed
# seed, so two runs must produce identical stdout.
cargo run --quiet --release --example sharded_explore -- 4242 > "$trace_dir/n1.out" 2>/dev/null
cargo run --quiet --release --example sharded_explore -- 4242 > "$trace_dir/n2.out" 2>/dev/null
cmp "$trace_dir/n1.out" "$trace_dir/n2.out" \
  || { echo "FAIL: sharded run is not replay-deterministic under faults"; exit 1; }
# And the happy path: a quiet plan must recover nothing (the example
# prints the counters; failovers/timeouts are asserted zero here).
cargo run --quiet --release --example sharded_explore -- 4242 quiet > "$trace_dir/nq.out" 2>/dev/null
grep -q "^net.failovers  *0$" "$trace_dir/nq.out" \
  || { echo "FAIL: quiet sharded run performed a failover"; exit 1; }
grep -q "^net.timeouts  *0$" "$trace_dir/nq.out" \
  || { echo "FAIL: quiet sharded run timed out"; exit 1; }

echo "==> ops console determinism (ops_console twice mid-fault, stdout byte-compare)"
# The console polls a 3-shard mesh through the quiet ops endpoint while
# the stock NetFault plan kills a primary and partitions a link, prints
# one health report per window, the latency-budget table, and the mesh
# trace summary. Quiet polling draws no RNG and charges no simulated
# time, so monitoring must not perturb the run: two runs of the same
# seed must produce identical stdout.
cargo run --quiet --release --example ops_console -- 4242 > "$trace_dir/o1.out" 2>/dev/null
cargo run --quiet --release --example ops_console -- 4242 > "$trace_dir/o2.out" 2>/dev/null
cmp "$trace_dir/o1.out" "$trace_dir/o2.out" \
  || { echo "FAIL: ops_console stdout differs across identical runs"; exit 1; }
# The console must see the injected fault and the recovery.
grep -q "partitioned" "$trace_dir/o1.out" \
  || { echo "FAIL: ops_console never observed the injected partition"; exit 1; }
grep -q "== latency budgets" "$trace_dir/o1.out" \
  || { echo "FAIL: ops_console printed no latency-budget table"; exit 1; }

echo "CI green."
