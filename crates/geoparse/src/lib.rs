//! # tero-geoparse
//!
//! NLP / geocoding substrate for Tero's location module (§3.1, App. D).
//!
//! The paper extracts `{city, region, country}` tuples from Twitch
//! descriptions and Twitter location fields using five publicly available
//! tools — CLIFF, Xponents and Mordecai (geocoders over unstructured text),
//! Nominatim and GeoNames (geoparsers over location-ish fields) — plus a
//! conservative filter and combination rules. This crate rebuilds the whole
//! stack offline:
//!
//! * [`gazetteer`] — an embedded gazetteer of countries, first-level regions
//!   and cities with coordinates, areas, populations and aliases (including
//!   every location named in the paper's figures and server tables);
//! * [`tools`] — the five tools, each with a distinct, realistic
//!   precision/recall profile (aggressive matching, fuzzy matching,
//!   multi-candidate output, …);
//! * [`filter`] — the conservative filter of App. D.1;
//! * [`combine`] — the Twitch-description combiner (App. D.2), the
//!   Twitter-field combiner (App. D.3) and the §3.1 acceptance rules;
//! * [`tags`] — country-tag recovery (App. D.2);
//! * [`profiles`] — the Twitch ↔ Twitter/Steam profile-matching algorithm.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod combine;
pub mod filter;
pub mod gazetteer;
pub mod profiles;
pub mod tags;
pub mod tools;

pub use combine::{combine_twitch_description, combine_twitter_location};
pub use filter::conservative_filter;
pub use gazetteer::{Gazetteer, Place, PlaceKind};
pub use profiles::{match_profile, SocialProfile};
pub use tools::{GeoTool, ToolKind};
