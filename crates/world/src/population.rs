//! The streamer population model (Fig 7).
//!
//! The paper finds that Tero's users follow the geographic distribution of
//! Twitch users: concentrated in the Americas and Europe, under-represented
//! in Asia (Chinese/Indian platforms compete with Twitch) and Africa. We
//! model this by weighting each gazetteer place's population with a
//! per-continent Twitch-popularity multiplier, then sampling streamer homes
//! from the resulting distribution.

use tero_geoparse::{Gazetteer, Place, PlaceKind};
use tero_types::{Continent, SimRng};

/// Twitch-popularity multiplier per continent (unitless; shapes Fig 7's
/// "Tero" bars relative to raw population).
pub fn twitch_weight(continent: Continent) -> f64 {
    match continent {
        Continent::NorthAmerica => 3.0,
        Continent::SouthAmerica => 1.8,
        Continent::Europe => 2.2,
        Continent::Asia => 0.12,
        Continent::Oceania => 1.5,
        Continent::Africa => 0.05,
    }
}

/// Share of the world's Internet users per continent (approximate, used
/// for Fig 7's middle series).
pub fn internet_user_share(continent: Continent) -> f64 {
    match continent {
        Continent::Asia => 0.53,
        Continent::Europe => 0.15,
        Continent::Africa => 0.11,
        Continent::NorthAmerica => 0.10,
        Continent::SouthAmerica => 0.10,
        Continent::Oceania => 0.01,
    }
}

/// Share of the world's population per continent (Fig 7's third series).
pub fn population_share(continent: Continent) -> f64 {
    match continent {
        Continent::Asia => 0.59,
        Continent::Africa => 0.17,
        Continent::Europe => 0.10,
        Continent::NorthAmerica => 0.08,
        Continent::SouthAmerica => 0.055,
        Continent::Oceania => 0.005,
    }
}

/// A sampler of streamer home locations (city-granularity places).
#[derive(Debug)]
pub struct PopulationModel {
    cities: Vec<Place>,
    weights: Vec<f64>,
}

impl PopulationModel {
    /// Build from a gazetteer: every city, weighted by population ×
    /// continent multiplier.
    pub fn new(gaz: &Gazetteer) -> Self {
        let mut cities = Vec::new();
        let mut weights = Vec::new();
        for p in gaz.places() {
            if p.kind == PlaceKind::City {
                cities.push(p.clone());
                weights.push((p.population_m.max(0.05)) * twitch_weight(p.continent));
            }
        }
        PopulationModel { cities, weights }
    }

    /// Sample one home city.
    pub fn sample(&self, rng: &mut SimRng) -> &Place {
        &self.cities[rng.choose_weighted(&self.weights)]
    }

    /// Number of candidate cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// All candidate cities (for targeted world construction: experiments
    /// like Figs 9-12 place fixed numbers of streamers in fixed places).
    pub fn cities(&self) -> &[Place] {
        &self.cities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn shares_sum_to_one() {
        let i: f64 = Continent::ALL.iter().map(|&c| internet_user_share(c)).sum();
        let p: f64 = Continent::ALL.iter().map(|&c| population_share(c)).sum();
        assert!((i - 1.0).abs() < 0.01, "internet {i}");
        assert!((p - 1.0).abs() < 0.01, "population {p}");
    }

    #[test]
    fn sampling_matches_fig7_shape() {
        let gaz = Gazetteer::new();
        let model = PopulationModel::new(&gaz);
        assert!(model.len() > 60);
        let mut rng = SimRng::new(42);
        let mut counts: HashMap<Continent, usize> = HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            let place = model.sample(&mut rng);
            *counts.entry(place.continent).or_default() += 1;
        }
        let share = |c: Continent| counts.get(&c).copied().unwrap_or(0) as f64 / n as f64;
        // Fig 7's qualitative shape: the Americas + Europe dominate Tero's
        // users; Asia is far below its Internet-user share; Africa tiny.
        assert!(
            share(Continent::NorthAmerica) > 0.25,
            "NA {}",
            share(Continent::NorthAmerica)
        );
        assert!(
            share(Continent::Europe) > 0.15,
            "EU {}",
            share(Continent::Europe)
        );
        assert!(
            share(Continent::Asia) < 0.20,
            "AS {}",
            share(Continent::Asia)
        );
        assert!(
            share(Continent::Africa) < 0.05,
            "AF {}",
            share(Continent::Africa)
        );
        assert!(
            share(Continent::Asia) < internet_user_share(Continent::Asia) / 2.0,
            "Asia under-represented vs Internet users"
        );
    }
}
