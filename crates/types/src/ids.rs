//! Identifiers.
//!
//! The paper's privacy posture (§7) requires that the pipeline never stores a
//! raw streamer identity: each streamer ID is mapped to a randomly generated
//! ID through *consistent hashing*, so the system can recognise that a
//! location and a set of measurements belong to the same streamer without
//! remembering who that streamer is. [`AnonId`] implements that mapping with
//! a keyed FNV-1a construction (the key plays the role of the deployment's
//! secret salt).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A raw (simulated) Twitch streamer identifier. Only the synthetic-world
/// crate and the download front-end ever see these; everything past intake
/// works on [`AnonId`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamerId(pub String);

impl StreamerId {
    /// Construct from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        StreamerId(s.into())
    }

    /// The underlying username.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StreamerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An anonymised streamer identity: the consistent hash of a [`StreamerId`]
/// under a deployment salt. Equal inputs under the same salt always map to
/// the same `AnonId`; the raw ID cannot be recovered.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AnonId(pub u64);

impl AnonId {
    /// Hash a raw streamer ID under the given salt.
    pub fn from_streamer(id: &StreamerId, salt: u64) -> Self {
        AnonId(keyed_fnv1a(id.0.as_bytes(), salt))
    }
}

impl fmt::Display for AnonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "anon:{:016x}", self.0)
    }
}

/// Keyed 64-bit FNV-1a: the salt is mixed in as a prefix and a suffix, and
/// the result is finalised with an avalanche step (SplitMix64's mixer) so
/// that nearby inputs do not produce nearby hashes.
///
/// This is the consistent-hash primitive behind [`AnonId`] *and* the
/// key-to-shard routing of the networked store (`tero-net`): routing
/// with the same construction the anonymisation layer already trusts
/// keeps shard placement a pure function of `(key, salt)`.
pub fn consistent_hash(bytes: &[u8], salt: u64) -> u64 {
    keyed_fnv1a(bytes, salt)
}

/// Ownership of one shard out of `count` in a sharded deployment: the
/// engine holding `ShardSpec { index, count }` processes exactly the
/// streamers whose [`AnonId`] maps to `index` under `AnonId.0 % count`.
/// Every engine computes the same partition from the same salt, so the
/// shards are disjoint and cover the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This engine's shard, in `0..count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl ShardSpec {
    /// Whether this shard owns the given anonymised streamer.
    pub fn owns(&self, id: AnonId) -> bool {
        self.count <= 1 || id.0 % self.count as u64 == self.index as u64
    }
}

fn keyed_fnv1a(bytes: &[u8], salt: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET ^ salt;
    for chunk in salt.to_le_bytes() {
        h = (h ^ chunk as u64).wrapping_mul(PRIME);
    }
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    for chunk in salt.to_be_bytes() {
        h = (h ^ chunk as u64).wrapping_mul(PRIME);
    }
    // Finalise (SplitMix64 mixer).
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One of the online video games processed by Tero (App. §C lists nine; we
/// model the eight with public server-location data plus a ninth placeholder,
/// exactly as the paper does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GameId {
    /// League of Legends (Riot Games) — the paper's running example.
    LeagueOfLegends,
    /// Call of Duty: Warzone (Activision).
    CodWarzone,
    /// Genshin Impact (miHoYo).
    GenshinImpact,
    /// Teamfight Tactics (Riot Games).
    TeamfightTactics,
    /// Dota 2 (Valve).
    Dota2,
    /// Among Us (Innersloth).
    AmongUs,
    /// Lost Ark (Smilegate).
    LostArk,
    /// Apex Legends (Respawn).
    ApexLegends,
    /// Valorant (Riot Games) — the ninth game, no public server data.
    Valorant,
}

impl GameId {
    /// All games processed by Tero.
    pub const ALL: [GameId; 9] = [
        GameId::LeagueOfLegends,
        GameId::CodWarzone,
        GameId::GenshinImpact,
        GameId::TeamfightTactics,
        GameId::Dota2,
        GameId::AmongUs,
        GameId::LostArk,
        GameId::ApexLegends,
        GameId::Valorant,
    ];

    /// The seven games analysed in Table 5 (those with enough observations).
    pub const TABLE5: [GameId; 7] = [
        GameId::LeagueOfLegends,
        GameId::CodWarzone,
        GameId::GenshinImpact,
        GameId::TeamfightTactics,
        GameId::Dota2,
        GameId::AmongUs,
        GameId::LostArk,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            GameId::LeagueOfLegends => "League of Legends",
            GameId::CodWarzone => "Call of Duty Warzone",
            GameId::GenshinImpact => "Genshin Impact",
            GameId::TeamfightTactics => "Teamfight Tactics",
            GameId::Dota2 => "Dota 2",
            GameId::AmongUs => "Among Us",
            GameId::LostArk => "Lost Ark",
            GameId::ApexLegends => "Apex Legends",
            GameId::Valorant => "Valorant",
        }
    }

    /// Short slug used in store keys and bench output.
    pub fn slug(self) -> &'static str {
        match self {
            GameId::LeagueOfLegends => "lol",
            GameId::CodWarzone => "codwz",
            GameId::GenshinImpact => "genshin",
            GameId::TeamfightTactics => "tft",
            GameId::Dota2 => "dota2",
            GameId::AmongUs => "amongus",
            GameId::LostArk => "lostark",
            GameId::ApexLegends => "apex",
            GameId::Valorant => "valorant",
        }
    }
}

impl fmt::Display for GameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anon_id_is_consistent() {
        let id = StreamerId::new("shroud");
        assert_eq!(
            AnonId::from_streamer(&id, 99),
            AnonId::from_streamer(&id, 99)
        );
    }

    #[test]
    fn anon_id_depends_on_salt_and_input() {
        let a = StreamerId::new("alpha");
        let b = StreamerId::new("beta");
        assert_ne!(
            AnonId::from_streamer(&a, 1),
            AnonId::from_streamer(&a, 2),
            "salt must change the mapping"
        );
        assert_ne!(
            AnonId::from_streamer(&a, 1),
            AnonId::from_streamer(&b, 1),
            "input must change the mapping"
        );
    }

    #[test]
    fn anon_id_avalanche() {
        // One-character difference should flip roughly half the bits.
        let a = AnonId::from_streamer(&StreamerId::new("streamer1"), 7).0;
        let b = AnonId::from_streamer(&StreamerId::new("streamer2"), 7).0;
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }

    #[test]
    fn game_names_and_slugs_unique() {
        let mut names: Vec<&str> = GameId::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GameId::ALL.len());
        let mut slugs: Vec<&str> = GameId::ALL.iter().map(|g| g.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), GameId::ALL.len());
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(StreamerId::new("x").to_string(), "x");
        assert_eq!(GameId::Dota2.to_string(), "Dota 2");
        assert!(AnonId(0xdead_beef).to_string().starts_with("anon:"));
    }
}
