//! The sharded-deployment invariant: N engines over the networked
//! store, under partitions, shard kills and frame loss, produce a
//! merged horizon report **byte-identical** to a fault-free
//! single-process run over the same world — and replaying the same
//! fault plan reproduces the same `net.*` recovery metrics.

use tero::chaos::{FaultPlan, HostKill, NetFault, NetPartition};
use tero::core::pipeline::{ExtractionMode, Tero};
use tero::core::sharded::{run_sharded, ShardedConfig, ShardedOutcome};
use tero::types::SimDuration;
use tero::world::{World, WorldConfig};

fn world_cfg() -> WorldConfig {
    WorldConfig {
        seed: 4242,
        n_streamers: 12,
        days: 1,
        shared_events: 1,
        ..WorldConfig::default()
    }
}

fn single_process_digest() -> String {
    let mut world = World::build(world_cfg());
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 3,
        ..Tero::default()
    };
    tero.run(&mut world).digest()
}

/// The acceptance scenario: 3 store shards (primary + replica each),
/// 2 engines, one primary killed for the middle windows and one
/// engine↔primary pair partitioned mid-run, plus background frame loss
/// and delay.
fn faulty_config() -> ShardedConfig {
    let windows = 4;
    ShardedConfig {
        engines: 2,
        shards: 3,
        windows,
        world: world_cfg(),
        mode: ExtractionMode::Calibrated,
        min_streamers: 3,
        plan: FaultPlan {
            net: NetFault {
                frame_drop_rate: 0.01,
                frame_delay_rate: 0.02,
                frame_delay: SimDuration::from_millis(2),
                partitions: vec![NetPartition {
                    a: "engine0".into(),
                    b: "shard2p".into(),
                    from_window: 2,
                    until_window: 3,
                }],
                kills: vec![HostKill {
                    host: "shard1p".into(),
                    from_window: 1,
                    until_window: 3,
                }],
            },
            ..FaultPlan::quiet(97)
        },
        net_seed: 7,
        ..ShardedConfig::default()
    }
}

fn counter(out: &ShardedOutcome, name: &str) -> u64 {
    out.net_registry.snapshot().counter(name).unwrap_or(0)
}

#[test]
fn sharded_run_under_net_faults_matches_single_process() {
    let out = run_sharded(&faulty_config());
    assert_eq!(
        out.report.digest(),
        single_process_digest(),
        "merged sharded report must be byte-identical to the fault-free single-process run"
    );
    // The plan's faults actually fired and the client actually recovered.
    assert!(
        counter(&out, "chaos.injected.net_shard_kill") >= 1,
        "the shard kill fired"
    );
    assert!(
        counter(&out, "chaos.injected.net_partition_drop") >= 1,
        "the partition fired"
    );
    assert!(
        counter(&out, "net.failovers") >= 1,
        "a replica was promoted"
    );
    assert!(
        counter(&out, "net.resyncs") >= 1,
        "a revived peer was resynced"
    );
    assert!(
        counter(&out, "net.retries") >= 1,
        "lost frames were retried"
    );
}

#[test]
fn quiet_sharded_run_matches_single_process() {
    let cfg = ShardedConfig {
        plan: FaultPlan::quiet(97),
        ..faulty_config()
    };
    let out = run_sharded(&cfg);
    assert_eq!(out.report.digest(), single_process_digest());
    assert_eq!(counter(&out, "net.failovers"), 0);
    assert_eq!(counter(&out, "net.timeouts"), 0);
}

#[test]
fn net_recovery_metrics_replay_identically() {
    let names = [
        "net.requests",
        "net.frames",
        "net.bytes",
        "net.retries",
        "net.timeouts",
        "net.failovers",
        "net.lease_renewals",
        "net.resyncs",
        "net.breaker_open",
        "chaos.injected.net_partition_drop",
        "chaos.injected.net_frame_drop",
        "chaos.injected.net_frame_delay",
        "chaos.injected.net_shard_kill",
    ];
    let run = || {
        let out = run_sharded(&faulty_config());
        names
            .iter()
            .map(|n| (*n, counter(&out, n)))
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same fault plan and seed must reproduce identical net.* recovery metrics"
    );
}

#[test]
fn more_engines_and_shards_still_merge_identically() {
    let cfg = ShardedConfig {
        engines: 3,
        shards: 2,
        windows: 3,
        plan: FaultPlan {
            net: NetFault {
                kills: vec![HostKill {
                    host: "shard0p".into(),
                    from_window: 1,
                    until_window: 2,
                }],
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(5)
        },
        ..faulty_config()
    };
    let out = run_sharded(&cfg);
    assert_eq!(out.report.digest(), single_process_digest());
}
