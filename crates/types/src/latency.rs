//! Latency measurements as extracted from thumbnails.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One latency measurement extracted from a thumbnail: the *primary* value
/// agreed by at least two OCR engines, plus the *alternative* value kept when
/// exactly two engines agreed and the third disagreed (§3.2 step 4). The
/// data-analysis module may swap in the alternative when the primary is
/// incompatible with its neighbours (§3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LatencySample {
    /// When the thumbnail was captured.
    pub at: SimTime,
    /// The primary extracted latency in milliseconds.
    pub latency_ms: u32,
    /// The dissenting third engine's output, if any.
    pub alternative_ms: Option<u32>,
}

impl LatencySample {
    /// A sample with no alternative.
    pub fn new(at: SimTime, latency_ms: u32) -> Self {
        LatencySample {
            at,
            latency_ms,
            alternative_ms: None,
        }
    }

    /// A sample carrying an alternative value.
    pub fn with_alternative(at: SimTime, latency_ms: u32, alternative_ms: u32) -> Self {
        LatencySample {
            at,
            latency_ms,
            alternative_ms: Some(alternative_ms),
        }
    }

    /// Replace the primary with the alternative (used by anomaly correction).
    /// Returns `None` when no alternative exists.
    pub fn corrected(self) -> Option<LatencySample> {
        self.alternative_ms.map(|alt| LatencySample {
            at: self.at,
            latency_ms: alt,
            alternative_ms: Some(self.latency_ms),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrected_swaps_primary_and_alternative() {
        let s = LatencySample::with_alternative(SimTime::from_secs(1), 5, 45);
        let c = s.corrected().unwrap();
        assert_eq!(c.latency_ms, 45);
        assert_eq!(c.alternative_ms, Some(5));
        assert_eq!(c.at, s.at);
    }

    #[test]
    fn corrected_without_alternative_is_none() {
        let s = LatencySample::new(SimTime::EPOCH, 30);
        assert!(s.corrected().is_none());
    }
}
