//! # tero-stats
//!
//! Statistics substrate for the Tero reproduction.
//!
//! Everything the paper's analysis needs, implemented from scratch:
//!
//! * [`descriptive`] — means, variances, percentiles, and the 5/25/50/75/95
//!   boxplot statistics used for every latency distribution (§5.2);
//! * [`special`] — `erf`, the normal pdf/cdf and its inverse, `ln Γ`;
//! * [`binomial`] — the shared-anomaly statistical test of App. F
//!   (after Padmanabhan et al. \[41\]);
//! * [`wasserstein`] — 1-D optimal transport distance and the *uneven-ness*
//!   score of Fig 8;
//! * [`probit`] — Probit regression by Newton–Raphson MLE with average
//!   marginal effects and Wald significance (§6, Table 5);
//! * [`changepoint`] — PELT (Killick et al. \[26\]), the changepoint baseline
//!   the paper tried before designing its QoE-based detector (§3.3.2);
//! * [`lof`], [`iforest`], [`mcd`] — the three unsupervised anomaly-detection
//!   baselines of App. J (Local Outlier Factor, Isolation Forest, Minimum
//!   Covariance Determinant);
//! * [`outliers`] — the inter-quartile-range rule used to threshold
//!   Isolation-Forest scores (App. J);
//! * [`sketch`] — the mergeable DDSketch-style quantile sketch behind the
//!   `tero-serve` query front-end (percentile/CDF/histogram/Wasserstein
//!   answers within a documented relative-error bound).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binomial;
pub mod changepoint;
pub mod descriptive;
pub mod iforest;
pub mod lof;
pub mod mcd;
pub mod outliers;
pub mod probit;
pub mod sketch;
pub mod special;
pub mod wasserstein;

pub use binomial::{binomial_pmf, binomial_sf, SharedAnomalyTest};
pub use changepoint::{pelt_mean_shift, OnlinePelt};
pub use descriptive::{mean, percentile, percentile_nearest_rank, std_dev, variance, BoxplotStats};
pub use iforest::IsolationForest;
pub use lof::local_outlier_factor;
pub use mcd::UnivariateMcd;
pub use outliers::iqr_outliers;
pub use probit::{ProbitFit, ProbitModel};
pub use sketch::{QuantileSketch, DEFAULT_ALPHA};
pub use special::{erf, inv_norm_cdf, ln_gamma, norm_cdf, norm_pdf};
pub use wasserstein::{unevenness_score, wasserstein_1d};
