//! Image-processing cost: scene rendering, the preprocessing pipeline, a
//! single engine, and the full three-engine voting front-end — the
//! dominant per-thumbnail cost of a deployment (the paper runs this on two
//! GPUs; we budget per-core).

use criterion::{criterion_group, criterion_main, Criterion};
use tero_core::imageproc::{roi_for_game, ImageProcessor};
use tero_types::{GameId, SimRng, SimTime};
use tero_vision::combine::OcrCombiner;
use tero_vision::ocr::{OcrEngine, OcrEngineKind};
use tero_vision::preprocess::{preprocess, PreprocessConfig};
use tero_vision::scene::HudScene;

fn thumb() -> tero_vision::Image {
    let mut rng = SimRng::new(42);
    HudScene::typical(87).render(&mut rng)
}

fn bench_render(c: &mut Criterion) {
    let scene = HudScene::typical(87);
    c.bench_function("scene_render", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| scene.render(&mut rng));
    });
}

fn bench_preprocess(c: &mut Criterion) {
    let scene = HudScene::typical(87);
    let thumb = thumb();
    let roi = scene.roi();
    let crop = thumb.crop(roi.0, roi.1, roi.2, roi.3);
    let cfg = PreprocessConfig::default();
    c.bench_function("preprocess_crop", |b| {
        b.iter(|| preprocess(&crop, &cfg));
    });
}

fn bench_single_engine(c: &mut Criterion) {
    let scene = HudScene::typical(87);
    let thumb = thumb();
    let roi = scene.roi();
    let crop = thumb.crop(roi.0, roi.1, roi.2, roi.3);
    let cfg = PreprocessConfig::default();
    let upscaled = crop.upscale(cfg.upscale);
    let engine = OcrEngine::new(OcrEngineKind::EasyOcrLike);
    c.bench_function("single_engine_recognize", |b| {
        b.iter(|| engine.recognize_gray(&upscaled, &cfg));
    });
}

fn bench_full_extraction(c: &mut Criterion) {
    let thumb = thumb();
    let combiner = OcrCombiner::new();
    let roi = roi_for_game(GameId::LeagueOfLegends);
    c.bench_function("three_engine_vote_extract", |b| {
        b.iter(|| combiner.extract_from_thumbnail(&thumb, roi));
    });
    let processor = ImageProcessor::new();
    c.bench_function("imageproc_module_extract", |b| {
        b.iter(|| processor.extract(&thumb, GameId::LeagueOfLegends));
    });
}

fn bench_render_and_extract(c: &mut Criterion) {
    // The whole FullOcr per-thumbnail path as the pipeline pays it.
    let processor = ImageProcessor::new();
    let scene = {
        let mut s = HudScene::typical(64);
        s.noise = 0.02;
        s
    };
    c.bench_function("thumbnail_end_to_end", |b| {
        let mut rng = SimRng::new(7);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let _ = SimTime::from_mins(t);
            let img = scene.render(&mut rng);
            processor.extract(&img, GameId::LeagueOfLegends)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets =
    bench_render,
    bench_preprocess,
    bench_single_engine,
    bench_full_extraction,
    bench_render_and_extract
);
criterion_main!(benches);
