//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io `serde_derive` cannot be fetched in the air-gapped
//! build environment, so this proc-macro crate derives the vendored
//! `serde`'s [`Serialize`]/[`Deserialize`] traits instead. It hand-parses
//! the item token stream (no `syn`/`quote`) and supports exactly the shapes
//! this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialise as their inner value, wider tuples
//!   as sequences),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   real serde's default representation).
//!
//! Generic items are intentionally unsupported — the workspace has none,
//! and failing loudly beats silently-wrong codegen.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under derive.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    Tuple { name: String, arity: usize },
    /// Unit struct.
    Unit { name: String },
    /// Enum.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skip one attribute: the caller saw `#`; consume the following `[...]`
/// group (and a `!` for inner attributes, which cannot appear here anyway).
fn skip_attribute(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '!' {
            iter.next();
        }
    }
    if let Some(TokenTree::Group(g)) = iter.peek() {
        if g.delimiter() == Delimiter::Bracket {
            iter.next();
        }
    }
}

/// Parse the fields of a `{ ... }` named-field group into field names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        match iter.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                skip_attribute(&mut iter);
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // `pub(crate)` etc: skip the parenthesised part.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        fields.push(id.to_string());
        // Expect ':', then skip the type until a comma at angle-depth 0.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Count the fields of a `( ... )` tuple group (top-level commas + 1).
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in group {
        any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

/// Parse the enum body into variants.
fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        match iter.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                skip_attribute(&mut iter);
                continue;
            }
            _ => {}
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        let name = id.to_string();
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the next top-level comma (covers `= 3` discriminants).
        let mut depth = 0i32;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    iter.next();
                    match c {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => break,
                        _ => {}
                    }
                }
                _ => {
                    iter.next();
                }
            }
        }
    }
    variants
}

/// Parse a derive input item.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes / visibility until `struct` or `enum`.
    let kind = loop {
        match iter.next() {
            None => return Err("no struct/enum found".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attribute(&mut iter),
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` — skip the paren group if present.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(_) => {}
        }
    };
    let Some(TokenTree::Ident(name)) = iter.next() else {
        return Err("missing item name".into());
    };
    let name = name.to_string();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive (vendored): generic type `{name}` is not supported"
            ));
        }
    }
    if kind == "enum" {
        let Some(TokenTree::Group(g)) = iter.next() else {
            return Err("missing enum body".into());
        };
        return Ok(Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        });
    }
    // Struct.
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
            name,
            fields: parse_named_fields(g.stream()),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item::Tuple {
            name,
            arity: count_tuple_fields(g.stream()),
        }),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Unit { name }),
        None => Ok(Item::Unit { name }),
        Some(other) => Err(format!("unexpected token after struct name: {other}")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize(&self) -> ::serde::Value {{\n\
                     let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                     {inserts}\n\
                     ::serde::Value::Object(__m)\n\
                   }}\n\
                 }}"
            )
        }
        Item::Tuple { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::serialize(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let inserts: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__m.push(({f:?}.to_string(), ::serde::Serialize::serialize({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                   let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                   {inserts}\n\
                                   ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(__m))])\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}\n}}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let lets: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(__v.field({f:?}))\
                         .map_err(|e| e.in_field({f:?}))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name} {{ {lets} }})\n\
                   }}\n\
                 }}"
            )
        }
        Item::Tuple { name, arity } => {
            let body = if arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| {
                        format!("::serde::Deserialize::deserialize(__v.index({i})?)?")
                    })
                    .collect();
                format!("Ok({name}({}))", elems.join(", "))
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     {body}\n\
                   }}\n\
                 }}"
            )
        }
        Item::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn deserialize(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 Ok({name})\n\
               }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            // Unit variants arrive as strings; payload variants as
            // single-key objects.
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "return Ok({name}::{vname}(::serde::Deserialize::deserialize(__inner)?));"
                                )
                            } else {
                                let elems: Vec<String> = (0..*arity)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::deserialize(__inner.index({i})?)?"
                                        )
                                    })
                                    .collect();
                                format!("return Ok({name}::{vname}({}));", elems.join(", "))
                            };
                            Some(format!("{vname:?} => {{ {body} }}\n"))
                        }
                        VariantKind::Struct(fields) => {
                            let lets: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(__inner.field({f:?}))\
                                         .map_err(|e| e.in_field({f:?}))?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{ return Ok({name}::{vname} {{ {lets} }}); }}\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     if let ::serde::Value::String(__s) = __v {{\n\
                       match __s.as_str() {{\n{unit_arms}\n_ => {{}}\n}}\n\
                     }}\n\
                     if let Some((__tag, __inner)) = __v.single_entry() {{\n\
                       match __tag {{\n{payload_arms}\n_ => {{}}\n}}\n\
                     }}\n\
                     Err(::serde::Error::custom(concat!(\"invalid variant for enum \", stringify!({name}))))\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
