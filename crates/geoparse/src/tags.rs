//! Country-tag recovery (App. D.2).
//!
//! Until February 2023 Twitch offered standardised stream tags including
//! country-level ones. Tero gathered stream tags every 30 minutes and used
//! *stable* tags — the same country tag across uninterrupted consecutive
//! observations — to recover geocoder outputs that the conservative filter
//! had discarded: a discarded location is accepted after all if a stable
//! tag confirms its country.

use tero_types::Location;

/// One tag observation: whether a country tag was present on a stream at
/// one 30-minute poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagObservation {
    /// Poll index (monotonic).
    pub poll: u64,
    /// The country-level tag, if the stream carried one.
    pub country_tag: Option<String>,
}

/// Derive a stable country from a user's tag history: the country whose tag
/// appears in the longest run of *consecutive* observations, provided that
/// run has at least `min_run` observations.
pub fn stable_country(history: &[TagObservation], min_run: usize) -> Option<String> {
    let mut best: Option<(String, usize)> = None;
    let mut current: Option<(String, usize)> = None;
    for obs in history {
        match (&obs.country_tag, &mut current) {
            (Some(tag), Some((cur_tag, len))) if tag == cur_tag => {
                *len += 1;
            }
            (Some(tag), _) => {
                if let Some((t, l)) = current.take() {
                    if best.as_ref().is_none_or(|(_, bl)| l > *bl) {
                        best = Some((t, l));
                    }
                }
                current = Some((tag.clone(), 1));
            }
            (None, _) => {
                if let Some((t, l)) = current.take() {
                    if best.as_ref().is_none_or(|(_, bl)| l > *bl) {
                        best = Some((t, l));
                    }
                }
            }
        }
    }
    if let Some((t, l)) = current {
        if best.as_ref().is_none_or(|(_, bl)| l > *bl) {
            best = Some((t, l));
        }
    }
    best.filter(|(_, l)| *l >= min_run).map(|(t, _)| t)
}

/// The recovery rule: accept a location that the conservative filter
/// discarded if a stable tag confirms its country.
pub fn recover_with_tag(
    discarded: &Location,
    history: &[TagObservation],
    min_run: usize,
) -> Option<Location> {
    let tag = stable_country(history, min_run)?;
    if tag.eq_ignore_ascii_case(&discarded.country) {
        Some(discarded.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tags: &[Option<&str>]) -> Vec<TagObservation> {
        tags.iter()
            .enumerate()
            .map(|(i, t)| TagObservation {
                poll: i as u64,
                country_tag: t.map(str::to_string),
            })
            .collect()
    }

    #[test]
    fn stable_run_detected() {
        let h = obs(&[
            Some("France"),
            Some("France"),
            Some("France"),
            None,
            Some("Spain"),
        ]);
        assert_eq!(stable_country(&h, 3).as_deref(), Some("France"));
        assert_eq!(stable_country(&h, 4), None, "run too short");
    }

    #[test]
    fn interruptions_reset_runs() {
        let h = obs(&[Some("France"), None, Some("France"), None, Some("France")]);
        assert_eq!(stable_country(&h, 2), None, "no run of 2 consecutive");
        assert_eq!(stable_country(&h, 1).as_deref(), Some("France"));
    }

    #[test]
    fn tag_changes_tracked() {
        let h = obs(&[
            Some("Spain"),
            Some("Spain"),
            Some("France"),
            Some("France"),
            Some("France"),
        ]);
        assert_eq!(stable_country(&h, 3).as_deref(), Some("France"));
    }

    #[test]
    fn recovery_requires_matching_country() {
        let detroit = Location::city("United States", "Michigan", "Detroit");
        let confirm = obs(&[Some("United States"); 4]);
        assert_eq!(
            recover_with_tag(&detroit, &confirm, 3),
            Some(detroit.clone())
        );
        let conflict = obs(&[Some("Canada"); 4]);
        assert_eq!(recover_with_tag(&detroit, &conflict, 3), None);
        assert_eq!(recover_with_tag(&detroit, &obs(&[None; 4]), 1), None);
    }

    #[test]
    fn empty_history() {
        assert_eq!(stable_country(&[], 1), None);
    }
}
