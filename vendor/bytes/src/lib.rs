//! Offline stand-in for `bytes`.
//!
//! Provides [`Bytes`]: a cheaply cloneable, immutable byte buffer backed by
//! either a `&'static [u8]` or an `Arc<[u8]>`. Covers the subset of the
//! real crate's API the workspace uses (construction from vectors/slices,
//! `from_static`, deref to `[u8]`, cheap `Clone`).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. `Clone` is O(1).
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wrap a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Borrow the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(v.into()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(s.into()),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(&s[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        assert_eq!(a, &b"abc"[..]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = Bytes::from(vec![0u8; 100]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn slicing_via_deref() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&a[1..3], &[2, 3]);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4]);
    }
}
