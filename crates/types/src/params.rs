//! Tero's configurable parameters (Table 1) and the defaults the paper uses.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Tero's configurable parameters (Table 1, plus `MinWeight` from §3.3.3).
///
/// * `LatGap` — the minimum latency difference perceivable by human users;
///   the paper uses 15 ms (upper bound of perceivable latency in VR, \[32\]).
/// * `StableLen` — the minimum time a player must play on one server before
///   switching; the paper settles on 30 minutes (App I).
/// * `MaxSpikes` — the maximum proportion of a streamer's points that may be
///   spikes for the streamer to yield "high-quality" information; 50 %.
/// * `MinWeight` — the minimum cluster weight for a streamer to be *static*;
///   80 %.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TeroParams {
    /// Perceivable latency-difference threshold, in milliseconds.
    pub lat_gap_ms: u32,
    /// Minimum time one must play on the same server before switching.
    pub stable_len: SimDuration,
    /// Maximum proportion of spike points allowed per streamer, in `[0, 1]`.
    pub max_spikes: f64,
    /// Minimum weight of the dominant cluster for a *static* streamer.
    pub min_weight: f64,
}

impl TeroParams {
    /// Number of consecutive samples that `stable_len` corresponds to, given
    /// the ~5-minute thumbnail cadence: a segment is *stable* when it has at
    /// least this many points (§3.3.1).
    pub fn stable_points(&self) -> usize {
        (self.stable_len.as_mins() as usize / 5).max(1)
    }

    /// Builder-style override of `LatGap`.
    pub fn with_lat_gap_ms(mut self, ms: u32) -> Self {
        self.lat_gap_ms = ms;
        self
    }

    /// Builder-style override of `StableLen`.
    pub fn with_stable_len(mut self, d: SimDuration) -> Self {
        self.stable_len = d;
        self
    }

    /// Builder-style override of `MaxSpikes`.
    pub fn with_max_spikes(mut self, p: f64) -> Self {
        self.max_spikes = p.clamp(0.0, 1.0);
        self
    }
}

impl Default for TeroParams {
    fn default() -> Self {
        TeroParams {
            lat_gap_ms: 15,
            stable_len: SimDuration::from_mins(30),
            max_spikes: 0.5,
            min_weight: 0.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = TeroParams::default();
        assert_eq!(p.lat_gap_ms, 15);
        assert_eq!(p.stable_len.as_mins(), 30);
        assert!((p.max_spikes - 0.5).abs() < 1e-12);
        assert!((p.min_weight - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stable_points_from_cadence() {
        let p = TeroParams::default();
        assert_eq!(p.stable_points(), 6, "30 min at 5-min cadence");
        let p5 = p.with_stable_len(SimDuration::from_mins(5));
        assert_eq!(p5.stable_points(), 1);
        // Degenerate StableLen still demands at least one point.
        let p0 = p.with_stable_len(SimDuration::ZERO);
        assert_eq!(p0.stable_points(), 1);
    }

    #[test]
    fn builders() {
        let p = TeroParams::default()
            .with_lat_gap_ms(8)
            .with_max_spikes(1.5);
        assert_eq!(p.lat_gap_ms, 8);
        assert!((p.max_spikes - 1.0).abs() < 1e-12, "clamped to 1");
    }
}
