//! Table 4 + Fig 5a — miss and error rates of the OCR engines and their
//! combination, plus the §3.2 design ablations.
//!
//! Protocol follows App. H.2: render thumbnails with a realistic scenario
//! mix (typical / light-font / occluded / clock, across the per-streamer
//! quirk distribution), run each engine alone and the full Tero front-end
//! (crop → 3 engines → vote → reprocess), and compare against ground
//! truth. Repeated `--reps` times over fresh samples; averages reported.
//!
//! Paper's Table 4 (on real thumbnails):
//! EasyOCR 5.75 % missed / 8.31 % wrong; PaddleOCR 5.84 / 9.96;
//! Tesseract 15.52 / 8.77; Tero 28.37 / 3.70.
//! The *shape* to reproduce: individual engines extract more but err 2-3×
//! more than the voted combination; the combination trades extraction for
//! accuracy.
//!
//! Fig 5a: the distribution of correct / incorrect / missing extractions
//! over the latency axis shows no bias (missing and incorrect values are
//! not concentrated at high latencies).
//!
//! Usage: `tab04_fig05_ocr_errors [--n 4000] [--reps 3]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::imageproc::roi_for_game;
use tero_geoparse::{Gazetteer, PlaceKind};
use tero_types::{SimRng, SimTime};
use tero_vision::combine::{CombineOutcome, OcrCombiner};
use tero_vision::ocr::OcrEngineKind;
use tero_world::sessions::TruthSample;
use tero_world::streamer::Streamer;
use tero_world::twitch::{build_scene, render_thumbnail};

#[derive(Default, Clone, Copy, Serialize)]
struct Rates {
    missed: f64,
    wrong: f64,
}

#[derive(Serialize)]
struct Output {
    engines: Vec<(String, Rates)>,
    tero: Rates,
    ablation_no_crop: Rates,
    ablation_single_best: Rates,
    fig5a_bins: Vec<Fig5Bin>,
    digit_drop_share_pct: f64,
}

#[derive(Serialize, Clone, Copy, Default)]
struct Fig5Bin {
    latency_lo: u32,
    correct: u64,
    incorrect: u64,
    missing: u64,
}

fn main() {
    let n = arg_usize("--n", 4_000);
    let reps = arg_usize("--reps", 3);
    header("Table 4 / Fig 5a: OCR miss and error rates");
    println!("({n} thumbnails x {reps} repetitions)");

    let gaz = Gazetteer::new();
    let homes: Vec<_> = gaz
        .places()
        .iter()
        .filter(|p| p.kind == PlaceKind::City)
        .cloned()
        .collect();

    let combiner = OcrCombiner::new();
    let mut engine_miss = [0u64; 3];
    let mut engine_wrong = [0u64; 3];
    let mut engine_total = 0u64;
    let mut tero_miss = 0u64;
    let mut tero_wrong = 0u64;
    let mut nocrop_miss = 0u64;
    let mut nocrop_wrong = 0u64;
    let mut digit_drops = 0u64;
    let mut bins: Vec<Fig5Bin> = (0..6)
        .map(|i| Fig5Bin {
            latency_lo: i * 50,
            ..Default::default()
        })
        .collect();

    for rep in 0..reps {
        let mut rng = SimRng::new(4_242 + rep as u64);
        for i in 0..n {
            let home = homes[rng.range_usize(0, homes.len())].clone();
            let streamer = Streamer::generate(&gaz, home, SimTime::from_hours(1_000), &mut rng);
            let game = streamer.games[0];
            // Latency mix spanning the realistic range.
            let truth = 5 + rng.below(245) as u32;
            let sample = TruthSample {
                t: SimTime::from_mins(7 * i as u64 + 13),
                true_rtt_ms: truth as f64,
                displayed_ms: truth,
                server_idx: 0,
                in_spike: false,
            };
            let thumb = render_thumbnail(&streamer, game, &sample);
            let roi = roi_for_game(game);
            let crop = thumb.crop(roi.0, roi.1, roi.2, roi.3);

            // Individual engines, each with its own preprocessing policy
            // (as when run standalone).
            engine_total += 1;
            for (k, kind) in OcrEngineKind::ALL.iter().enumerate() {
                match combiner.extract_single(&crop, *kind) {
                    None => engine_miss[k] += 1,
                    Some(v) if v != truth => engine_wrong[k] += 1,
                    _ => {}
                }
            }

            // Tero: full front-end.
            let outcome = combiner.extract(&crop);
            let slot = &mut bins[(truth / 50).min(5) as usize];
            match outcome {
                CombineOutcome::NoMeasurement => {
                    tero_miss += 1;
                    slot.missing += 1;
                }
                CombineOutcome::Extracted { primary, .. } if primary != truth => {
                    tero_wrong += 1;
                    slot.incorrect += 1;
                    // Digit drop: the read value is a strict suffix of the
                    // truth (§4.2.2: 68.42 % of errors).
                    let t = truth.to_string();
                    let p = primary.to_string();
                    if t.len() > p.len() && t.ends_with(&p) {
                        digit_drops += 1;
                    }
                }
                _ => {
                    slot.correct += 1;
                }
            }

            // Ablation: whole-thumbnail OCR (no game-UI crop).
            match combiner.extract(&thumb) {
                CombineOutcome::NoMeasurement => nocrop_miss += 1,
                CombineOutcome::Extracted { primary, .. } if primary != truth => nocrop_wrong += 1,
                _ => {}
            }
            let _ = build_scene(&streamer, game, &sample);
        }
    }

    let total = engine_total as f64;
    let pct = |x: u64| 100.0 * x as f64 / total;
    let engines: Vec<(String, Rates)> = OcrEngineKind::ALL
        .iter()
        .enumerate()
        .map(|(k, kind)| {
            (
                kind.name().to_string(),
                Rates {
                    missed: pct(engine_miss[k]),
                    wrong: pct(engine_wrong[k]),
                },
            )
        })
        .collect();
    let tero = Rates {
        missed: pct(tero_miss),
        wrong: pct(tero_wrong),
    };
    let no_crop = Rates {
        missed: pct(nocrop_miss),
        wrong: pct(nocrop_wrong),
    };
    // Single-best-engine ablation: the engine with the lowest error.
    let best = engines
        .iter()
        .min_by(|a, b| a.1.wrong.partial_cmp(&b.1.wrong).unwrap())
        .unwrap()
        .1;

    println!();
    println!("{:<22} {:>10} {:>10}   (paper)", "", "missed %", "wrong %");
    let paper = [
        ("tesseract-like", 15.52, 8.77),
        ("easyocr-like", 5.75, 8.31),
        ("paddleocr-like", 5.84, 9.96),
    ];
    for (name, r) in &engines {
        let p = paper.iter().find(|(n, _, _)| n == name).unwrap();
        println!(
            "{:<22} {:>9.2}% {:>9.2}%   ({:>5.2}% / {:>4.2}%)",
            name, r.missed, r.wrong, p.1, p.2
        );
    }
    println!(
        "{:<22} {:>9.2}% {:>9.2}%   (28.37% / 3.70%)",
        "Tero (crop+vote)", tero.missed, tero.wrong
    );
    println!();
    println!("ablations:");
    println!(
        "  whole-thumbnail OCR (no game-UI crop): missed {:.2}%  wrong {:.2}%",
        no_crop.missed, no_crop.wrong
    );
    println!(
        "  best single engine (no voting):        missed {:.2}%  wrong {:.2}%",
        best.missed, best.wrong
    );
    let drop_share = if tero_wrong > 0 {
        100.0 * digit_drops as f64 / tero_wrong as f64
    } else {
        0.0
    };
    println!();
    println!("digit drops among Tero's errors: {drop_share:.1}% (paper: 68.42%)");
    println!();
    println!("Fig 5a — extractions by latency bin (no high-latency bias expected):");
    println!(
        "{:>10} {:>9} {:>10} {:>9} {:>8}",
        "bin [ms]", "correct", "incorrect", "missing", "miss %"
    );
    for b in &bins {
        let tot = (b.correct + b.incorrect + b.missing).max(1);
        println!(
            "{:>4}-{:<5} {:>9} {:>10} {:>9} {:>7.1}%",
            b.latency_lo,
            b.latency_lo + 50,
            b.correct,
            b.incorrect,
            b.missing,
            100.0 * b.missing as f64 / tot as f64
        );
    }

    write_json(
        "tab04_fig05_ocr_errors",
        &Output {
            engines,
            tero,
            ablation_no_crop: no_crop,
            ablation_single_best: best,
            fig5a_bins: bins,
            digit_drop_share_pct: drop_share,
        },
    );
}
