//! Per-stage metric bundles for staged execution engines.

use crate::registry::{CounterHandle, HistogramHandle, Registry};
use crate::timer::StageTimer;

/// The standard metric bundle for one named pipeline stage.
///
/// A staged engine runs each stage many times (once per window), so the
/// handles are resolved once and reused: `stage.<name>.runs` counts
/// invocations, `stage.<name>.records_in` / `stage.<name>.records_out`
/// count the typed records flowing through, and `stage.<name>.us` is the
/// wall-clock latency histogram (populated only while the registry's
/// timing knob is on, like every other `*_us` histogram).
#[derive(Clone)]
pub struct StageMetrics {
    /// Invocations of this stage (one per window it ran in).
    pub runs: CounterHandle,
    /// Records the stage consumed.
    pub records_in: CounterHandle,
    /// Records the stage produced.
    pub records_out: CounterHandle,
    /// Wall-clock stage latency in µs (timing knob gated).
    pub us: HistogramHandle,
    registry: Registry,
}

impl StageMetrics {
    /// Resolve (and eagerly register) the four `stage.<name>.*` metrics.
    pub fn new(registry: &Registry, name: &str) -> Self {
        StageMetrics {
            runs: registry.counter(&format!("stage.{name}.runs")),
            records_in: registry.counter(&format!("stage.{name}.records_in")),
            records_out: registry.counter(&format!("stage.{name}.records_out")),
            us: registry.histogram(&format!("stage.{name}.us")),
            registry: registry.clone(),
        }
    }

    /// Start one stage invocation: bumps `runs` and returns the RAII
    /// latency guard (a no-op unless timing is enabled).
    pub fn begin(&self) -> StageTimer {
        self.runs.inc();
        self.registry.stage_timer(&self.us)
    }
}

impl std::fmt::Debug for StageMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageMetrics")
            .field("runs", &self.runs.get())
            .field("records_in", &self.records_in.get())
            .field("records_out", &self.records_out.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_the_standard_names() {
        let r = Registry::new();
        let m = StageMetrics::new(&r, "extract");
        assert_eq!(
            r.metric_names(),
            vec![
                "stage.extract.records_in",
                "stage.extract.records_out",
                "stage.extract.runs",
                "stage.extract.us",
            ]
        );
        {
            let _t = m.begin();
        }
        m.records_in.add(10);
        m.records_out.add(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("stage.extract.runs"), Some(1));
        assert_eq!(snap.counter("stage.extract.records_in"), Some(10));
        assert_eq!(snap.counter("stage.extract.records_out"), Some(7));
        // Timing off by default: begin() never touched the clock.
        assert_eq!(m.us.count(), 0);
    }

    #[test]
    fn clones_share_handles() {
        let r = Registry::new();
        let a = StageMetrics::new(&r, "stitch");
        let b = a.clone();
        a.runs.inc();
        b.runs.inc();
        assert_eq!(r.snapshot().counter("stage.stitch.runs"), Some(2));
    }
}
