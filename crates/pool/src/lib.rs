//! Deterministic work-stealing thread pool for the Tero pipeline.
//!
//! The paper's pipeline stages (§3 thumbnail extraction, §3.3 per-stream
//! cleaning, §5/§6 per-group analysis) are embarrassingly parallel: every
//! task reads shared immutable state and produces one independent result.
//! [`Pool::par_map`] exploits that shape while keeping the output
//! *byte-identical* to the sequential loop it replaces:
//!
//! * every task is stamped with its input index when it is enqueued;
//! * workers pull from their own deque first, then refill from a global
//!   injector of contiguous chunks, then steal from the back of a victim's
//!   deque — so the *execution* order is scheduling-dependent;
//! * results are merged by input index after the scope joins — so the
//!   *observed* order never is.
//!
//! Determinism contract: for a pure `f`, `pool.par_map(items, f)` returns
//! exactly `items.iter().map(f).collect()` for every worker count,
//! including the degenerate `workers == 1` configuration, which runs the
//! loop inline on the caller's thread without spawning anything (the exact
//! legacy path).
//!
//! The pool is built entirely on the workspace's vendored
//! `parking_lot`/`crossbeam` shims and `std::thread::scope` — no external
//! dependencies, no unsafe code.
//!
//! ```
//! use tero_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use tero_obs::{CounterHandle, GaugeHandle, Registry};

/// The number of workers a freshly built machine should use: one per
/// available hardware thread, falling back to 1 when the capacity cannot
/// be queried.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Metric handles, resolved once when the pool is instrumented.
struct PoolObs {
    /// `pool.tasks`: tasks executed (across all `par_map` calls).
    tasks: CounterHandle,
    /// `pool.steals`: successful steals of work from another worker's deque.
    steals: CounterHandle,
    /// `pool.queue_depth`: chunks waiting in the global injector (the
    /// high-watermark records the largest backlog ever enqueued).
    queue_depth: GaugeHandle,
}

/// A work-stealing thread pool with deterministic, index-ordered results.
///
/// The pool itself is a lightweight description (worker count + metric
/// handles); OS threads only exist inside a [`Pool::par_map`] call, via a
/// scoped spawn, so borrowing closures need no `'static` bounds and a
/// dropped pool leaks nothing.
pub struct Pool {
    workers: usize,
    obs: Option<PoolObs>,
}

impl Pool {
    /// A pool running `workers` worker threads per `par_map` call.
    /// `workers == 0` is treated as 1. `workers == 1` never spawns: it is
    /// the exact sequential path.
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
            obs: None,
        }
    }

    /// A pool reporting `pool.*` metrics into `registry`.
    pub fn with_metrics(workers: usize, registry: &Registry) -> Self {
        let mut pool = Pool::new(workers);
        pool.obs = Some(PoolObs {
            tasks: registry.counter("pool.tasks"),
            steals: registry.counter("pool.steals"),
            queue_depth: registry.gauge("pool.queue_depth"),
        });
        pool
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `items` on the pool, returning results in input order.
    ///
    /// `f` must be pure with respect to ordering (it may bump atomics or
    /// write to thread-safe stores, but must not depend on *when* other
    /// items run). Panics in `f` propagate to the caller after the scope
    /// unwinds.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// Like [`Pool::par_map`], but `f` also receives each item's input
    /// index — the hook tracing contexts use to stamp fan-out tasks with a
    /// schedule-independent identity (`tero-trace` derives span ids from
    /// the index, never from the worker that ran the task).
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if let Some(obs) = &self.obs {
            obs.tasks.add(n as u64);
        }
        let workers = self.workers.min(n);
        if workers <= 1 {
            // Exact legacy path: same thread, same order, no machinery.
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        // Carve the index space into contiguous chunks. Small chunks give
        // the injector and the stealers something to balance with; one
        // chunk per worker would devolve into static partitioning.
        let chunk = (n / (workers * 8)).clamp(1, 64);
        let mut injector: VecDeque<Range<usize>> = VecDeque::new();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            injector.push_back(start..end);
            start = end;
        }
        if let Some(obs) = &self.obs {
            obs.queue_depth.set(injector.len() as i64);
        }
        let injector = Mutex::new(injector);
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();

        let mut merged: Vec<(usize, R)> = Vec::with_capacity(n);
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let injector = &injector;
                    let deques = &deques;
                    let f = &f;
                    let obs = self.obs.as_ref();
                    s.spawn(move || worker_loop(me, items, injector, deques, f, obs))
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(part) => merged.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        debug_assert_eq!(merged.len(), n, "every task produced one result");
        // The ordered merge: index stamps restore the input order exactly,
        // however the chunks were scheduled or stolen.
        merged.sort_unstable_by_key(|(i, _)| *i);
        merged.into_iter().map(|(_, r)| r).collect()
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .field("instrumented", &self.obs.is_some())
            .finish()
    }
}

/// One worker: drain own deque → refill from the injector → steal.
fn worker_loop<T, R, F>(
    me: usize,
    items: &[T],
    injector: &Mutex<VecDeque<Range<usize>>>,
    deques: &[Mutex<VecDeque<usize>>],
    f: &F,
    obs: Option<&PoolObs>,
) -> Vec<(usize, R)>
where
    F: Fn(usize, &T) -> R,
{
    let mut out = Vec::new();
    loop {
        // Own deque first (front: the oldest locally queued index).
        let next = deques[me].lock().pop_front();
        if let Some(i) = next {
            out.push((i, f(i, &items[i])));
            continue;
        }
        // Refill from the global injector.
        let range = {
            let mut inj = injector.lock();
            let range = inj.pop_front();
            if range.is_some() {
                if let Some(obs) = obs {
                    obs.queue_depth.set(inj.len() as i64);
                }
            }
            range
        };
        if let Some(range) = range {
            deques[me].lock().extend(range);
            continue;
        }
        // Steal the back half of the fullest victim's deque.
        let mut stolen: VecDeque<usize> = VecDeque::new();
        for offset in 1..deques.len() {
            let victim = (me + offset) % deques.len();
            let mut v = deques[victim].lock();
            let take = v.len().div_ceil(2);
            if take > 0 {
                let keep = v.len() - take;
                stolen = v.split_off(keep);
                break;
            }
        }
        if stolen.is_empty() {
            // Injector drained and every visible deque empty: whatever
            // remains is held by workers that will finish it themselves.
            break;
        }
        if let Some(obs) = obs {
            obs.steals.inc();
        }
        let mut own = deques[me].lock();
        *own = stolen;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_for_every_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 8, 16] {
            let pool = Pool::new(workers);
            assert_eq!(
                pool.par_map(&items, |&x| x * 3 + 1),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn indexed_map_sees_input_indices() {
        let items: Vec<u64> = (0..500).map(|x| x * 10).collect();
        for workers in [1, 4, 8] {
            let pool = Pool::new(workers);
            let out = pool.par_map_indexed(&items, |i, &x| (i, x));
            let expected: Vec<(usize, u64)> =
                items.iter().enumerate().map(|(i, &x)| (i, x)).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let caller = std::thread::current().id();
        let pool = Pool::new(1);
        let ids = pool.par_map(&[0u8; 4], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller), "no threads spawned");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn skewed_work_triggers_steals() {
        // The first chunk's tasks are ~1000x heavier: without stealing
        // the other workers would idle while worker 0 grinds.
        let registry = Registry::new();
        let pool = Pool::with_metrics(4, &registry);
        let items: Vec<u64> = (0..256).collect();
        let heavy = AtomicUsize::new(0);
        let out = pool.par_map(&items, |&x| {
            if x < 8 {
                // A deterministic spin standing in for a slow OCR frame.
                let mut acc = 0u64;
                for i in 0..2_000_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(i ^ x);
                }
                heavy.fetch_add(1, Ordering::Relaxed);
                acc | 1
            } else {
                x
            }
        });
        assert_eq!(out.len(), 256);
        assert_eq!(heavy.load(Ordering::Relaxed), 8);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.tasks"), Some(256));
        assert!(
            snap.counter("pool.steals").unwrap() > 0,
            "imbalanced load must be rebalanced by stealing"
        );
    }

    #[test]
    fn queue_depth_watermark_reflects_backlog() {
        let registry = Registry::new();
        let pool = Pool::with_metrics(2, &registry);
        let items: Vec<u32> = (0..640).collect();
        let _ = pool.par_map(&items, |&x| x);
        let snap = registry.snapshot();
        let depth = snap.gauges.iter().find(|g| g.name == "pool.queue_depth");
        let depth = depth.expect("gauge registered");
        assert_eq!(depth.value, 0, "injector fully drained");
        assert!(depth.high_watermark > 0, "backlog was observed");
    }

    #[test]
    fn panics_propagate() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        }));
        assert!(result.is_err(), "worker panic reaches the caller");
    }

    #[test]
    fn results_identical_under_repeated_runs() {
        // Stealing makes the schedule nondeterministic; the merge must
        // hide that completely.
        let pool = Pool::new(8);
        let items: Vec<u64> = (0..2048).collect();
        let reference = pool.par_map(&items, |&x| x.wrapping_mul(0x9e3779b9));
        for _ in 0..5 {
            assert_eq!(
                pool.par_map(&items, |&x| x.wrapping_mul(0x9e3779b9)),
                reference
            );
        }
    }
}
