//! Fig 10 — League-of-Legends latency for US states (and Ontario) within
//! the same 500-km-thick "doughnut" around the Chicago server.
//!
//! Paper's headline: states in the same doughnut differ by as much as
//! 30 ms in their 75th percentile — District of Columbia and North
//! Carolina poor, Missouri/Ontario/Texas good — which cannot be explained
//! by distance and points at eyeball-ISP quality.
//!
//! Usage: `fig10_us_doughnuts [--per 60] [--days 8]`

use serde::Serialize;
use tero_bench::{arg_usize, ascii_box, header, run_lol_world, write_json};
use tero_types::{GameId, Location};

#[derive(Serialize)]
struct Row {
    region: String,
    doughnut: &'static str,
    corrected_km: f64,
    p25: f64,
    p50: f64,
    p75: f64,
    p95: f64,
    n: usize,
}

fn main() {
    let per = arg_usize("--per", 60);
    let days = arg_usize("--days", 8) as u64;

    // Paper's doughnut membership (Fig 10a: 500-1000 km, 10b: 1000-1500).
    let near: &[(&str, &str)] = &[
        ("United States", "District of Columbia"),
        ("United States", "Georgia"),
        ("United States", "Kentucky"),
        ("United States", "Minnesota"),
        ("United States", "Missouri"),
        ("United States", "North Carolina"),
        ("Canada", "Ontario"),
        ("United States", "Pennsylvania"),
        ("United States", "Tennessee"),
        ("United States", "Virginia"),
    ];
    let far: &[(&str, &str)] = &[
        ("United States", "Georgia"),
        ("United States", "Massachusetts"),
        ("United States", "New Jersey"),
        ("United States", "North Carolina"),
        ("United States", "Oklahoma"),
        ("United States", "Pennsylvania"),
        ("United States", "Texas"),
    ];
    let mut locations: Vec<Location> = near
        .iter()
        .chain(far.iter())
        .map(|(c, r)| Location::region(*c, *r))
        .collect();
    locations.sort();
    locations.dedup();

    header("Fig 10: US states in Chicago doughnuts (building world, running pipeline)");
    let (_world, report) = run_lol_world(&locations, per, days, 1010);

    let mut rows = Vec::new();
    for (doughnut, members) in [("500-1000 km", near), ("1000-1500 km", far)] {
        println!();
        println!("({doughnut} from the Chicago server)");
        let mut sub: Vec<Row> = Vec::new();
        for (c, r) in members {
            let loc = Location::region(*c, *r);
            let Some(dist) = report.distribution(&loc, GameId::LeagueOfLegends) else {
                eprintln!("warning: no distribution for {loc}");
                continue;
            };
            sub.push(Row {
                region: format!("{r} ({})", if *c == "Canada" { "CA" } else { "US" }),
                doughnut,
                corrected_km: dist.corrected_distance_km.unwrap_or(0.0),
                p25: dist.stats.p25,
                p50: dist.stats.p50,
                p75: dist.stats.p75,
                p95: dist.stats.p95,
                n: dist.stats.n,
            });
        }
        sub.sort_by(|a, b| a.p75.partial_cmp(&b.p75).unwrap());
        for r in &sub {
            let stats = tero_stats::BoxplotStats {
                n: r.n,
                mean: r.p50,
                p5: r.p25,
                p25: r.p25,
                p50: r.p50,
                p75: r.p75,
                p95: r.p95,
            };
            println!(
                "  {:<26} [{}] p75 {:>5.1} ms ({:>4.0} km)",
                r.region,
                ascii_box(&stats, 0.0, 80.0, 40),
                r.p75,
                r.corrected_km
            );
        }
        if let (Some(best), Some(worst)) = (sub.first(), sub.last()) {
            println!(
                "  → spread within the doughnut: {:.0} ms (best {} vs worst {}; paper: up to 30 ms)",
                worst.p75 - best.p75,
                best.region,
                worst.region
            );
        }
        rows.extend(sub);
    }

    write_json("fig10_us_doughnuts", &rows);
}
