//! Fig 5b / §4.2.3 — how many of image-processing's incorrect measurements
//! does data-analysis catch?
//!
//! Runs the full pipeline with FullOcr extraction on a moderate world,
//! joins every extracted measurement against ground truth, and audits the
//! anomaly detector:
//!
//! * detected: the wrong value was flagged (glitch/spike, corrected or
//!   discarded);
//! * missed: the wrong value survived into the clean series.
//!
//! Paper: anomaly detection misses ~30 % of incorrect measurements —
//! but the missed ones are close to their neighbours (within LatGap, e.g.
//! "101 misread as 107"), so they barely affect regional analysis. Also
//! audits false positives (paper: 25.87 % of non-zero glitches were real
//! values, typically location/server changes interrupted mid-stream).
//!
//! Usage: `fig05b_glitch_audit [--n 40] [--days 4]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::pipeline::{ExtractionMode, Tero};
use tero_types::AnonId;
use tero_world::{World, WorldConfig};

#[derive(Serialize, Default)]
struct Output {
    incorrect_total: usize,
    detected: usize,
    missed: usize,
    missed_within_latgap: usize,
    detected_pct: f64,
    missed_small_error_pct: f64,
    false_positive_pct: f64,
}

fn main() {
    let n = arg_usize("--n", 40);
    let days = arg_usize("--days", 4) as u64;
    header("Fig 5b: incorrect measurements detected vs missed by data-analysis");

    let mut world = World::build(WorldConfig {
        seed: 55,
        n_streamers: n,
        days,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 3,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    // Join extracted samples against truth.
    let salt = tero.salt;
    let find_streamer = |anon: &AnonId| {
        world
            .streamers()
            .iter()
            .find(|s| AnonId::from_streamer(&s.id, salt) == *anon)
    };

    let mut out = Output::default();
    let mut clean_wrong = 0usize;
    let mut clean_total = 0usize;
    let mut discarded_right = 0usize;
    let mut discarded_total = 0usize;

    for ((anon, game), series) in &report.streams {
        let Some(streamer) = find_streamer(anon) else {
            continue;
        };
        let clean: std::collections::HashSet<(u64, u32)> = report
            .anomalies
            .get(&(*anon, *game))
            .map(|r| {
                r.clean_samples()
                    .iter()
                    .map(|s| (s.at.as_micros(), s.latency_ms))
                    .collect()
            })
            .unwrap_or_default();
        // Samples inside glitch-flagged segments (the paper's false-
        // positive audit is specifically about glitches, §H.3).
        let glitched: std::collections::HashSet<(u64, u32)> = report
            .anomalies
            .get(&(*anon, *game))
            .map(|r| {
                r.segments
                    .iter()
                    .zip(&r.labels)
                    .filter(|(_, l)| {
                        matches!(
                            l,
                            tero_core::analysis::anomaly::SegmentLabel::DiscardedGlitch
                                | tero_core::analysis::anomaly::SegmentLabel::CorrectedGlitch
                        )
                    })
                    .flat_map(|(seg, _)| {
                        seg.samples.iter().map(|s| (s.at.as_micros(), s.latency_ms))
                    })
                    .collect()
            })
            .unwrap_or_default();
        for s in series.iter().flat_map(|st| &st.samples) {
            let Some(truth) = world.twitch.truth_sample(streamer.id.as_str(), s.at) else {
                continue;
            };
            if truth.displayed_ms == 0 {
                continue;
            }
            let survived = clean.contains(&(s.at.as_micros(), s.latency_ms));
            let wrong = s.latency_ms != truth.displayed_ms;
            if wrong {
                out.incorrect_total += 1;
                if survived {
                    out.missed += 1;
                    let err = s.latency_ms.abs_diff(truth.displayed_ms);
                    if err <= tero.params.lat_gap_ms {
                        out.missed_within_latgap += 1;
                    }
                } else {
                    out.detected += 1;
                }
            }
            if survived {
                clean_total += 1;
                if wrong {
                    clean_wrong += 1;
                }
            }
            // A corrected-glitch sample carries the swapped-in alternative,
            // so compare against the originally extracted value's key too.
            if glitched.contains(&(s.at.as_micros(), s.latency_ms))
                || s.alternative_ms
                    .is_some_and(|alt| glitched.contains(&(s.at.as_micros(), alt)))
            {
                discarded_total += 1;
                if !wrong {
                    discarded_right += 1;
                }
            }
        }
    }

    out.detected_pct = 100.0 * out.detected as f64 / out.incorrect_total.max(1) as f64;
    out.missed_small_error_pct = 100.0 * out.missed_within_latgap as f64 / out.missed.max(1) as f64;
    out.false_positive_pct = 100.0 * discarded_right as f64 / discarded_total.max(1) as f64;

    println!();
    println!("incorrect measurements extracted: {}", out.incorrect_total);
    println!(
        "  detected by data-analysis:  {} ({:.1} %)   (paper: ~74.6 % with alt-correction + discards)",
        out.detected, out.detected_pct
    );
    println!(
        "  missed (survived cleaning): {} ({:.1} %)   (paper: ~30 % missed)",
        out.missed,
        100.0 - out.detected_pct
    );
    println!(
        "  of missed, within LatGap of the truth: {:.1} %  (paper: >50 % are small errors like 101→107)",
        out.missed_small_error_pct
    );
    println!(
        "residual error rate in the clean series: {:.2} % ({} of {})",
        100.0 * clean_wrong as f64 / clean_total.max(1) as f64,
        clean_wrong,
        clean_total
    );
    println!(
        "false positives among glitch-flagged points: {:.1} %  (paper: 25.87 % of non-zero glitches)",
        out.false_positive_pct
    );

    write_json("fig05b_glitch_audit", &out);
}
