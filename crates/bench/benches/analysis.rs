//! Data-analysis throughput: segmentation, anomaly detection, clustering.
//!
//! The paper notes that "processing time is almost independent of
//! parameters" (App. I) — the detector touches each measurement a bounded
//! number of times. These benches verify the per-point cost and the
//! parameter independence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tero_core::analysis::anomaly::detect_anomalies;
use tero_core::analysis::clusters::cluster_segments;
use tero_core::analysis::segments::segment_stream;
use tero_types::{LatencySample, SimDuration, SimRng, SimTime, TeroParams};

/// A realistic series: a stable base with spikes, glitches and one level
/// shift.
fn synth_series(n: usize, seed: u64) -> Vec<LatencySample> {
    let mut rng = SimRng::new(seed);
    let mut out = Vec::with_capacity(n);
    let mut level = 45.0;
    for i in 0..n {
        if rng.chance(0.002) {
            level = if level < 60.0 { 95.0 } else { 45.0 };
        }
        let mut v = level + rng.normal_with(0.0, 2.0);
        if rng.chance(0.02) {
            v += 40.0 + rng.f64() * 60.0; // spike
        }
        if rng.chance(0.01) {
            v = (v as u32 % 10) as f64 + 1.0; // digit-drop glitch
        }
        out.push(LatencySample::new(
            SimTime::from_mins(5 * i as u64),
            v.max(1.0) as u32,
        ));
    }
    out
}

fn bench_segmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmentation");
    for n in [500usize, 5_000, 50_000] {
        let series = synth_series(n, 1);
        let params = TeroParams::default();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &series, |b, s| {
            b.iter(|| segment_stream(0, s, &params));
        });
    }
    group.finish();
}

fn bench_anomaly_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("anomaly_detection");
    for n in [500usize, 5_000] {
        let series = synth_series(n, 2);
        let params = TeroParams::default();
        let segments = segment_stream(0, &series, &params);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &segments, |b, segs| {
            b.iter(|| detect_anomalies(segs.clone(), &params));
        });
    }
    group.finish();
}

fn bench_parameter_independence(c: &mut Criterion) {
    // App. I: processing time should barely move with LatGap/StableLen.
    let series = synth_series(5_000, 3);
    let mut group = c.benchmark_group("anomaly_params");
    for lat_gap in [8u32, 15, 25] {
        let params = TeroParams::default().with_lat_gap_ms(lat_gap);
        let segments = segment_stream(0, &series, &params);
        group.bench_with_input(
            BenchmarkId::new("lat_gap", lat_gap),
            &segments,
            |b, segs| {
                b.iter(|| detect_anomalies(segs.clone(), &params));
            },
        );
    }
    for stable_min in [15u64, 30, 60] {
        let params = TeroParams::default().with_stable_len(SimDuration::from_mins(stable_min));
        let segments = segment_stream(0, &series, &params);
        group.bench_with_input(
            BenchmarkId::new("stable_len", stable_min),
            &segments,
            |b, segs| {
                b.iter(|| detect_anomalies(segs.clone(), &params));
            },
        );
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let series = synth_series(20_000, 4);
    let params = TeroParams::default();
    let segments = segment_stream(0, &series, &params);
    let stable: Vec<_> = segments.iter().filter(|s| s.stable).collect();
    c.bench_function("cluster_segments_20k", |b| {
        b.iter(|| cluster_segments(&stable, params.lat_gap_ms));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets =
    bench_segmentation,
    bench_anomaly_detection,
    bench_parameter_independence,
    bench_clustering
);
criterion_main!(benches);
