//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's nicer API surface:
//! `lock()` / `read()` / `write()` return guards directly (poisoning is
//! ignored — a panic while holding a lock does not wedge other threads),
//! and `Condvar::wait_until` takes a deadline `Instant` like parking_lot's.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion lock (std-backed, poison-ignoring).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait_until`] can move
/// it out across the wait and put the reacquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Block until notified or `deadline` passes, whichever comes first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

/// A reader-writer lock (std-backed, poison-ignoring).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
        drop(g);
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            if r.timed_out() {
                break;
            }
        }
        assert!(*done);
        drop(done);
        handle.join().unwrap();
    }
}
