//! tero-trace span overhead: what opening and closing a span costs with
//! recording disabled (the default — every pipeline run pays this) and
//! enabled (opt-in debugging). The numbers feed docs/PERFORMANCE.md; the
//! key claim is that a disabled span is one atomic load, within 2× of a
//! disabled `StageTimer`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tero_trace::{Level, SampleKey, SampleState, Tracer};
use tero_types::{AnonId, GameId, SimTime};

fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(1_000));

    // Default configuration: recording off. Span creation must be ~free so
    // the instrumented pipeline costs nothing when nobody is looking.
    let off = Tracer::new();
    group.bench_function("span_disabled_1k", |b| {
        b.iter(|| {
            for _ in 0..1_000 {
                let _sp = off.span("bench.span");
            }
        })
    });

    // Opt-in configuration: recording on — two records plus the journal.
    group.bench_function("span_enabled_1k", |b| {
        b.iter(|| {
            let on = Tracer::new();
            on.set_enabled(true);
            for _ in 0..1_000 {
                let _sp = on.span("bench.span");
            }
        })
    });

    // Flight-recorder mode: same writes, bounded memory, ring eviction.
    group.bench_function("span_ring_1k", |b| {
        b.iter(|| {
            let ring = Tracer::new();
            ring.set_enabled(true);
            ring.set_flight_recorder(Some(64));
            for _ in 0..1_000 {
                let _sp = ring.span("bench.span");
            }
        })
    });

    let on = Tracer::new();
    on.set_enabled(true);
    let root = on.span("bench.root");
    group.bench_function("event_enabled_1k", |b| {
        b.iter(|| {
            let scratch = Tracer::new();
            scratch.set_enabled(true);
            let sp = scratch.span("bench.root");
            for _ in 0..1_000 {
                sp.event(Level::Debug, "bench event");
            }
        })
    });
    drop(root);
    group.finish();
}

fn bench_ledger(c: &mut Criterion) {
    // The provenance ledger is always on, so ingest/resolve sit on the
    // per-thumbnail hot path alongside the funnel counters.
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("ledger_ingest_resolve_1k", |b| {
        let tracer = Tracer::new();
        let ledger = tracer.ledger();
        b.iter(|| {
            ledger.reset();
            for i in 0..1_000u64 {
                let key = SampleKey {
                    anon: AnonId(i),
                    game: GameId::Dota2,
                    at: SimTime::from_micros(i),
                };
                ledger.ingest(key);
                ledger.resolve(&key, SampleState::Published);
            }
            ledger.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spans, bench_ledger);
criterion_main!(benches);
