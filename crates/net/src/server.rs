//! One store shard: a local KV + object store behind a frame handler.
//!
//! A [`StoreServer`] is what a `shard{N}p` / `shard{N}r` host runs. It
//! owns plain in-process stores and executes decoded requests through
//! [`tero_store::apply_kv`] / [`tero_store::apply_obj`] — the same
//! executors a loopback test double uses, so server behaviour is the
//! local-store behaviour by construction.
//!
//! **Exactly-once:** list mutations (`rpush`, `lpop`) are not
//! idempotent, and the transport may lose a *response* after the server
//! already applied the request. The server therefore remembers, per
//! client, the last `seq` it executed and the encoded response it sent;
//! a frame re-carrying that `seq` is answered from cache without
//! touching the stores. The client bumps `seq` once per logical
//! operation and reuses it on retries, which makes every retry safe.
//!
//! **Tracing:** when a tracer is attached via [`StoreServer::set_trace`]
//! and an incoming frame carries a [`TraceContext`], handling is wrapped
//! in a `server.*` span parented (cross-process) to the client's
//! operation span. Dedup replays record a `server.replay` span instead,
//! so a merged mesh trace shows exactly which legs re-executed and which
//! were answered from cache.
//!
//! **Operations plane:** [`OpsRequest`] frames are answered in-band from
//! the same handler — [`OpsRequest::Health`] reports the host's live
//! [`HostHealth`] facts (key count, object bytes, frames executed,
//! clients seen) without touching the dedup cache or store contents.

use crate::frame::{decode, encode, Frame, HostHealth, OpsRequest, OpsResponse, Payload};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tero_store::{apply_kv, apply_obj, KvStore, ObjectStore};
use tero_trace::{SpanGuard, TraceContext, Tracer};

struct ServerInner {
    name: String,
    kv: KvStore,
    objects: ObjectStore,
    /// Per-client retry cache: client id → (last seq, encoded response).
    dedup: Mutex<HashMap<u64, (u64, Vec<u8>)>>,
    /// Store request frames executed (dedup replays and ops polls
    /// excluded) — reported via [`OpsRequest::Health`].
    frames: AtomicU64,
    /// Host-local tracer for `server.*` spans; first `set_trace` wins.
    trace: OnceLock<Tracer>,
}

/// One store shard host. Cloning shares the underlying stores.
#[derive(Clone)]
pub struct StoreServer {
    inner: Arc<ServerInner>,
}

impl StoreServer {
    /// Create a server with empty stores, named after its host.
    pub fn new(name: impl Into<String>) -> StoreServer {
        StoreServer {
            inner: Arc::new(ServerInner {
                name: name.into(),
                kv: KvStore::new(),
                objects: ObjectStore::new(),
                dedup: Mutex::new(HashMap::new()),
                frames: AtomicU64::new(0),
                trace: OnceLock::new(),
            }),
        }
    }

    /// The host name this server answers as.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Direct handle to the shard's KV store (tests and debugging).
    pub fn kv(&self) -> &KvStore {
        &self.inner.kv
    }

    /// Direct handle to the shard's object store (tests and debugging).
    pub fn objects(&self) -> &ObjectStore {
        &self.inner.objects
    }

    /// Attach the host's tracer. Frames carrying a [`TraceContext`]
    /// then record `server.*` spans parented to the remote client span.
    /// First call wins, like `Tracer::instrument`.
    pub fn set_trace(&self, tracer: &Tracer) {
        let _ = self.inner.trace.set(tracer.clone());
    }

    /// Open the handling span for `ctx`, if tracing is attached.
    fn span_for(&self, ctx: Option<TraceContext>, name: &str) -> Option<SpanGuard> {
        let ctx = ctx?;
        let tracer = self.inner.trace.get()?;
        Some(tracer.span_remote(name, ctx))
    }

    fn health(&self) -> HostHealth {
        HostHealth {
            host: self.inner.name.clone(),
            kv_keys: self.inner.kv.len() as u64,
            object_bytes: self.inner.objects.total_bytes() as u64,
            frames_handled: self.inner.frames.load(Ordering::Relaxed),
            clients_seen: self.inner.dedup.lock().len() as u64,
        }
    }

    /// Execute one request frame and produce the response frame.
    ///
    /// Panics on malformed frames: inside the simulation the only frame
    /// producer is [`crate::client`], so corruption is a programming
    /// error, not an operational condition.
    pub fn handle(&self, bytes: &[u8]) -> Vec<u8> {
        let frame = decode(bytes).expect("server received malformed frame");
        // Ops polls bypass the dedup cache entirely: they are read-only
        // and every poll wants fresh facts, not a cached answer.
        if let Payload::OpsReq(req) = &frame.payload {
            let _sp = self.span_for(frame.ctx, "server.ops");
            let payload = match req {
                OpsRequest::Health => Payload::OpsResp(OpsResponse::Health(self.health())),
            };
            return encode(&Frame {
                client: frame.client,
                seq: frame.seq,
                ctx: None,
                payload,
            });
        }
        {
            let dedup = self.inner.dedup.lock();
            if let Some((last_seq, cached)) = dedup.get(&frame.client) {
                if *last_seq == frame.seq {
                    let cached = cached.clone();
                    drop(dedup);
                    let _sp = self.span_for(frame.ctx, "server.replay");
                    return cached;
                }
            }
        }
        let _sp = self.span_for(
            frame.ctx,
            match &frame.payload {
                Payload::KvReq(_) => "server.kv",
                Payload::ObjReq(_) => "server.obj",
                _ => "server.ping",
            },
        );
        let payload = match frame.payload {
            Payload::KvReq(req) => Payload::KvResp(apply_kv(&self.inner.kv, req)),
            Payload::ObjReq(req) => Payload::ObjResp(apply_obj(&self.inner.objects, req)),
            Payload::Ping => Payload::Pong,
            other => panic!("server received non-request frame {other:?}"),
        };
        self.inner.frames.fetch_add(1, Ordering::Relaxed);
        let out = encode(&Frame {
            client: frame.client,
            seq: frame.seq,
            ctx: None,
            payload,
        });
        self.inner
            .dedup
            .lock()
            .insert(frame.client, (frame.seq, out.clone()));
        out
    }
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer")
            .field("name", &self.inner.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_store::{KvRequest, KvResponse};

    fn kv_frame(seq: u64, req: KvRequest) -> Vec<u8> {
        encode(&Frame {
            client: 1,
            seq,
            ctx: None,
            payload: Payload::KvReq(req),
        })
    }

    fn kv_resp(bytes: &[u8]) -> KvResponse {
        match decode(bytes).expect("valid response").payload {
            Payload::KvResp(r) => r,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn executes_requests_against_local_stores() {
        let server = StoreServer::new("shard0p");
        let resp = server.handle(&kv_frame(
            1,
            KvRequest::Rpush {
                key: "q".into(),
                value: "a".into(),
            },
        ));
        assert_eq!(kv_resp(&resp), KvResponse::Uint(1));
        assert_eq!(server.kv().llen("q"), 1);
    }

    #[test]
    fn retried_seq_is_answered_from_cache_not_reapplied() {
        let server = StoreServer::new("shard0p");
        let push = kv_frame(
            7,
            KvRequest::Rpush {
                key: "q".into(),
                value: "a".into(),
            },
        );
        let first = server.handle(&push);
        // The response was "lost"; the client retries the same frame.
        let second = server.handle(&push);
        assert_eq!(first, second, "retry must see the cached response");
        assert_eq!(server.kv().llen("q"), 1, "mutation applied exactly once");
        // A new seq executes normally again.
        let resp = server.handle(&kv_frame(8, KvRequest::Lpop { key: "q".into() }));
        assert_eq!(kv_resp(&resp), KvResponse::MaybeStr(Some("a".into())));
    }

    #[test]
    fn dedup_is_per_client() {
        let server = StoreServer::new("shard0p");
        let mk = |client: u64| {
            encode(&Frame {
                client,
                seq: 1,
                ctx: None,
                payload: Payload::KvReq(KvRequest::Rpush {
                    key: "q".into(),
                    value: format!("c{client}"),
                }),
            })
        };
        server.handle(&mk(1));
        server.handle(&mk(2));
        assert_eq!(server.kv().llen("q"), 2, "distinct clients both apply");
    }

    #[test]
    fn ping_pongs() {
        let server = StoreServer::new("shard0p");
        let resp = server.handle(&encode(&Frame {
            client: 9,
            seq: 1,
            ctx: None,
            payload: Payload::Ping,
        }));
        assert_eq!(decode(&resp).expect("pong").payload, Payload::Pong);
    }

    #[test]
    fn health_polls_report_live_facts_without_dedup() {
        let server = StoreServer::new("shard0p");
        server.handle(&kv_frame(
            1,
            KvRequest::Set {
                key: "k".into(),
                value: "v".into(),
            },
        ));
        let poll = encode(&Frame {
            client: u64::MAX,
            seq: 1,
            ctx: None,
            payload: Payload::OpsReq(OpsRequest::Health),
        });
        let health = |bytes: &[u8]| match decode(bytes).expect("valid").payload {
            Payload::OpsResp(OpsResponse::Health(h)) => h,
            other => panic!("unexpected {other:?}"),
        };
        let first = health(&server.handle(&poll));
        assert_eq!(first.host, "shard0p");
        assert_eq!(first.kv_keys, 1);
        assert_eq!(first.frames_handled, 1, "ops polls are not counted");
        assert_eq!(first.clients_seen, 1, "the monitor is not a client");
        // Same seq again still answers fresh (no dedup for ops), and
        // state changes between polls are visible.
        server.handle(&kv_frame(
            2,
            KvRequest::Set {
                key: "k2".into(),
                value: "v".into(),
            },
        ));
        let second = health(&server.handle(&poll));
        assert_eq!(second.kv_keys, 2);
        assert_eq!(second.frames_handled, 2);
    }

    #[test]
    fn traced_frames_record_server_spans() {
        let server = StoreServer::new("shard0p");
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        server.set_trace(&tracer);
        let ctx = TraceContext {
            trace_id: 0xabc,
            span: 0x123,
            tick: 5,
        };
        let push = encode(&Frame {
            client: 1,
            seq: 1,
            ctx: Some(ctx),
            payload: Payload::KvReq(KvRequest::Rpush {
                key: "q".into(),
                value: "a".into(),
            }),
        });
        server.handle(&push);
        server.handle(&push); // retry → replay span
        let (spans, _) = tracer.records();
        let names: Vec<&str> = spans.iter().map(|s| &*s.name).collect();
        assert_eq!(names, ["server.kv", "server.replay"]);
        assert!(spans.iter().all(|s| s.parent == ctx.span));
        assert!(spans.iter().all(|s| s.remote == Some(ctx)));
    }
}
