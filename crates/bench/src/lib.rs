//! # tero-bench
//!
//! The benchmark harness: shared output helpers for the per-table /
//! per-figure regenerator binaries in `src/bin/`, plus the Criterion
//! benches in `benches/`.
//!
//! Every regenerator prints the paper-shaped rows to stdout and writes the
//! same data as JSON under `results/` so EXPERIMENTS.md numbers stay
//! machine-checkable.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;
use tero_core::pipeline::{ExtractionMode, Tero, TeroReport};
use tero_stats::BoxplotStats;
use tero_types::{GameId, Location};
use tero_world::{World, WorldConfig};

/// Build a League-of-Legends world with `per_location` streamers pinned at
/// each of the given locations, run the full Tero pipeline over it
/// (calibrated extraction — see DESIGN.md §2), and return the report.
///
/// This is the shared engine behind the regional-latency regenerators
/// (Figs 2, 9–12, 14).
pub fn run_lol_world(
    locations: &[Location],
    per_location: usize,
    days: u64,
    seed: u64,
) -> (World, TeroReport) {
    let pinned = locations
        .iter()
        .map(|l| (l.clone(), GameId::LeagueOfLegends, per_location))
        .collect();
    let mut world = World::build(WorldConfig {
        seed,
        n_streamers: 0,
        days,
        pinned,
        shared_events: 4,
        release_event: None,
        api_budget_per_min: 2_000,
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 5,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    (world, report)
}

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
    println!("{}", "-".repeat(title.len() + 6));
}

/// Render a boxplot row in paper style: name, then a latency bar with the
/// 5/25/50/75/95 percentiles.
pub fn boxplot_row(name: &str, stats: &BoxplotStats) -> String {
    format!(
        "{name:<42} p5 {:>6.1}  p25 {:>6.1}  p50 {:>6.1}  p75 {:>6.1}  p95 {:>6.1}  (n={})",
        stats.p5, stats.p25, stats.p50, stats.p75, stats.p95, stats.n
    )
}

/// An ASCII box-and-whiskers strip for quick visual comparison: maps the
/// five percentiles onto `width` columns over `[lo, hi]` ms.
pub fn ascii_box(stats: &BoxplotStats, lo: f64, hi: f64, width: usize) -> String {
    let mut row = vec![' '; width];
    let col = |v: f64| -> usize {
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((width - 1) as f64 * frac).round() as usize
    };
    let (a, b, m, c, d) = (
        col(stats.p5),
        col(stats.p25),
        col(stats.p50),
        col(stats.p75),
        col(stats.p95),
    );
    for cell in row.iter_mut().take(b).skip(a) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(d + 1).skip(c) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(c).skip(b) {
        *cell = '=';
    }
    row[m] = '#';
    row.into_iter().collect()
}

/// Where regenerators drop their JSON results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TERO_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Write a serialisable result to `results/<name>.json` (best-effort; the
/// printed output is the primary artefact).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Ok(s) = serde_json::to_string_pretty(value) {
                let _ = f.write_all(s.as_bytes());
                println!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Parse a `--scale <f64>` style flag from argv with a default (regenerators
/// accept scale knobs so CI can run them quickly).
pub fn arg_f64(flag: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse a `--n <usize>` style flag.
pub fn arg_usize(flag: &str, default: usize) -> usize {
    arg_f64(flag, default as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_box_places_median() {
        let stats = BoxplotStats {
            n: 10,
            mean: 50.0,
            p5: 10.0,
            p25: 30.0,
            p50: 50.0,
            p75: 70.0,
            p95: 90.0,
        };
        let box_ = ascii_box(&stats, 0.0, 100.0, 101);
        assert_eq!(box_.chars().nth(50), Some('#'));
        assert_eq!(box_.chars().nth(40), Some('='));
        assert_eq!(box_.chars().nth(20), Some('-'));
        assert_eq!(box_.chars().nth(95), Some(' '));
    }

    #[test]
    fn boxplot_row_formats() {
        let stats = BoxplotStats {
            n: 5,
            mean: 2.0,
            p5: 1.0,
            p25: 1.5,
            p50: 2.0,
            p75: 2.5,
            p95: 3.0,
        };
        let row = boxplot_row("X", &stats);
        assert!(row.contains("p50    2.0"));
        assert!(row.contains("(n=5)"));
    }
}
