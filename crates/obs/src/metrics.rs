//! Counters and gauges: the scalar metric primitives.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations use relaxed ordering: metrics tolerate reordering
/// against surrounding code, and relaxed adds compile to a single lock-add
/// on x86 / ldadd on aarch64.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (queue occupancy,
/// active assignments), with a monotonic high-watermark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_watermark: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
            high_watermark: AtomicI64::new(0),
        }
    }

    /// Set the level directly.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_watermark.fetch_max(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_watermark.fetch_max(now, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set or reached via `add`/`inc`.
    pub fn high_watermark(&self) -> i64 {
        self.high_watermark.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_level_and_watermark() {
        let g = Gauge::new();
        g.set(3);
        g.add(4);
        g.dec();
        assert_eq!(g.get(), 6);
        assert_eq!(g.high_watermark(), 7);
        g.set(1);
        assert_eq!(g.high_watermark(), 7, "watermark is monotonic");
    }
}
