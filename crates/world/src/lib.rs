//! # tero-world
//!
//! The synthetic Twitch world that the Tero pipeline mines — a generative
//! model with complete ground truth, standing in for the live platform the
//! paper scraped for two years.
//!
//! * [`games`] — the nine processed games, their server deployments
//!   (Tables 6–7), game-regions and primary-server assignment (§2.1);
//! * [`population`] — where streamers live: gazetteer populations skewed by
//!   per-continent Twitch popularity (Fig 7);
//! * [`streamer`] — streamer generation: identity, true location, played
//!   games, ISP quality, social profiles and descriptions (feeding
//!   `tero-geoparse`), HUD quirks (feeding `tero-vision`), and behavioural
//!   propensities (ground truth for Table 5);
//! * [`textgen`] — description / Twitter-field text generation with known
//!   ground truth (formal, informal, misleading, bait, non-geographic);
//! * [`latency`] — the ground-truth latency process per
//!   `{streamer, server}`: corrected-distance propagation, ISP access
//!   delay, jitter, spikes, and regional shared-anomaly events;
//! * [`sessions`] — streams, thumbnail timing (Fig 13), breaks, mid-stream
//!   server changes, between-stream location changes, game changes;
//! * [`twitch`] — the platform simulator: a rate-limited Helix-like API and
//!   a CDN whose thumbnail URLs are overwritten every ~5 minutes and
//!   redirect when the streamer goes offline (App. A's environment);
//! * [`world`] — ties everything together behind a single [`World`] handle.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod games;
pub mod latency;
pub mod population;
pub mod sessions;
pub mod streamer;
pub mod textgen;
pub mod twitch;
pub mod world;

pub use games::{primary_server, server_locations, GameServer};
pub use streamer::Streamer;
pub use world::{World, WorldConfig};
