//! Stream and thumbnail-timing generation.
//!
//! Produces, per streamer, the ground-truth timeline the platform simulator
//! serves from: streams with start/end times, the game played, the server
//! in use (including spike-driven mid-stream server changes — Table 5's
//! ground truth), spike schedules, and samples at thumbnail instants
//! (~every 5 minutes with the jitter of Fig 13).

use crate::games::{match_length_mins, primary_server, server_locations, GameServer};
use crate::latency::{draw_spikes, true_rtt_ms, SharedEvent, Spike};
use crate::streamer::Streamer;
use tero_geoparse::Gazetteer;
use tero_types::{GameId, Location, SimDuration, SimRng, SimTime};

/// One ground-truth sample at a thumbnail instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthSample {
    /// Sample time.
    pub t: SimTime,
    /// Ground-truth RTT at this instant, ms.
    pub true_rtt_ms: f64,
    /// What the HUD displays (rounded; 0 when the streamer sits in a
    /// lobby, which real games show as a placeholder).
    pub displayed_ms: u32,
    /// Index into the game's server list.
    pub server_idx: usize,
    /// Whether a spike or shared event is active at this instant.
    pub in_spike: bool,
}

/// One ground-truth stream.
#[derive(Debug, Clone)]
pub struct TruthStream {
    /// Game played.
    pub game: GameId,
    /// Stream start.
    pub start: SimTime,
    /// Stream end.
    pub end: SimTime,
    /// True location during the stream (location never changes
    /// mid-stream, per §3.3.1's assumption — our generator honours it).
    pub location: Location,
    /// Thumbnail-instant samples.
    pub samples: Vec<TruthSample>,
    /// Times of mid-stream server changes.
    pub server_changes: Vec<SimTime>,
    /// The streamer's own spike schedule during the stream.
    pub spikes: Vec<Spike>,
    /// Whether the *next* stream is a different game (a "game change").
    pub next_game_changed: bool,
}

impl TruthStream {
    /// Number of samples whose ground truth lies inside a spike.
    pub fn spike_samples(&self) -> usize {
        self.samples.iter().filter(|s| s.in_spike).count()
    }
}

/// Draw the next thumbnail interval: nominally 5 minutes, uniformly
/// jittered up to +60 s (Fig 13's inter-arrival CDF lives in [300 s,
/// ~400 s]), with occasional longer gaps when the streamer takes a break.
pub fn thumbnail_interval(rng: &mut SimRng) -> SimDuration {
    let base = SimDuration::from_secs(300 + rng.below(61));
    if rng.chance(0.05) {
        base + SimDuration::from_secs(300 + rng.below(1_500))
    } else {
        base
    }
}

/// Generate a streamer's full timeline up to `horizon`.
pub fn generate_timeline(
    streamer: &Streamer,
    gaz: &Gazetteer,
    shared: &[SharedEvent],
    horizon: SimTime,
    rng: &mut SimRng,
) -> Vec<TruthStream> {
    let mut streams = Vec::new();
    let days = horizon.as_secs() / 86_400;
    let mut current_game_idx = 0usize;

    for day in 0..days {
        if !rng.chance(streamer.daily_stream_prob) {
            continue;
        }
        let start_s = day * 86_400 + streamer.preferred_utc_hour * 3_600;
        let start = SimTime::from_secs(start_s) + SimDuration::from_secs(rng.below(7_200));
        let hours = (0.5 + rng.exponential(streamer.session_mean_hours - 0.5).min(7.5)).min(8.0);
        let end = (start + SimDuration::from_secs_f64(hours * 3_600.0)).min(horizon);
        if start >= horizon || end <= start {
            continue;
        }

        let game = streamer.games[current_game_idx];
        let stream = generate_stream(
            streamer,
            gaz,
            shared,
            game,
            current_game_idx,
            start,
            end,
            rng,
        );

        // Decide the next stream's game: spikes push players to switch
        // (§6's game-change hypothesis).
        let behavior = &streamer.behavior[current_game_idx];
        let spike_pressure: f64 = stream
            .spikes
            .iter()
            .map(|s| (s.magnitude_ms.min(40.0) / 40.0) * behavior.spike_game_coeff)
            .sum();
        let p_change = (behavior.base_game_change + spike_pressure).min(0.9);
        let mut stream = stream;
        if streamer.games.len() > 1 && rng.chance(p_change) {
            let mut next = rng.range_usize(0, streamer.games.len());
            if next == current_game_idx {
                next = (next + 1) % streamer.games.len();
            }
            current_game_idx = next;
            stream.next_game_changed = true;
        }
        streams.push(stream);
    }
    streams
}

/// Generate one stream: thumbnails, spikes, server changes, samples.
#[allow(clippy::too_many_arguments)]
fn generate_stream(
    streamer: &Streamer,
    gaz: &Gazetteer,
    shared: &[SharedEvent],
    game: GameId,
    game_idx: usize,
    start: SimTime,
    end: SimTime,
    rng: &mut SimRng,
) -> TruthStream {
    let place = streamer.location_at(start).clone();
    let net = streamer.net_at(start).clone();
    let servers = server_locations(gaz, game);
    let primary = primary_server(gaz, game, &place.location).unwrap_or_else(|| servers[0].clone());
    let primary_idx = servers
        .iter()
        .position(|s| s.location == primary.location)
        .unwrap_or(0);

    // Off-primary play (§2.1): habitual off-primary streamers stick to
    // their alternative server; everyone else occasionally (2 % of
    // streams) tries one.
    let start_server = match streamer.off_primary {
        Some(false) if servers.len() > 1 => crowd_server(&servers, primary_idx),
        Some(true) if servers.len() > 1 => {
            // A stable "friends abroad" server, derived from the
            // streamer's identity so it never changes between streams.
            let mut h: u64 = 0x9e37;
            for b in streamer.id.as_str().bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let pick = (h % servers.len() as u64) as usize;
            if pick == primary_idx {
                (pick + 1) % servers.len()
            } else {
                pick
            }
        }
        _ if rng.chance(0.02) && servers.len() > 1 => crowd_server(&servers, primary_idx),
        _ => primary_idx,
    };

    let spikes = draw_spikes(&net, start, end, rng);
    let shared_hits: Vec<&SharedEvent> = shared
        .iter()
        .filter(|e| e.game == game)
        .filter(|e| e.start < end && e.end > start)
        .filter(|e| e.hits(game, &place.location, e.start.max(start)))
        .collect();

    // Server-change decisions: at each spike, with probability scaled by
    // the spike's size, the streamer resolves to switch — but only after
    // having played at least one match length on the current server
    // (Table 1's StableLen rationale). The schedule records (time, server).
    let behavior = &streamer.behavior[game_idx];
    let min_play = SimDuration::from_mins(match_length_mins(game));
    let mut server_changes: Vec<SimTime> = Vec::new();
    let mut schedule: Vec<(SimTime, usize)> = vec![(start, start_server)];
    let mut last_change = start;
    // Change *opportunities*: every match boundary carries the base
    // (spike-independent) probability — players also switch to follow
    // friends or try a new crowd — plus, when a spike is active at the
    // boundary, the spike-driven extra probability (§6's treatment).
    let mut boundaries: Vec<SimTime> = Vec::new();
    let mut t = start + min_play;
    while t < end {
        boundaries.push(t);
        t += min_play;
    }
    for at in boundaries {
        if servers.len() < 2 {
            break;
        }
        let active_spike = spikes
            .iter()
            .find(|sp| sp.start <= at && at <= sp.end + min_play);
        let p = behavior.base_server_change
            + active_spike
                .map(|sp| behavior.spike_server_coeff * (sp.magnitude_ms.min(40.0) / 40.0))
                .unwrap_or(0.0);
        if at.since(last_change) >= min_play && rng.chance(p) && at > last_change && at < end {
            let current = schedule.last().expect("schedule non-empty").1;
            // Move to another server: usually the big "crowd" hub the
            // streamer's friends play on, sometimes a random one.
            let next = if rng.chance(0.7) {
                crowd_server(&servers, current)
            } else {
                rng.range_usize(0, servers.len())
            };
            let next = if next == current {
                (next + 1) % servers.len()
            } else {
                next
            };
            server_changes.push(at);
            schedule.push((at, next));
            last_change = at;
        }
    }

    // Samples at thumbnail instants.
    let base_rtt: Vec<f64> = servers
        .iter()
        .map(|s| net.base_rtt_ms(gaz, &place, s))
        .collect();
    let mut samples = Vec::new();
    let mut t = start + SimDuration::from_secs(rng.below(300));
    let mut change_cursor = 0usize;
    while t < end {
        while change_cursor + 1 < schedule.len() && schedule[change_cursor + 1].0 <= t {
            change_cursor += 1;
        }
        let current_server = schedule[change_cursor].1;
        let rtt = true_rtt_ms(
            base_rtt[current_server],
            net.jitter_sd,
            &spikes,
            &shared_hits,
            t,
            rng,
        );
        let in_spike = spikes.iter().any(|s| s.active_at(t))
            || shared_hits.iter().any(|e| t >= e.start && t < e.end);
        // ~3 % of thumbnails catch the streamer in a lobby showing the
        // zero placeholder.
        let displayed_ms = if rng.chance(0.03) {
            0
        } else {
            rtt.round().clamp(1.0, 999.0) as u32
        };
        samples.push(TruthSample {
            t,
            true_rtt_ms: rtt,
            displayed_ms,
            server_idx: current_server,
            in_spike,
        });
        t += thumbnail_interval(rng);
    }

    TruthStream {
        game,
        start,
        end,
        location: place.location.clone(),
        samples,
        server_changes,
        spikes,
        next_game_changed: false,
    }
}

/// The "crowd" server: the big population hub players join to meet a
/// particular player base (§2.1) — the first server in the game's
/// deployment list that is not the one being left. Deployment lists lead
/// with the major hubs (Amsterdam, Chicago, …), so EU players end up on
/// NA and vice versa, exactly the paper's UK example.
fn crowd_server(servers: &[GameServer], exclude: usize) -> usize {
    (0..servers.len()).find(|&i| i != exclude).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_geoparse::PlaceKind;

    fn setup() -> (Gazetteer, Streamer) {
        let gaz = Gazetteer::new();
        let home = gaz.lookup_kind("Chicago", PlaceKind::City)[0].clone();
        let mut rng = SimRng::new(42);
        let s = Streamer::generate(&gaz, home, SimTime::from_hours(24 * 30), &mut rng);
        (gaz, s)
    }

    #[test]
    fn timeline_covers_horizon() {
        let (gaz, s) = setup();
        let mut rng = SimRng::new(1);
        let horizon = SimTime::from_hours(24 * 30);
        let streams = generate_timeline(&s, &gaz, &[], horizon, &mut rng);
        assert!(!streams.is_empty());
        for st in &streams {
            assert!(st.start < st.end);
            assert!(st.end <= horizon);
            assert!(s.games.contains(&st.game));
            for w in st.samples.windows(2) {
                let gap = w[1].t.since(w[0].t);
                assert!(gap.as_secs() >= 300, "gap {} s", gap.as_secs());
            }
        }
        // Streams are chronological.
        for w in streams.windows(2) {
            assert!(w[0].start < w[1].start);
        }
    }

    #[test]
    fn thumbnail_interval_distribution() {
        let mut rng = SimRng::new(5);
        let mut within_minute = 0;
        let n = 10_000;
        for _ in 0..n {
            let iv = thumbnail_interval(&mut rng).as_secs();
            assert!(iv >= 300);
            if iv <= 360 {
                within_minute += 1;
            }
        }
        // Fig 13: 90th percentile of inter-arrival ≈ 6 min.
        let frac = within_minute as f64 / n as f64;
        assert!(frac > 0.85, "within 6 min: {frac}");
    }

    #[test]
    fn samples_reflect_spikes() {
        let (gaz, s) = setup();
        let mut rng = SimRng::new(2);
        let horizon = SimTime::from_hours(24 * 60);
        let streams = generate_timeline(&s, &gaz, &[], horizon, &mut rng);
        let total: usize = streams.iter().map(|st| st.samples.len()).sum();
        let in_spike: usize = streams.iter().map(|st| st.spike_samples()).sum();
        assert!(total > 100, "samples {total}");
        assert!(in_spike > 0, "some samples in spikes");
        assert!(
            (in_spike as f64) < total as f64 * 0.5,
            "spikes are transient"
        );
    }

    #[test]
    fn shared_event_raises_samples() {
        let (gaz, s) = setup();
        let game = s.games[0];
        let event = SharedEvent {
            game,
            region: None,
            start: SimTime::EPOCH,
            end: SimTime::from_hours(24 * 365),
            magnitude_ms: 150.0,
        };
        let mut rng_a = SimRng::new(3);
        let with = generate_timeline(&s, &gaz, &[event], SimTime::from_hours(24 * 20), &mut rng_a);
        let mut rng_b = SimRng::new(3);
        let without = generate_timeline(&s, &gaz, &[], SimTime::from_hours(24 * 20), &mut rng_b);
        let mean = |streams: &[TruthStream], g: GameId| {
            let xs: Vec<f64> = streams
                .iter()
                .filter(|st| st.game == g)
                .flat_map(|st| st.samples.iter().map(|x| x.true_rtt_ms))
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let m_with = mean(&with, game);
        let m_without = mean(&without, game);
        assert!(
            m_with > m_without + 100.0,
            "event must lift the affected game: {m_without} -> {m_with}"
        );
    }

    #[test]
    fn server_changes_require_minimum_play() {
        let (gaz, s) = setup();
        let mut rng = SimRng::new(4);
        let streams = generate_timeline(&s, &gaz, &[], SimTime::from_hours(24 * 90), &mut rng);
        for st in &streams {
            let min_play = SimDuration::from_mins(match_length_mins(st.game));
            let mut last = st.start;
            for &c in &st.server_changes {
                assert!(c.since(last) >= min_play, "change too early");
                last = c;
            }
        }
    }

    #[test]
    fn lobby_placeholder_rate() {
        let (gaz, s) = setup();
        let mut rng = SimRng::new(6);
        let streams = generate_timeline(&s, &gaz, &[], SimTime::from_hours(24 * 120), &mut rng);
        let total: usize = streams.iter().map(|st| st.samples.len()).sum();
        let zeros: usize = streams
            .iter()
            .flat_map(|st| &st.samples)
            .filter(|x| x.displayed_ms == 0)
            .count();
        let frac = zeros as f64 / total as f64;
        assert!((0.01..0.06).contains(&frac), "zero rate {frac}");
    }
}
