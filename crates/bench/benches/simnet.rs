//! Network-simulator throughput: packet events per second under UDP
//! saturation and TCP dynamics, and the cost of one scaled-down Table 2
//! experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use tero_simnet::experiment::{run_experiment, ExperimentConfig, GameProfile};
use tero_simnet::link::LinkConfig;
use tero_simnet::sim::Simulator;
use tero_simnet::tcp::TcpFlow;
use tero_simnet::udp::UdpFlow;
use tero_types::{SimDuration, SimTime};

fn two_node_sim(rate_bps: f64, queue: usize) -> (Simulator, usize, usize) {
    let mut sim = Simulator::new();
    let a = sim.add_node();
    let b = sim.add_node();
    sim.add_duplex_link(
        a,
        b,
        LinkConfig {
            rate_bps,
            prop: SimDuration::from_millis(5),
            queue_packets: queue,
        },
    );
    sim.compute_routes();
    (sim, a, b)
}

fn bench_udp_saturation(c: &mut Criterion) {
    c.bench_function("udp_saturated_1s", |b| {
        b.iter(|| {
            let (mut sim, a, bn) = two_node_sim(100e6, 200);
            sim.add_udp_flow(
                UdpFlow::cbr(a, bn, 120e6, 1_250, SimTime::EPOCH, SimTime::from_secs(1))
                    .with_jitter(0.1),
            );
            sim.run_until(SimTime::from_secs(1));
            sim.delivered_packets
        })
    });
}

fn bench_tcp_dynamics(c: &mut Criterion) {
    c.bench_function("tcp_lossy_2s", |b| {
        b.iter(|| {
            let (mut sim, a, bn) = two_node_sim(10e6, 20);
            sim.add_tcp_flow(TcpFlow::new(a, bn, SimTime::EPOCH, SimTime::from_secs(2)));
            sim.run_until(SimTime::from_secs(2));
            sim.tcp_flows[0].delivered
        })
    });
}

fn bench_experiment(c: &mut Criterion) {
    // One Table-2 cell at 1/20th duration.
    let config = ExperimentConfig {
        game: GameProfile::GENSHIN,
        bottleneck_bps: 100e6,
        bottleneck_queue: 500,
        bg_packet_bytes: 1_250,
    };
    c.bench_function("table2_experiment_scaled", |b| {
        b.iter(|| run_experiment(config, 0.05))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_udp_saturation, bench_tcp_dynamics, bench_experiment);
criterion_main!(benches);
