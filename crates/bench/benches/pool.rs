//! Pool scaling on the pipeline's two parallel hot stages.
//!
//! The standard workload mirrors what `Tero::run` hands the pool: a batch
//! of rendered thumbnails through the full three-engine OCR front-end
//! (the extraction stage) and a batch of per-`{streamer, game}` series
//! through segmentation + anomaly detection + classification (the
//! analysis stage). Each stage is benched at 1, 2, 4 and 8 workers;
//! `workers = 1` is the exact sequential path, so the ratio of the
//! 1-worker to the 4-worker median is the speedup recorded in
//! `docs/PERFORMANCE.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tero_core::analysis::anomaly::detect_anomalies;
use tero_core::analysis::clusters::classify_streamer;
use tero_core::analysis::segments::segment_stream;
use tero_core::imageproc::ImageProcessor;
use tero_pool::Pool;
use tero_types::{AnonId, GameId, LatencySample, SimRng, SimTime, TeroParams};
use tero_vision::scene::HudScene;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A batch of rendered thumbnails with varied displayed values and noise —
/// the extraction stage's input after the download module has run.
fn thumbnail_batch(n: usize) -> Vec<tero_vision::Image> {
    let mut rng = SimRng::new(42);
    (0..n)
        .map(|i| {
            let mut scene = HudScene::typical(20 + (i as u32 * 7) % 180);
            scene.noise = 0.005 + 0.002 * (i % 10) as f64;
            scene.render(&mut rng)
        })
        .collect()
}

/// A realistic series: stable base, spikes, glitches, one level shift
/// (same generator as the analysis bench).
fn synth_series(n: usize, seed: u64) -> Vec<LatencySample> {
    let mut rng = SimRng::new(seed);
    let mut out = Vec::with_capacity(n);
    let mut level = 45.0;
    for i in 0..n {
        if rng.chance(0.002) {
            level = if level < 60.0 { 95.0 } else { 45.0 };
        }
        let mut v = level + rng.normal_with(0.0, 2.0);
        if rng.chance(0.02) {
            v += 40.0 + rng.f64() * 60.0;
        }
        if rng.chance(0.01) {
            v = (v as u32 % 10) as f64 + 1.0;
        }
        out.push(LatencySample::new(
            SimTime::from_mins(5 * i as u64),
            v.max(1.0) as u32,
        ));
    }
    out
}

fn bench_extraction_scaling(c: &mut Criterion) {
    let thumbs = thumbnail_batch(96);
    let processor = ImageProcessor::new();
    let mut group = c.benchmark_group("pool_extract_96_thumbs");
    group.throughput(Throughput::Elements(thumbs.len() as u64));
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        let pool = Pool::new(workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &pool, |b, pool| {
            b.iter(|| {
                pool.par_map(&thumbs, |img| {
                    processor.extract(img, GameId::LeagueOfLegends)
                })
            });
        });
    }
    group.finish();
}

fn bench_analysis_scaling(c: &mut Criterion) {
    // 64 streamer-game series of 2 000 points each, analysed exactly the
    // way the pipeline's per-stream stage does it.
    let series: Vec<(u64, Vec<LatencySample>)> = (0..64u64)
        .map(|i| (i, synth_series(2_000, i + 1)))
        .collect();
    let params = TeroParams::default();
    let mut group = c.benchmark_group("pool_analyze_64_series");
    group.throughput(Throughput::Elements(series.len() as u64));
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        let pool = Pool::new(workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &pool, |b, pool| {
            b.iter(|| {
                pool.par_map(&series, |(id, samples)| {
                    let segments = segment_stream(0, samples, &params);
                    let report = detect_anomalies(segments, &params);
                    classify_streamer(AnonId(*id), &report, &params)
                })
            });
        });
    }
    group.finish();
}

fn bench_extraction_io_scaling(c: &mut Criterion) {
    // The production extraction stage is download-bound: each task fetches
    // a thumbnail before running OCR on it. Model the fetch as a 10 ms
    // blocking wait (conservative for a CDN round trip). Workers overlap
    // their waits, so this variant scales with worker count even on a
    // single-core host — which is exactly the regime the pipeline runs in
    // when thumbnails come off the network rather than a warm cache.
    let thumbs = thumbnail_batch(32);
    let processor = ImageProcessor::new();
    let mut group = c.benchmark_group("pool_extract_32_thumbs_io10ms");
    group.throughput(Throughput::Elements(thumbs.len() as u64));
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        let pool = Pool::new(workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &pool, |b, pool| {
            b.iter(|| {
                pool.par_map(&thumbs, |img| {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    processor.extract(img, GameId::LeagueOfLegends)
                })
            });
        });
    }
    group.finish();
}

fn bench_par_map_overhead(c: &mut Criterion) {
    // The fixed cost of a fan-out on trivial tasks: scope spawn + chunking
    // + ordered merge, without any real work to amortise it.
    let items: Vec<u64> = (0..1_000).collect();
    let mut group = c.benchmark_group("pool_overhead_1k_trivial");
    for workers in WORKER_COUNTS {
        let pool = Pool::new(workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &pool, |b, pool| {
            b.iter(|| pool.par_map(&items, |&x| x.wrapping_mul(31)));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets =
    bench_extraction_scaling,
    bench_extraction_io_scaling,
    bench_analysis_scaling,
    bench_par_map_overhead
);
criterion_main!(benches);
