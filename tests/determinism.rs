//! Parallelism must be unobservable: one seed ⇒ one report.
//!
//! The pipeline's hot stages fan out over `tero-pool`, whose ordered merge
//! promises byte-identical output at every worker count. This suite pins
//! that promise end to end: the full `TeroReport` (streams, labels,
//! clusters, distributions, behaviour streams) and the funnel counters of
//! `metrics_snapshot` must be identical for `worker_threads ∈ {1, 2, 8}`,
//! with and without a non-trivial fault-injection plan.

use std::collections::BTreeMap;
use tero::chaos::{ChaosInjector, FaultPlan};
use tero::core::pipeline::{ExtractionMode, Tero, TeroReport};
use tero::world::{World, WorldConfig};

/// A deterministic, order-stable rendering of everything a run produced.
/// `HashMap`-backed fields are projected through `BTreeMap` first; every
/// other collection in the report is already ordered.
fn fingerprint(report: &TeroReport) -> String {
    let locations: BTreeMap<_, _> = report.locations.iter().collect();
    format!(
        "download={:?}\nthumbnails={} extracted={} streamers_seen={}\n\
         locations={locations:?}\nstreams={:?}\nanomalies={:?}\nclassified={:?}\n\
         location_clusters={:?}\nendpoint_changes={:?}\ndistributions={:?}\n\
         shared_anomalies={:?}\nbehavior_streams={:?}\n",
        report.download,
        report.thumbnails,
        report.extracted,
        report.streamers_seen,
        report.streams,
        report.anomalies,
        report.classified,
        report.location_clusters,
        report.endpoint_changes,
        report.distributions,
        report.shared_anomalies,
        report.behavior_streams,
    )
}

/// The funnel counters the operations guide treats as the run's identity:
/// every counter except the scheduling-dependent `pool.steals` (how often
/// workers rebalanced is a property of the schedule, not of the data).
fn funnel(tero: &Tero) -> BTreeMap<String, u64> {
    tero.metrics_snapshot()
        .counters
        .iter()
        .filter(|c| c.name != "pool.steals")
        .map(|c| (c.name.clone(), c.value))
        .collect()
}

fn run_once(workers: usize, chaos_seed: Option<u64>) -> (String, BTreeMap<String, u64>) {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 25,
        days: 2,
        ..WorldConfig::default()
    });
    if let Some(seed) = chaos_seed {
        world.install_chaos(ChaosInjector::new(FaultPlan::default_plan(seed)));
    }
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    (fingerprint(&report), funnel(&tero))
}

#[test]
fn report_identical_across_worker_counts() {
    let (reference, ref_counters) = run_once(1, None);
    assert!(reference.len() > 1_000, "fingerprint covers a real run");
    for workers in [2, 8] {
        let (fp, counters) = run_once(workers, None);
        assert_eq!(fp, reference, "report diverged at {workers} workers");
        assert_eq!(
            counters, ref_counters,
            "funnel counters diverged at {workers} workers"
        );
    }
}

#[test]
fn report_identical_across_worker_counts_under_chaos() {
    // A non-trivial fault plan exercises the recovery paths (missing
    // objects → dead-lettering, API 5xx → profile retries); the ordered
    // merge must keep even those byte-identical.
    let (reference, ref_counters) = run_once(1, Some(7));
    for workers in [2, 8] {
        let (fp, counters) = run_once(workers, Some(7));
        assert_eq!(
            fp, reference,
            "report diverged at {workers} workers under chaos"
        );
        assert_eq!(
            counters, ref_counters,
            "funnel counters diverged at {workers} workers under chaos"
        );
    }
}

/// One traced run: the Chrome trace-event JSON and text timeline for a
/// fixed seed at a given worker count.
fn trace_once(workers: usize) -> (String, String) {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    };
    tero.trace.set_enabled(true);
    tero.run(&mut world);
    (tero.trace.chrome_trace(), tero.trace.render_timeline())
}

#[test]
fn chrome_trace_identical_across_worker_counts() {
    // The tracer's contract: span ids, ticks and record order are logical,
    // so the exported trace is *byte*-identical at every worker count.
    let (ref_json, ref_text) = trace_once(1);
    assert!(
        ref_json.matches("extract.task").count() > 50,
        "trace covers a real fan-out"
    );
    for workers in [2, 8] {
        let (json, text) = trace_once(workers);
        assert_eq!(json, ref_json, "chrome trace diverged at {workers} workers");
        assert_eq!(text, ref_text, "timeline diverged at {workers} workers");
    }
}

#[test]
fn chrome_trace_parses() {
    // The exporter hand-assembles its JSON; the workspace's own serde_json
    // must accept it (this is also what Perfetto will parse).
    let (json, _) = trace_once(2);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = parsed
        .field("traceEvents")
        .as_array()
        .expect("traceEvents array");
    assert!(events.len() > 100, "trace has real content");
}

#[test]
fn same_seed_same_process_is_reproducible() {
    // Two full runs in one process (fresh worlds, fresh registries) —
    // guards against hidden global state leaking between runs.
    let a = run_once(4, Some(7));
    let b = run_once(4, Some(7));
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
