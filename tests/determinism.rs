//! Parallelism and windowing must be unobservable: one seed ⇒ one report.
//!
//! The pipeline's hot stages fan out over `tero-pool`, whose ordered merge
//! promises byte-identical output at every worker count; the staged engine
//! promises the same across any window schedule, including a chaos kill
//! mid-window and a snapshot/restore into a fresh `Tero`. This suite pins
//! both promises end to end: the full `TeroReport` (streams, labels,
//! clusters, distributions, behaviour streams) and the funnel counters of
//! `metrics_snapshot` must be identical for `worker_threads ∈ {1, 2, 8}`,
//! for window sizes ∈ {1 day, 3 days, full horizon}, with and without a
//! non-trivial fault-injection plan.

use std::collections::BTreeMap;
use tero::chaos::{ChaosInjector, EngineKill, FaultPlan};
use tero::core::pipeline::{ExtractionMode, Tero, TeroReport, WindowOutcome};
use tero::world::{World, WorldConfig};
use tero_types::{SimDuration, SimTime};

/// A deterministic, order-stable rendering of everything a run produced.
/// `HashMap`-backed fields are projected through `BTreeMap` first; every
/// other collection in the report is already ordered.
fn fingerprint(report: &TeroReport) -> String {
    let locations: BTreeMap<_, _> = report.locations.iter().collect();
    format!(
        "download={:?}\nthumbnails={} extracted={} streamers_seen={}\n\
         locations={locations:?}\nstreams={:?}\nanomalies={:?}\nclassified={:?}\n\
         location_clusters={:?}\nendpoint_changes={:?}\ndistributions={:?}\n\
         shared_anomalies={:?}\nbehavior_streams={:?}\n",
        report.download,
        report.thumbnails,
        report.extracted,
        report.streamers_seen,
        report.streams,
        report.anomalies,
        report.classified,
        report.location_clusters,
        report.endpoint_changes,
        report.distributions,
        report.shared_anomalies,
        report.behavior_streams,
    )
}

/// The funnel counters the operations guide treats as the run's identity:
/// every counter except the scheduling-dependent `pool.steals` (how often
/// workers rebalanced is a property of the schedule, not of the data).
fn funnel(tero: &Tero) -> BTreeMap<String, u64> {
    tero.metrics_snapshot()
        .counters
        .iter()
        .filter(|c| c.name != "pool.steals")
        .map(|c| (c.name.clone(), c.value))
        .collect()
}

fn run_once(workers: usize, chaos_seed: Option<u64>) -> (String, BTreeMap<String, u64>) {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 25,
        days: 2,
        ..WorldConfig::default()
    });
    if let Some(seed) = chaos_seed {
        world.install_chaos(ChaosInjector::new(FaultPlan::default_plan(seed)));
    }
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    (fingerprint(&report), funnel(&tero))
}

#[test]
fn report_identical_across_worker_counts() {
    let (reference, ref_counters) = run_once(1, None);
    assert!(reference.len() > 1_000, "fingerprint covers a real run");
    for workers in [2, 8] {
        let (fp, counters) = run_once(workers, None);
        assert_eq!(fp, reference, "report diverged at {workers} workers");
        assert_eq!(
            counters, ref_counters,
            "funnel counters diverged at {workers} workers"
        );
    }
}

#[test]
fn report_identical_across_worker_counts_under_chaos() {
    // A non-trivial fault plan exercises the recovery paths (missing
    // objects → dead-lettering, API 5xx → profile retries); the ordered
    // merge must keep even those byte-identical.
    let (reference, ref_counters) = run_once(1, Some(7));
    for workers in [2, 8] {
        let (fp, counters) = run_once(workers, Some(7));
        assert_eq!(
            fp, reference,
            "report diverged at {workers} workers under chaos"
        );
        assert_eq!(
            counters, ref_counters,
            "funnel counters diverged at {workers} workers under chaos"
        );
    }
}

/// One traced run: the Chrome trace-event JSON and text timeline for a
/// fixed seed at a given worker count.
fn trace_once(workers: usize) -> (String, String) {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    };
    tero.trace.set_enabled(true);
    tero.run(&mut world);
    (tero.trace.chrome_trace(), tero.trace.render_timeline())
}

#[test]
fn chrome_trace_identical_across_worker_counts() {
    // The tracer's contract: span ids, ticks and record order are logical,
    // so the exported trace is *byte*-identical at every worker count.
    let (ref_json, ref_text) = trace_once(1);
    assert!(
        ref_json.matches("extract.task").count() > 50,
        "trace covers a real fan-out"
    );
    for workers in [2, 8] {
        let (json, text) = trace_once(workers);
        assert_eq!(json, ref_json, "chrome trace diverged at {workers} workers");
        assert_eq!(text, ref_text, "timeline diverged at {workers} workers");
    }
}

#[test]
fn chrome_trace_parses() {
    // The exporter hand-assembles its JSON; the workspace's own serde_json
    // must accept it (this is also what Perfetto will parse).
    let (json, _) = trace_once(2);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = parsed
        .field("traceEvents")
        .as_array()
        .expect("traceEvents array");
    assert!(events.len() > 100, "trace has real content");
}

// ---------------------------------------------------------------------------
// Windowed incremental execution (`Tero::run_window`).

/// Counters that describe the *schedule* rather than the data: commit
/// frequency (`store.kv.*`, `stats.sketch.{commits,bytes}` — each window
/// boundary re-persists the dirty serving sketches), window/stage
/// bookkeeping, the online cleaner's per-window activity (`clean.*`,
/// `stats.changepoint.*` — how much work each window fed, sealed and
/// refreshed is exactly what a schedule changes; the cleaner's *output*
/// is pinned separately below), and the planned engine kill. Everything
/// else — the funnel, `download.*`, `ocr.*`, `analysis.*`,
/// `store.object.*`, `stats.sketch.inserts` — must be byte-identical
/// between a single-shot run and any windowed drive.
fn schedule_invariant(counters: BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters
        .into_iter()
        .filter(|(name, _)| {
            !name.starts_with("store.kv.")
                && !name.starts_with("pipeline.window.")
                && !name.starts_with("stage.")
                && !name.starts_with("clean.")
                && !name.starts_with("stats.changepoint.")
                && name != "chaos.injected.engine_kill"
                && name != "stats.sketch.commits"
                && name != "stats.sketch.bytes"
                // Per-window view refreshes fan out over the pool, so the
                // task count tracks the schedule (it is still pinned
                // across worker counts by the tests above).
                && name != "pool.tasks"
        })
        .collect()
}

/// A 4-day world, so a 1-day window takes four `run_window` calls and a
/// 3-day window takes two (the second clamped to the horizon).
fn windowed_world(chaos: Option<FaultPlan>) -> World {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 25,
        days: 4,
        ..WorldConfig::default()
    });
    if let Some(plan) = chaos {
        world.install_chaos(ChaosInjector::new(plan));
    }
    world
}

fn windowed_tero(workers: usize) -> Tero {
    Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    }
}

/// Drive a run as a sequence of `window`-sized slices (`None` = one
/// full-horizon window). A `Killed` outcome re-drives the same slice —
/// the engine must resume from its commit, not repeat work.
fn drive(tero: &Tero, world: &mut World, window: Option<SimDuration>) -> TeroReport {
    let horizon = world.horizon;
    let mut to = window.map_or(horizon, |w| SimTime::EPOCH + w);
    loop {
        match tero.run_window(world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => return report,
            WindowOutcome::Advanced => to = window.map_or(horizon, |w| to + w),
            WindowOutcome::Killed => {}
        }
    }
}

#[test]
fn windowed_schedules_match_single_shot() {
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    assert!(reference.len() > 1_000, "fingerprint covers a real run");
    let ref_counters = schedule_invariant(funnel(&tero_ref));

    let day = SimDuration::from_hours(24);
    for window in [Some(day), Some(SimDuration::from_hours(72)), None] {
        for workers in [1, 2, 8] {
            let mut world = windowed_world(None);
            let tero = windowed_tero(workers);
            let report = drive(&tero, &mut world, window);
            assert_eq!(
                fingerprint(&report),
                reference,
                "report diverged: window {window:?}, {workers} workers"
            );
            assert_eq!(
                schedule_invariant(funnel(&tero)),
                ref_counters,
                "counters diverged: window {window:?}, {workers} workers"
            );
            tero.trace
                .ledger()
                .reconcile(&tero.obs)
                .expect("ledger reconciles after a windowed run");
        }
    }
}

#[test]
fn windowed_kill_and_resume_matches_single_shot_under_chaos() {
    // Reference: a single-shot run under the stock fault plan.
    let mut world = windowed_world(Some(FaultPlan::default_plan(7)));
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_counters = schedule_invariant(funnel(&tero_ref));

    // Same plan plus a planned engine kill in window 1: the kill fires
    // after the ingest commit, the drive loop re-calls `run_window`, and
    // the engine must resume from the commit without double-counting.
    let plan = FaultPlan {
        engine_kills: vec![EngineKill { window: 1 }],
        ..FaultPlan::default_plan(7)
    };
    let day = SimDuration::from_hours(24);
    for workers in [1, 2, 8] {
        let mut world = windowed_world(Some(plan.clone()));
        let tero = windowed_tero(workers);
        let report = drive(&tero, &mut world, Some(day));
        assert_eq!(
            fingerprint(&report),
            reference,
            "kill/resume diverged at {workers} workers"
        );
        assert_eq!(
            schedule_invariant(funnel(&tero)),
            ref_counters,
            "kill/resume counters diverged at {workers} workers"
        );
        let snap = tero.metrics_snapshot();
        assert_eq!(snap.counter("chaos.injected.engine_kill"), Some(1));
        assert_eq!(snap.counter("pipeline.window.killed"), Some(1));
        tero.trace
            .ledger()
            .reconcile(&tero.obs)
            .expect("ledger reconciles across a kill/resume");
    }
}

#[test]
fn snapshot_restores_into_fresh_tero() {
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_counters = schedule_invariant(funnel(&tero_ref));

    // Run the first 1-day window on one Tero, snapshot its committed
    // state, and finish the run on a brand-new Tero — fresh registry,
    // fresh tracer, fresh engine — fed only the snapshot and the world.
    let day = SimDuration::from_hours(24);
    let mut world = windowed_world(None);
    let first = windowed_tero(2);
    assert!(matches!(
        first.run_window(&mut world, SimTime::EPOCH, SimTime::EPOCH + day),
        WindowOutcome::Advanced
    ));
    let snap = first.engine_snapshot().expect("windowed run in flight");
    drop(first);

    let second = windowed_tero(2);
    second.restore_engine(snap);
    let horizon = world.horizon;
    let mut to = SimTime::EPOCH + day + day;
    let report = loop {
        match second.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => break report,
            WindowOutcome::Advanced => to = (to + day).min(horizon),
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    };
    assert_eq!(fingerprint(&report), reference, "restored run diverged");
    assert_eq!(
        schedule_invariant(funnel(&second)),
        ref_counters,
        "restored counters diverged"
    );
    let snap = second.metrics_snapshot();
    assert_eq!(snap.counter("pipeline.window.resumed"), Some(1));
    second
        .trace
        .ledger()
        .reconcile(&second.obs)
        .expect("replayed ledger reconciles");
}

/// Everything the online cleaner committed under `engine:clean:*`,
/// rendered order-stably: per-series state summaries plus the cursor
/// hash. These survive into the served store at the horizon, and —
/// because every summary field is a pure function of the sample prefix
/// consumed so far — must be byte-identical across window schedules,
/// worker counts, chaos kill/resume and a fresh-`Tero` restore.
fn clean_state(kv: &tero::store::KvStore) -> BTreeMap<String, String> {
    use tero::core::stages::clean::{CLEAN_CURSORS_KEY, CLEAN_PREFIX};
    let mut out = BTreeMap::new();
    for key in kv.keys_with_prefix(CLEAN_PREFIX) {
        if key == CLEAN_CURSORS_KEY {
            for (field, value) in kv.hgetall(&key) {
                out.insert(format!("{key}#{field}"), value);
            }
        } else {
            let value = kv.get(&key).expect("clean state keys are plain strings");
            out.insert(key, value);
        }
    }
    out
}

#[test]
fn windowed_online_clean_state_identical_across_schedules() {
    // Reference: the committed cleaner state after a single-shot run.
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_state = clean_state(&tero_ref.serving_store().expect("run completed"));
    assert!(
        ref_state.len() > 10,
        "clean state covers a real population of series"
    );

    let day = SimDuration::from_hours(24);
    for window in [Some(day), Some(SimDuration::from_hours(72)), None] {
        for workers in [1, 2, 8] {
            let mut world = windowed_world(None);
            let tero = windowed_tero(workers);
            let report = drive(&tero, &mut world, window);
            assert_eq!(fingerprint(&report), reference);
            assert_eq!(
                clean_state(&tero.serving_store().expect("run completed")),
                ref_state,
                "clean state diverged: window {window:?}, {workers} workers"
            );
        }
    }

    // Chaos kill mid-run: the re-driven window must resume the cleaner
    // from its committed cursors, not re-feed consumed records.
    let chaos_plan = FaultPlan {
        engine_kills: vec![EngineKill { window: 1 }],
        ..FaultPlan::quiet(7)
    };
    let mut world = windowed_world(Some(chaos_plan));
    let tero = windowed_tero(2);
    drive(&tero, &mut world, Some(day));
    assert_eq!(
        clean_state(&tero.serving_store().expect("run completed")),
        ref_state,
        "clean state diverged across a kill/resume"
    );

    // Fresh-`Tero` restore: the second engine rebuilds its cleaner from
    // the snapshot's sample lists and cursors alone.
    let mut world = windowed_world(None);
    let first = windowed_tero(2);
    assert!(matches!(
        first.run_window(&mut world, SimTime::EPOCH, SimTime::EPOCH + day),
        WindowOutcome::Advanced
    ));
    let snap = first.engine_snapshot().expect("windowed run in flight");
    drop(first);
    let second = windowed_tero(8);
    second.restore_engine(snap);
    let horizon = world.horizon;
    let mut to = SimTime::EPOCH + day + day;
    loop {
        match second.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(_) => break,
            WindowOutcome::Advanced => to = (to + day).min(horizon),
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    }
    assert_eq!(
        clean_state(&second.serving_store().expect("run completed")),
        ref_state,
        "clean state diverged across a fresh-Tero restore"
    );
}

#[test]
fn same_seed_same_process_is_reproducible() {
    // Two full runs in one process (fresh worlds, fresh registries) —
    // guards against hidden global state leaking between runs.
    let a = run_once(4, Some(7));
    let b = run_once(4, Some(7));
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
