//! Fig 15 (App. I) — sensitivity of the data-cleaning step to `StableLen`
//! and `LatGap`.
//!
//! Extracts measurements once, then re-runs segmentation + anomaly
//! detection across the parameter grid:
//!
//! * (a) % of users and data points surviving the all-unstable filter, and
//!   % of points flagged as spikes/glitches, as `StableLen` grows —
//!   paper: discarded users grow much faster than discarded points;
//! * (b) number of *significant* spikes (≥ threshold above the stream
//!   mean) vs `StableLen` for several `LatGap` values — paper: growth
//!   slows around 25–30 minutes, motivating `StableLen = 30 min`;
//! * (c) the proportion of kept-but-unstable points per user by `LatGap` —
//!   paper: nearly independent of `LatGap` once it is ≥ 15 ms.
//!
//! Usage: `fig15_sensitivity [--n 250] [--days 10]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::analysis::anomaly::{detect_anomalies, SegmentLabel};
use tero_core::analysis::segments::{segment_stream, Segment};
use tero_core::pipeline::{ExtractionMode, Tero};
use tero_types::{SimDuration, TeroParams};
use tero_world::{World, WorldConfig};

#[derive(Serialize)]
struct GridPoint {
    stable_len_min: u64,
    lat_gap_ms: u32,
    users_kept_pct: f64,
    points_kept_pct: f64,
    spike_points_pct: f64,
    glitch_points_pct: f64,
    significant_spikes_15ms: usize,
    unstable_kept_pct_p50: f64,
}

fn main() {
    let n = arg_usize("--n", 250);
    let days = arg_usize("--days", 10) as u64;
    header("Fig 15: sensitivity to StableLen and LatGap");

    let mut world = World::build(WorldConfig {
        seed: 1515,
        n_streamers: n,
        days,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    println!(
        "extracted series: {} {{streamer, game}} tuples",
        report.streams.len()
    );

    let mut grid: Vec<GridPoint> = Vec::new();
    for &lat_gap in &[8u32, 15, 25] {
        for &stable_min in &[5u64, 15, 25, 35, 45, 55] {
            let params = TeroParams::default()
                .with_lat_gap_ms(lat_gap)
                .with_stable_len(SimDuration::from_mins(stable_min));
            let mut users = 0usize;
            let mut users_kept = 0usize;
            let mut points = 0usize;
            let mut points_kept = 0usize;
            let mut spike_points = 0usize;
            let mut glitch_points = 0usize;
            let mut significant = 0usize;
            let mut unstable_fracs: Vec<f64> = Vec::new();
            for series in report.streams.values() {
                users += 1;
                let mut segments: Vec<Segment> = Vec::new();
                for (idx, s) in series.iter().enumerate() {
                    segments.extend(segment_stream(idx, &s.samples, &params));
                }
                let total: usize = segments.iter().map(|s| s.len()).sum();
                points += total;
                let rep = detect_anomalies(segments, &params);
                if rep.all_unstable {
                    continue;
                }
                users_kept += 1;
                points_kept += rep.clean_samples().len();
                spike_points += rep.spike_samples();
                glitch_points += rep
                    .segments
                    .iter()
                    .zip(&rep.labels)
                    .filter(|(_, l)| {
                        matches!(
                            l,
                            SegmentLabel::DiscardedGlitch | SegmentLabel::CorrectedGlitch
                        )
                    })
                    .map(|(s, _)| s.len())
                    .sum::<usize>();
                // Significant spikes: magnitude ≥ 15 ms over the stream mean
                // (the detector's magnitude is already relative to the
                // stable neighbourhood).
                significant += rep
                    .spikes
                    .iter()
                    .filter(|sp| sp.magnitude_ms >= 15.0)
                    .count();
                // Kept-but-unstable proportion for (c).
                let kept_unstable: usize = rep
                    .segments
                    .iter()
                    .zip(&rep.labels)
                    .filter(|(_, l)| **l == SegmentLabel::Kept)
                    .map(|(s, _)| s.len())
                    .sum();
                if total > 0 {
                    unstable_fracs.push(kept_unstable as f64 / total as f64);
                }
            }
            unstable_fracs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            grid.push(GridPoint {
                stable_len_min: stable_min,
                lat_gap_ms: lat_gap,
                users_kept_pct: 100.0 * users_kept as f64 / users.max(1) as f64,
                points_kept_pct: 100.0 * points_kept as f64 / points.max(1) as f64,
                spike_points_pct: 100.0 * spike_points as f64 / points.max(1) as f64,
                glitch_points_pct: 100.0 * glitch_points as f64 / points.max(1) as f64,
                significant_spikes_15ms: significant,
                unstable_kept_pct_p50: 100.0
                    * tero_stats::descriptive::percentile_sorted(&unstable_fracs, 50.0),
            });
        }
    }

    // (a) at the default LatGap.
    println!();
    println!("(a) LatGap = 15 ms:");
    println!(
        "{:>10} {:>11} {:>12} {:>9} {:>10}",
        "StableLen", "users kept", "points kept", "spikes %", "glitches %"
    );
    for g in grid.iter().filter(|g| g.lat_gap_ms == 15) {
        println!(
            "{:>7}min {:>10.1}% {:>11.1}% {:>8.2}% {:>9.2}%",
            g.stable_len_min,
            g.users_kept_pct,
            g.points_kept_pct,
            g.spike_points_pct,
            g.glitch_points_pct
        );
    }

    println!();
    println!("(b) significant spikes (≥15 ms) by StableLen and LatGap:");
    print!("{:>10}", "StableLen");
    for lg in [8, 15, 25] {
        print!(" {:>9}", format!("gap {lg}ms"));
    }
    println!();
    for &sl in &[5u64, 15, 25, 35, 45, 55] {
        print!("{sl:>7}min");
        for lg in [8u32, 15, 25] {
            let g = grid
                .iter()
                .find(|g| g.lat_gap_ms == lg && g.stable_len_min == sl)
                .unwrap();
            print!(" {:>9}", g.significant_spikes_15ms);
        }
        println!();
    }

    println!();
    println!("(c) median kept-but-unstable points per user, by LatGap (StableLen 25 min):");
    for lg in [8u32, 15, 25] {
        let g = grid
            .iter()
            .find(|g| g.lat_gap_ms == lg && g.stable_len_min == 25)
            .unwrap();
        println!("  LatGap {lg:>2} ms: {:.2}%", g.unstable_kept_pct_p50);
    }
    println!();
    println!("(paper: users discarded grow quickly with StableLen while points do not;");
    println!(" significant-spike growth slows around 25 min; the unstable share is");
    println!(" nearly LatGap-independent once LatGap ≥ 15 ms)");

    write_json("fig15_sensitivity", &grid);
}
