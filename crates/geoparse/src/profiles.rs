//! Twitch ↔ social-profile matching (§3.1).
//!
//! "(1) Given a streamer account A, it looks for a social profile with the
//! same username as A. (2) If it finds such a profile P, it checks whether
//! P includes an explicit link to A; if yes, it associates P and A." The
//! prototype considers Twitter and Steam profiles.

use serde::{Deserialize, Serialize};

/// The social platforms the prototype considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocialPlatform {
    /// Twitter (explicit `location` field, unstructured).
    Twitter,
    /// Steam (profile text).
    Steam,
}

/// A (simulated) social-media profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocialProfile {
    /// Platform the profile lives on.
    pub platform: SocialPlatform,
    /// The profile's username.
    pub username: String,
    /// Twitter's location field (or Steam's location text), if set.
    pub location_field: Option<String>,
    /// Unstructured profile/bio text.
    pub bio: String,
    /// The Twitch username this profile explicitly links to, if any.
    pub links_to_twitch: Option<String>,
}

/// Find the social profile associated with a Twitch username: same
/// username (case-insensitive) *and* an explicit backlink to that Twitch
/// account. Twitter profiles take precedence over Steam when both match.
pub fn match_profile<'a>(
    twitch_username: &str,
    profiles: &'a [SocialProfile],
) -> Option<&'a SocialProfile> {
    let mut candidates: Vec<&SocialProfile> = profiles
        .iter()
        .filter(|p| p.username.eq_ignore_ascii_case(twitch_username))
        .filter(|p| {
            p.links_to_twitch
                .as_deref()
                .is_some_and(|l| l.eq_ignore_ascii_case(twitch_username))
        })
        .collect();
    candidates.sort_by_key(|p| match p.platform {
        SocialPlatform::Twitter => 0,
        SocialPlatform::Steam => 1,
    });
    candidates.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(platform: SocialPlatform, username: &str, links_to: Option<&str>) -> SocialProfile {
        SocialProfile {
            platform,
            username: username.to_string(),
            location_field: None,
            bio: String::new(),
            links_to_twitch: links_to.map(str::to_string),
        }
    }

    #[test]
    fn requires_username_and_backlink() {
        let profiles = vec![
            profile(SocialPlatform::Twitter, "gamer42", Some("gamer42")),
            profile(SocialPlatform::Twitter, "other", Some("gamer42")),
            profile(SocialPlatform::Twitter, "gamer99", None),
        ];
        let m = match_profile("gamer42", &profiles).unwrap();
        assert_eq!(m.username, "gamer42");
        // Same backlink but different username: not matched (rule 1 fails).
        assert!(match_profile("other", &profiles).is_none());
        // Same username but no backlink: not matched (rule 2 fails).
        assert!(match_profile("gamer99", &profiles).is_none());
    }

    #[test]
    fn case_insensitive() {
        let profiles = vec![profile(SocialPlatform::Steam, "GaMeR42", Some("gamer42"))];
        assert!(match_profile("Gamer42", &profiles).is_some());
    }

    #[test]
    fn twitter_preferred_over_steam() {
        let profiles = vec![
            profile(SocialPlatform::Steam, "dual", Some("dual")),
            profile(SocialPlatform::Twitter, "dual", Some("dual")),
        ];
        assert_eq!(
            match_profile("dual", &profiles).unwrap().platform,
            SocialPlatform::Twitter
        );
    }

    #[test]
    fn impersonator_with_wrong_backlink_rejected() {
        // An account squatting the streamer's name but linking elsewhere.
        let profiles = vec![profile(
            SocialPlatform::Twitter,
            "famous",
            Some("famous_fake"),
        )];
        assert!(match_profile("famous", &profiles).is_none());
    }
}
