//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Inclusive-exclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.range_usize(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` strategy with the given element strategy and size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let v = vec(0u16..400, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 400));
        }
    }

    #[test]
    fn vec_can_be_empty() {
        let mut rng = TestRng::new(2);
        let mut saw_empty = false;
        for _ in 0..100 {
            if vec(0u8..5, 0..2).generate(&mut rng).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
