//! Packets and node identifiers.

use tero_types::SimTime;

/// Index of a node in the simulated topology.
pub type NodeId = usize;

/// What a packet carries. Flow indices refer to the simulator's flow
/// tables; game fields implement the RTT-echo protocol of [`crate::game`].
#[derive(Debug, Clone, PartialEq)]
pub enum PacketKind {
    /// UDP constant-bit-rate background traffic.
    Udp {
        /// Index into the simulator's UDP flow table.
        flow: usize,
    },
    /// A TCP data segment.
    TcpData {
        /// Index into the simulator's TCP flow table.
        flow: usize,
        /// Segment sequence number (in segments, not bytes).
        seq: u64,
    },
    /// A (cumulative) TCP acknowledgement.
    TcpAck {
        /// Index into the simulator's TCP flow table.
        flow: usize,
        /// Next expected segment number.
        ack: u64,
    },
    /// A game-client input packet, echoing the latest server timestamp.
    GameInput {
        /// Index into the simulator's game-client table.
        client: usize,
        /// The latest `server_ts` the client received (0 if none yet).
        echo_ts: SimTime,
        /// How long the client held that timestamp before echoing it; the
        /// server subtracts this to get a pure network RTT.
        hold_ms: u64,
    },
    /// A game-server state update carrying the server's timestamp and the
    /// latency value the client should display.
    GameUpdate {
        /// Index into the simulator's game-client table.
        client: usize,
        /// Server transmit timestamp (echoed back by the client).
        server_ts: SimTime,
        /// The windowed-average latency the HUD displays, in ms.
        displayed_ms: f64,
    },
}

/// A simulated packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Payload discriminator.
    pub kind: PacketKind,
    /// Creation time (for diagnostics).
    pub created: SimTime,
}

impl Packet {
    /// Serialization time of this packet on a link of the given rate.
    pub fn tx_time_ms(&self, rate_bps: f64) -> f64 {
        (self.size_bytes as f64 * 8.0) / rate_bps * 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time() {
        let p = Packet {
            src: 0,
            dst: 1,
            size_bytes: 1250,
            kind: PacketKind::Udp { flow: 0 },
            created: SimTime::EPOCH,
        };
        // 1250 B = 10,000 bits; at 100 Mbps that is 0.1 ms.
        assert!((p.tx_time_ms(100e6) - 0.1).abs() < 1e-12);
        // At 1 Gbps, 0.01 ms.
        assert!((p.tx_time_ms(1e9) - 0.01).abs() < 1e-12);
    }
}
