//! # tero-core
//!
//! The Tero pipeline — the paper's primary contribution (§3):
//!
//! * [`download`] — the coordinator/downloader architecture of App. A,
//!   polling the (simulated) Twitch API under its rate limit and racing
//!   thumbnail overwrites on the CDN;
//! * [`location`] — the location module (§3.1): Twitch descriptions,
//!   Twitter/Steam profile matching, geoparsing combination, tag recovery,
//!   multi-location streamers;
//! * [`imageproc`] — the image-processing module (§3.2 / App. E): game-UI
//!   cropping plus the three-engine OCR voting front-end from
//!   `tero-vision`;
//! * [`analysis`] — the data-analysis module (§3.3): same-QoE segmentation,
//!   glitch/spike detection and correction, shared anomalies (App. F),
//!   latency clustering, static/mobile classification, end-point changes
//!   and per-`{location, game}` latency distributions;
//! * [`behavior`] — the §6 user-behaviour study: Probit marginal effects of
//!   spikes on server and game changes (Table 5);
//! * [`stages`] — the staged execution engine's stage layer (App. B):
//!   five typed [`stages::Stage`] implementations (ingest, extract,
//!   clean, locate, publish) connected through `tero-store`
//!   lists and blobs;
//! * [`engine`] — the [`engine::Engine`] that owns the wiring (stores,
//!   pool, tracer, chaos) once and drives the stages windowed, with
//!   resumable cursors committed into the store;
//! * [`pipeline`] — the [`pipeline::Tero`] orchestrator: configuration,
//!   [`pipeline::PipelineMetrics`], and the [`pipeline::Tero::run`] /
//!   [`pipeline::Tero::run_window`] entry points against a `tero-world`
//!   platform;
//! * [`serving`] — the serving-layer key schema: where the engine commits
//!   mergeable quantile sketches into the store at each window boundary,
//!   and how the `tero-serve` query front-end finds them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod behavior;
pub mod download;
pub mod engine;
pub mod imageproc;
pub mod location;
pub mod pipeline;
pub mod serving;
pub mod sharded;
pub mod stages;

pub use engine::StoreSnapshot;
pub use pipeline::{Tero, TeroReport, WindowOutcome};
