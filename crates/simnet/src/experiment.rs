//! The Table 2 experiment matrix and the Fig 4 measurement protocol.
//!
//! Each experiment lasts 5 minutes: 2 minutes of start-up without
//! background traffic, 1 minute with 2 UDP flows (50 % of the bottleneck
//! bandwidth each), 1 minute with the UDP flows plus 8 TCP flows (10 % BD
//! each, staggered by 5 s), and 1 minute of die-down. Throughout, the
//! *displayed gaming latency* at Test and Control is sampled 5× per second,
//! together with the bottleneck's instantaneous network latency.

use crate::tcp::TcpFlow;
use crate::testbed::{build_testbed, Testbed};
use crate::udp::UdpFlow;
use serde::Serialize;
use tero_types::{SimDuration, SimTime};

/// The game being played during an experiment (§4.1 uses two: Genshin
/// Impact and League of Legends, chosen for their practice modes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GameProfile {
    /// Display name.
    pub name: &'static str,
    /// One-way propagation to the game server, ms (sets the base latency:
    /// ≈15 ms for Genshin Impact, ≈37 ms for League of Legends at Control).
    pub server_one_way_ms: u64,
    /// The server's RTT-averaging window, milliseconds (real games smooth
    /// their ping readout over a second or two).
    pub display_window_ms: u64,
}

impl GameProfile {
    /// Genshin Impact (Control displays ≈15 ms in the paper).
    pub const GENSHIN: GameProfile = GameProfile {
        name: "Genshin Impact",
        server_one_way_ms: 7,
        display_window_ms: 1_200,
    };
    /// League of Legends (Control displays ≈37 ms in the paper).
    pub const LOL: GameProfile = GameProfile {
        name: "League of Legends",
        server_one_way_ms: 18,
        display_window_ms: 1_500,
    };
}

/// One cell of the Table 2 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ExperimentConfig {
    /// The game played on both play-stations.
    pub game: GameProfile,
    /// Bottleneck bandwidth, bits/s (Table 2: 1 Gbps, 100 Mbps).
    pub bottleneck_bps: f64,
    /// Bottleneck queue size, packets (Table 2: 50, 500, 1000, 5000).
    pub bottleneck_queue: usize,
    /// Background packet size, bytes.
    pub bg_packet_bytes: u32,
}

impl ExperimentConfig {
    /// The full 2-game × 2-bandwidth × 4-queue Table 2 matrix for one game
    /// (8 experiments, as in the paper).
    pub fn matrix(game: GameProfile) -> Vec<ExperimentConfig> {
        let mut out = Vec::new();
        for &bw in &[1e9, 100e6] {
            for &q in &[50usize, 500, 1000, 5000] {
                out.push(ExperimentConfig {
                    game,
                    bottleneck_bps: bw,
                    bottleneck_queue: q,
                    bg_packet_bytes: 1250,
                });
            }
        }
        out
    }
}

/// One 200 ms sample row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Sample {
    /// Sample time, ms since experiment start.
    pub t_ms: u64,
    /// Displayed gaming latency at Test, ms.
    pub test_ms: f64,
    /// Displayed gaming latency at Control, ms.
    pub control_ms: f64,
    /// Instantaneous bottleneck network latency, ms (queue + serialization
    /// + round-trip propagation of the bottleneck link).
    pub bottleneck_ms: f64,
}

/// The result of one experiment run.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Configuration used.
    pub config: ExperimentConfig,
    /// All samples at 5 Hz.
    pub samples: Vec<Sample>,
    /// Whether Control and Test agreed during start-up (the paper aborts
    /// the run otherwise).
    pub startup_ok: bool,
    /// Packets dropped at the bottleneck.
    pub bottleneck_drops: u64,
}

impl ExperimentResult {
    /// The per-sample |adjusted gaming latency − bottleneck network
    /// latency| series, where adjusted = Test − Control (Fig 4's quantity).
    /// Start-up samples (display warm-up) are skipped.
    pub fn differences(&self) -> Vec<f64> {
        self.samples
            .iter()
            .filter(|s| s.t_ms >= 10_000)
            .map(|s| ((s.test_ms - s.control_ms) - s.bottleneck_ms).abs())
            .collect()
    }

    /// Largest bottleneck network latency observed (Fig 4's x-axis).
    pub fn max_bottleneck_ms(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.bottleneck_ms)
            .fold(0.0, f64::max)
    }

    /// Times (ms) of samples whose difference exceeds `threshold_ms`,
    /// used to verify that large differences cluster at the start/end of
    /// background traffic (§4.1's "lag" analysis).
    pub fn large_difference_times(&self, threshold_ms: f64) -> Vec<u64> {
        self.samples
            .iter()
            .filter(|s| s.t_ms >= 10_000)
            .filter(|s| ((s.test_ms - s.control_ms) - s.bottleneck_ms).abs() > threshold_ms)
            .map(|s| s.t_ms)
            .collect()
    }

    /// Mean and standard deviation of Control's displayed latency (the
    /// parenthesised numbers in Fig 4's legend).
    pub fn control_stats(&self) -> (f64, f64) {
        let xs: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.t_ms >= 10_000)
            .map(|s| s.control_ms)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len().max(1) as f64;
        (mean, var.sqrt())
    }
}

/// Phase boundaries of the 5-minute protocol, in seconds.
pub const STARTUP_END_S: u64 = 120;
/// When the UDP flows stop (end of the mixed phase).
pub const UDP_END_S: u64 = 240;
/// When the TCP flows start.
pub const TCP_START_S: u64 = 180;
/// Total experiment duration, seconds.
pub const EXPERIMENT_END_S: u64 = 300;

/// Run one experiment. `duration_scale` shrinks the 5-minute protocol for
/// tests (1.0 = the paper's timeline).
pub fn run_experiment(config: ExperimentConfig, duration_scale: f64) -> ExperimentResult {
    let scale = |s: u64| SimTime::from_secs_f64(s as f64 * duration_scale);

    let mut tb: Testbed = build_testbed(
        config.bottleneck_bps,
        config.bottleneck_queue,
        SimDuration::from_millis(config.game.server_one_way_ms),
        SimDuration::from_millis(config.game.display_window_ms),
    );

    // Two UDP flows at 50 % BD each, during [startup_end, udp_end).
    // iperf3's "-b 50M" meters *payload* bits; on the wire each datagram
    // carries ~42 B of UDP/IP/Ethernet framing plus 20 B of preamble and
    // inter-frame gap, so two 50 %-payload flows overdrive the bottleneck
    // by ~5 % — which is what pins the queue at capacity in the paper's
    // testbed (their reported 590 ms = a full 5000-packet queue at
    // 100 Mbps).
    let wire_overhead = 1.0 + 62.0 / config.bg_packet_bytes as f64;
    for _ in 0..2 {
        tb.sim.add_udp_flow(
            UdpFlow::cbr(
                tb.gen,
                tb.sink,
                config.bottleneck_bps * 0.5 * wire_overhead,
                config.bg_packet_bytes,
                scale(STARTUP_END_S),
                scale(UDP_END_S),
            )
            .with_jitter(0.1),
        );
    }
    // Eight TCP flows at 10 % BD each, staggered by 5 s, during the mixed
    // minute.
    for i in 0..8u64 {
        let start =
            scale(TCP_START_S) + SimDuration::from_secs_f64(5.0 * i as f64 * duration_scale);
        let flow = TcpFlow::new(tb.gen, tb.sink, start, scale(UDP_END_S))
            .with_app_limit(config.bottleneck_bps * 0.1);
        tb.sim.add_tcp_flow(flow);
    }

    // Sample at 5 Hz. The bottleneck's network latency is measured the way
    // a ping-based monitor would: instantaneous readings smoothed over a
    // sub-second window (the comparison in Fig 4 is between two *measured*
    // quantities, both with finite time resolution).
    let mut samples = Vec::new();
    let sample_every = SimDuration::from_millis(200);
    let end = scale(EXPERIMENT_END_S);
    let mut t = SimTime::EPOCH;
    let mut startup_ok = true;
    let mut bneck_window: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    while t <= end {
        tb.sim.run_until(t);
        let test_ms = tb.sim.game_clients[tb.test_client]
            .displayed_ms
            .unwrap_or(0.0);
        let control_ms = tb.sim.game_clients[tb.control_client]
            .displayed_ms
            .unwrap_or(0.0);
        let link = tb.sim.link(tb.bottleneck_down);
        // Round trip across the bottleneck: queue + tx downstream, plus
        // propagation both ways (the reverse direction is uncongested).
        let instantaneous =
            link.current_latency_ms(config.bg_packet_bytes) + link.cfg.prop.as_millis_f64();
        bneck_window.push_back(instantaneous);
        if bneck_window.len() > 4 {
            bneck_window.pop_front();
        }
        let bottleneck_ms = bneck_window.iter().sum::<f64>() / bneck_window.len() as f64;
        if t >= SimTime::from_secs(10)
            && t < scale(STARTUP_END_S)
            && (test_ms - control_ms).abs() > 3.0
        {
            startup_ok = false;
        }
        samples.push(Sample {
            t_ms: t.as_millis(),
            test_ms,
            control_ms,
            bottleneck_ms,
        });
        t += sample_every;
    }

    let bottleneck_drops = tb.sim.link(tb.bottleneck_down).drops;
    ExperimentResult {
        config,
        samples,
        startup_ok,
        bottleneck_drops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shortened experiment (12× faster) still shows the Fig 4 shape.
    #[test]
    fn gaming_latency_tracks_network_latency() {
        let cfg = ExperimentConfig {
            game: GameProfile::GENSHIN,
            bottleneck_bps: 20e6, // scaled down for test speed
            bottleneck_queue: 200,
            bg_packet_bytes: 1250,
        };
        let result = run_experiment(cfg, 1.0 / 12.0);
        assert!(result.startup_ok, "start-up check failed");

        let diffs = result.differences();
        assert!(!diffs.is_empty());
        let mut sorted = diffs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = sorted[sorted.len() / 2];
        assert!(p50 < 10.0, "median difference {p50} ms too large");

        // The bottleneck actually got congested at some point.
        assert!(
            result.max_bottleneck_ms() > 20.0,
            "max bottleneck {} ms",
            result.max_bottleneck_ms()
        );
    }

    #[test]
    fn control_baseline_matches_game_profile() {
        let cfg = ExperimentConfig {
            game: GameProfile::LOL,
            bottleneck_bps: 50e6,
            bottleneck_queue: 100,
            bg_packet_bytes: 1250,
        };
        let result = run_experiment(cfg, 1.0 / 20.0);
        let (mean, sd) = result.control_stats();
        // LoL base RTT ≈ 36-37 ms at Control, small deviation.
        assert!((mean - 36.5).abs() < 2.5, "control mean {mean}");
        assert!(sd < 3.0, "control sd {sd}");
    }

    #[test]
    fn matrix_enumerates_table2() {
        let m = ExperimentConfig::matrix(GameProfile::GENSHIN);
        assert_eq!(m.len(), 8);
        assert!(m
            .iter()
            .any(|c| c.bottleneck_bps == 1e9 && c.bottleneck_queue == 50));
        assert!(m
            .iter()
            .any(|c| c.bottleneck_bps == 100e6 && c.bottleneck_queue == 5000));
    }
}
