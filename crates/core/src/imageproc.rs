//! The image-processing module (§3.2, App. E).
//!
//! Wraps the `tero-vision` OCR front-end with the game-UI knowledge of
//! §3.2 step 1: each game displays latency at a known anchor, so the
//! module crops a small region of interest around it before running the
//! three engines and the 2-of-3 vote.

use tero_obs::{CounterHandle, HistogramHandle, Registry};
use tero_types::GameId;
use tero_vision::combine::{CombineOutcome, ExtractDetail, OcrCombiner, ENGINE_NAMES};
use tero_vision::font::{GLYPH_H, GLYPH_SPACING, GLYPH_W};
use tero_vision::scene::{Decoration, THUMB_H, THUMB_W};
use tero_vision::Image;
use tero_world::games::hud_spec;

/// The region of interest for a game's latency readout: `(x, y, w, h)`.
/// This is Tero's own game-UI knowledge table; it mirrors the HUD layout
/// the games actually use (and goes wrong in exactly the right way when a
/// stream is mislabeled).
pub fn roi_for_game(game: GameId) -> (usize, usize, usize, usize) {
    let spec = hud_spec(game);
    let scale = spec.text_scale;
    let margin = 3 * scale;
    let max_chars = match spec.decoration {
        Decoration::MsSuffix => 5,
        Decoration::PingPrefix => 8,
        Decoration::Bare => 5,
    };
    let w = max_chars * (GLYPH_W + GLYPH_SPACING) * scale + 2 * margin;
    let h = GLYPH_H * scale + 2 * margin;
    let x = spec.anchor.0.saturating_sub(margin);
    let y = spec.anchor.1.saturating_sub(margin);
    (x, y, w.min(THUMB_W - x), h.min(THUMB_H - y))
}

/// Per-engine metric handles: one `ocr.<engine>.{read,miss,confused}`
/// triple per OCR engine.
#[derive(Debug, Clone)]
struct EngineObs {
    read: CounterHandle,
    miss: CounterHandle,
    confused: CounterHandle,
}

/// Metric handles resolved once at [`ImageProcessor::with_registry`] time
/// so the per-thumbnail hot path never touches the registry lock.
#[derive(Debug, Clone)]
struct ProcObs {
    engines: [EngineObs; 3],
    reprocessed: CounterHandle,
    vote_unanimous: CounterHandle,
    vote_majority: CounterHandle,
    vote_failed: CounterHandle,
    extract_us: HistogramHandle,
    registry: Registry,
}

/// The image-processing module: game-aware cropping + the OCR combiner.
#[derive(Debug, Clone, Default)]
pub struct ImageProcessor {
    combiner: OcrCombiner,
    obs: Option<ProcObs>,
}

impl ImageProcessor {
    /// A processor with the default three-engine configuration.
    pub fn new() -> Self {
        ImageProcessor {
            combiner: OcrCombiner::new(),
            obs: None,
        }
    }

    /// A processor recording per-engine OCR outcomes (`ocr.*`) into
    /// `registry`. All metric handles are resolved here, once.
    pub fn with_registry(registry: &Registry) -> Self {
        let engines = ENGINE_NAMES.map(|name| EngineObs {
            read: registry.counter(&format!("ocr.{name}.read")),
            miss: registry.counter(&format!("ocr.{name}.miss")),
            confused: registry.counter(&format!("ocr.{name}.confused")),
        });
        ImageProcessor {
            combiner: OcrCombiner::new(),
            obs: Some(ProcObs {
                engines,
                reprocessed: registry.counter("ocr.reprocessed"),
                vote_unanimous: registry.counter("ocr.vote_unanimous"),
                vote_majority: registry.counter("ocr.vote_majority"),
                vote_failed: registry.counter("ocr.vote_failed"),
                extract_us: registry.histogram("ocr.extract_us"),
                registry: registry.clone(),
            }),
        }
    }

    /// Extract the latency from a thumbnail, given the game the stream is
    /// *labeled* as (§3.3.3: mislabeled streams make this crop the wrong
    /// screen area — those extractions mostly fail or produce junk).
    pub fn extract(&self, thumbnail: &Image, game_label: GameId) -> CombineOutcome {
        let timer = self
            .obs
            .as_ref()
            .map(|o| o.registry.stage_timer(&o.extract_us));
        let (outcome, detail) = self
            .combiner
            .extract_from_thumbnail_with_detail(thumbnail, roi_for_game(game_label));
        drop(timer);
        if let Some(obs) = &self.obs {
            record_detail(obs, outcome, detail);
        }
        outcome
    }
}

/// Bump the per-engine and vote counters for one extraction.
fn record_detail(obs: &ProcObs, outcome: CombineOutcome, detail: ExtractDetail) {
    let primary = match outcome {
        CombineOutcome::Extracted { primary, .. } => Some(primary),
        CombineOutcome::NoMeasurement => None,
    };
    for (eng, value) in obs.engines.iter().zip(detail.engine_values) {
        match value {
            None => eng.miss.inc(),
            Some(v) => {
                eng.read.inc();
                // Counts as confusion only when a vote succeeded and this
                // engine dissented — without a vote there is no reference.
                if primary.is_some_and(|p| p != v) {
                    eng.confused.inc();
                }
            }
        }
    }
    if detail.reprocessed {
        obs.reprocessed.inc();
    }
    match primary {
        None => obs.vote_failed.inc(),
        Some(p) => {
            let agree = detail
                .engine_values
                .iter()
                .filter(|v| **v == Some(p))
                .count();
            if agree >= 3 {
                obs.vote_unanimous.inc();
            } else {
                obs.vote_majority.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_geoparse::{Gazetteer, PlaceKind};
    use tero_types::{SimRng, SimTime};
    use tero_world::sessions::TruthSample;
    use tero_world::streamer::Streamer;
    use tero_world::twitch::render_thumbnail;

    fn sample(displayed: u32) -> TruthSample {
        TruthSample {
            t: SimTime::from_mins(200),
            true_rtt_ms: displayed as f64,
            displayed_ms: displayed,
            server_idx: 0,
            in_spike: false,
        }
    }

    fn streamer() -> Streamer {
        let gaz = Gazetteer::new();
        let home = gaz.lookup_kind("Chicago", PlaceKind::City)[0].clone();
        let mut rng = SimRng::new(77);
        // Pick a quirk-free streamer.
        loop {
            let s = Streamer::generate(&gaz, home.clone(), SimTime::from_hours(100), &mut rng);
            if !s.hud.light_font && !s.hud.clock_overlay && s.hud.occlusion_rate < 0.06 {
                return s;
            }
        }
    }

    #[test]
    fn rois_stay_inside_thumbnail() {
        for game in GameId::ALL {
            let (x, y, w, h) = roi_for_game(game);
            assert!(x + w <= THUMB_W, "{game}");
            assert!(y + h <= THUMB_H, "{game}");
            assert!(w >= 40 && h >= 14, "{game}: roi too small {w}x{h}");
        }
    }

    #[test]
    fn extracts_from_every_game_layout() {
        let s = streamer();
        let proc = ImageProcessor::new();
        let mut ok = 0;
        for game in GameId::ALL {
            let img = render_thumbnail(&s, game, &sample(87));
            if let CombineOutcome::Extracted { primary, .. } = proc.extract(&img, game) {
                if primary == 87 {
                    ok += 1;
                }
            }
        }
        assert!(ok >= 8, "correct extractions from {ok}/9 game layouts");
    }

    #[test]
    fn mislabel_breaks_extraction() {
        // Rendered as CoD (top-left "ping"), processed as LoL (top-right):
        // the crop misses the readout.
        let s = streamer();
        let proc = ImageProcessor::new();
        let img = render_thumbnail(&s, GameId::CodWarzone, &sample(64));
        match proc.extract(&img, GameId::LeagueOfLegends) {
            CombineOutcome::Extracted { primary, .. } => {
                assert_ne!(primary, 64, "wrong crop should not read the true value");
            }
            CombineOutcome::NoMeasurement => {} // the common case
        }
    }
}
