//! §4.2.3's anecdote — a release-day surge of shared anomalies.
//!
//! Injects a 5-day world-wide event series for one game (the paper's
//! Nov-16 Warzone 2.0 release) and checks that the shared-anomaly detector
//! (App. F) lights up for that game, in many locations, during those days
//! — and stays quiet elsewhere.
//!
//! Usage: `fig_anecdote_shared_event [--n 300] [--days 12]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::pipeline::{ExtractionMode, Tero};
use tero_types::GameId;
use tero_world::{World, WorldConfig};

#[derive(Serialize)]
struct Output {
    total_shared: usize,
    release_game_shared: usize,
    in_window: usize,
    regions_affected: usize,
}

fn main() {
    let n = arg_usize("--n", 300);
    let days = arg_usize("--days", 12) as u64;
    let release_day = 4u64;
    let game = GameId::CodWarzone;
    header("§4.2.3 anecdote: release-day shared-anomaly surge");
    println!(
        "(release of {} on day {release_day}, 5-day surge)",
        game.name()
    );

    // Shared-anomaly detection works within {region, game} aggregates and
    // needs population density (Eq. 2's significance gate): pin CoD
    // streamers at a handful of hubs, as the paper's organic data had in
    // its dense regions.
    let gaz = tero_geoparse::Gazetteer::new();
    let hubs = [
        "Los Angeles",
        "Chicago",
        "London",
        "Paris",
        "Sao Paulo",
        "Dallas",
    ];
    let per = (n / hubs.len()).max(10);
    let pinned = hubs
        .iter()
        .map(|h| (World::city(&gaz, h), game, per))
        .collect();
    let mut world = World::build(WorldConfig {
        seed: 1116,
        n_streamers: 0,
        days,
        pinned,
        shared_events: 3, // background noise only
        release_event: Some((game, release_day)),
        api_budget_per_min: 2_000,
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    let window_lo = release_day * 24 * 3_600;
    let window_hi = (release_day + 5) * 24 * 3_600;
    let total = report.shared_anomalies.len();
    let of_game = report
        .shared_anomalies
        .iter()
        .filter(|a| a.game == game)
        .count();
    let in_window = report
        .shared_anomalies
        .iter()
        .filter(|a| a.game == game)
        .filter(|a| (window_lo..window_hi).contains(&a.at.as_secs()))
        .count();
    let mut regions: Vec<String> = report
        .shared_anomalies
        .iter()
        .filter(|a| a.game == game)
        .map(|a| a.region.key())
        .collect();
    regions.sort();
    regions.dedup();

    println!();
    println!("shared anomalies detected: {total}");
    println!("  for the released game:   {of_game}");
    println!("  inside the 5-day window: {in_window}");
    println!("  distinct regions hit:    {}", regions.len());
    for r in regions.iter().take(12) {
        println!("    - {r}");
    }
    println!();
    if of_game > 0 && in_window as f64 >= 0.8 * of_game as f64 {
        println!("✓ the surge concentrates on the released game inside the window,");
        println!("  across multiple locations — the paper's Nov-16 signature.");
    } else {
        println!("⚠ surge not localized as expected; increase --n/--days.");
    }

    write_json(
        "fig_anecdote_shared_event",
        &Output {
            total_shared: total,
            release_game_shared: of_game,
            in_window,
            regions_affected: regions.len(),
        },
    );
}
