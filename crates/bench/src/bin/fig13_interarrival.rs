//! Fig 13 — CDF of thumbnail inter-arrival time.
//!
//! Measured from the download module's actual fetch timestamps over a
//! simulated world. The paper: inter-arrivals concentrate in [300 s,
//! ~400 s] with a 90th percentile of 6 minutes (which sets App. F's
//! 12-minute shared-anomaly window).
//!
//! Usage: `fig13_interarrival [--n 60]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::download::DownloadModule;
use tero_store::{KvStore, ObjectStore};
use tero_types::SimTime;
use tero_world::{World, WorldConfig};

#[derive(Serialize)]
struct Output {
    count: usize,
    p10_s: f64,
    p50_s: f64,
    p90_s: f64,
    p99_s: f64,
    cdf: Vec<(u64, f64)>,
}

fn main() {
    let n = arg_usize("--n", 60);
    header("Fig 13: CDF of thumbnail inter-arrival time");

    let mut world = World::build(WorldConfig {
        seed: 13,
        n_streamers: n,
        days: 5,
        ..WorldConfig::default()
    });
    let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
    let horizon = world.horizon;
    module.run(&mut world, SimTime::EPOCH, horizon);
    let mut tasks = module.drain_tasks();
    tasks.sort_by_key(|t| (t.streamer.as_str().to_string(), t.generated_at));

    // Inter-arrivals between consecutive thumbnails of the same streamer,
    // within one stream (gaps beyond 45 min are stream boundaries).
    let mut gaps_s: Vec<f64> = Vec::new();
    for pair in tasks.windows(2) {
        if pair[0].streamer == pair[1].streamer {
            let gap = pair[1]
                .generated_at
                .since(pair[0].generated_at)
                .as_secs_f64();
            if gap < 2_700.0 {
                gaps_s.push(gap);
            }
        }
    }
    gaps_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| tero_stats::descriptive::percentile_sorted(&gaps_s, p);

    println!("inter-arrivals measured: {}", gaps_s.len());
    println!(
        "p10 {:.0} s   p50 {:.0} s   p90 {:.0} s   p99 {:.0} s",
        pct(10.0),
        pct(50.0),
        pct(90.0),
        pct(99.0)
    );
    println!("(paper: mass in [300 s, ~400 s], 90th percentile = 6 min = 360 s)");
    println!();
    println!("CDF:");
    let mut cdf = Vec::new();
    for &t in &[300u64, 320, 340, 360, 380, 400, 600, 1200, 2400] {
        let frac =
            gaps_s.iter().filter(|&&g| g <= t as f64).count() as f64 / gaps_s.len().max(1) as f64;
        println!("  ≤ {t:>5} s: {:>5.1}%", 100.0 * frac);
        cdf.push((t, frac));
    }

    write_json(
        "fig13_interarrival",
        &Output {
            count: gaps_s.len(),
            p10_s: pct(10.0),
            p50_s: pct(50.0),
            p90_s: pct(90.0),
            p99_s: pct(99.0),
            cdf,
        },
    );
}
