//! # tero-serve
//!
//! The distribution query front-end: what "heavy traffic from millions of
//! users" concretely means for this system. The paper's end product is
//! per-`{location, game}` latency distributions (§5.2 boxplot
//! percentiles, Fig 8 Wasserstein comparisons); this crate answers
//! percentile, CDF, histogram and Wasserstein-distance **queries** over
//! them at production rates, from the mergeable quantile sketches the
//! staged engine commits into `tero-store` (see `tero_core::serving`).
//!
//! * [`engine`] — the [`QueryEngine`]: typed [`Query`]s and [`Answer`]s
//!   over a serving store, through a hot-key cache of decoded sketches;
//! * [`cache`] — the [`HotKeyCache`]: bounded LRU, invalidated whole
//!   when the serving version moves (one bump per window commit);
//! * [`loadgen`] — the seeded [`LoadGen`] and [`run_load`] replay:
//!   a deterministic production-shaped query mix fanned out over
//!   `tero-pool` against one shared engine.
//!
//! ## Accuracy and determinism
//!
//! Served percentiles sit within the sketch's documented relative-error
//! bound (`QuantileSketch::relative_error_bound`, ≈ 2 % at the default
//! accuracy) of the exact nearest-rank values behind the run report, and
//! the committed sketches — hence every answer — are byte-identical
//! across worker counts and window schedules. Pinned by
//! `tests/serve_accuracy.rs` and the property tests in
//! `tests/sketch_props.rs`.
//!
//! ```
//! use tero_core::pipeline::{ExtractionMode, Tero};
//! use tero_serve::QueryEngine;
//! use tero_types::{GameId, Location};
//! use tero_world::{World, WorldConfig};
//!
//! // Streamers pinned to two countries so the publish stage has groups
//! // that clear `min_streamers` (a random small world publishes nothing).
//! let pinned = ["Netherlands", "Poland"]
//!     .map(|c| (Location::country(c), GameId::LeagueOfLegends, 12))
//!     .into_iter()
//!     .collect();
//! let mut world = World::build(WorldConfig {
//!     seed: 42, n_streamers: 0, days: 2, pinned,
//!     api_budget_per_min: 2_000, ..WorldConfig::default()
//! });
//! let tero = Tero { mode: ExtractionMode::Calibrated, min_streamers: 2, ..Tero::default() };
//! let report = tero.run(&mut world);
//! let engine = QueryEngine::new(tero.serving_store().unwrap(), &tero.obs);
//!
//! // Every served distribution answers; `distributions()` is key-sorted.
//! let served = engine.distributions();
//! assert!(!served.is_empty());
//! assert_eq!(served.len(), report.distributions.len());
//! for (granularity, game, location_key) in &served {
//!     let target = tero_serve::SketchRef::dist(*granularity, *game, location_key);
//!     assert!(engine.percentile(&target, 95.0).is_some());
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod engine;
pub mod loadgen;

pub use cache::HotKeyCache;
pub use engine::{Answer, Query, QueryEngine, SketchRef, DEFAULT_CACHE_CAPACITY};
pub use loadgen::{fold_answers, run_load, LoadGen, LoadReport, QUERY_PERCENTILES};
