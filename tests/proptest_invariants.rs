//! Property-based tests over the core data structures and algorithms.

use proptest::prelude::*;
use tero::core::analysis::anomaly::detect_anomalies;
use tero::core::analysis::clusters::cluster_segments;
use tero::core::analysis::segments::segment_stream;
use tero::core::download::ThumbnailTask;
use tero::stats::{percentile, unevenness_score, wasserstein_1d, BoxplotStats};
use tero::store::KvStore;
use tero::types::{
    corrected_distance_km, haversine_km, GameId, LatLon, LatencySample, SimRng, SimTime,
    StreamerId, TeroParams,
};
use tero::vision::combine::{cleanup, vote};
use tero::vision::ocr::OcrChar;

fn samples(values: &[u16]) -> Vec<LatencySample> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| LatencySample::new(SimTime::from_mins(5 * i as u64), v as u32 + 1))
        .collect()
}

proptest! {
    // ---- geometry ---------------------------------------------------------

    #[test]
    fn haversine_is_a_metric(
        lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
        lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
        lat3 in -90.0f64..90.0, lon3 in -180.0f64..180.0,
    ) {
        let a = LatLon::new(lat1, lon1);
        let b = LatLon::new(lat2, lon2);
        let c = LatLon::new(lat3, lon3);
        let ab = haversine_km(a, b);
        let ba = haversine_km(b, a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= 20_100.0, "bounded by half circumference + eps");
        // Triangle inequality (with numerical slack).
        let ac = haversine_km(a, c);
        let cb = haversine_km(c, b);
        prop_assert!(ab <= ac + cb + 1e-6);
    }

    #[test]
    fn corrected_distance_at_least_geodesic(
        lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
        lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
        radius in 0.0f64..500.0,
    ) {
        let a = LatLon::new(lat1, lon1);
        let b = LatLon::new(lat2, lon2);
        let plain = haversine_km(a, b);
        let corrected = corrected_distance_km(a, b, radius);
        prop_assert!(corrected >= plain - 1e-9);
        prop_assert!((corrected - (plain + radius)).abs() < 1e-9);
    }

    // ---- statistics -------------------------------------------------------

    #[test]
    fn percentile_within_range(xs in prop::collection::vec(0.0f64..1000.0, 1..200), p in 0.0f64..100.0) {
        let v = percentile(&xs, p);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn boxplot_percentiles_are_ordered(xs in prop::collection::vec(0.0f64..500.0, 1..200)) {
        let b = BoxplotStats::from_samples(&xs).unwrap();
        prop_assert!(b.p5 <= b.p25 && b.p25 <= b.p50 && b.p50 <= b.p75 && b.p75 <= b.p95);
        prop_assert_eq!(b.n, xs.len());
    }

    #[test]
    fn wasserstein_is_symmetric_and_zero_on_self(
        a in prop::collection::vec(0.0f64..100.0, 1..60),
        b in prop::collection::vec(0.0f64..100.0, 1..60),
    ) {
        prop_assert!(wasserstein_1d(&a, &a) < 1e-9);
        let ab = wasserstein_1d(&a, &b);
        let ba = wasserstein_1d(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn unevenness_bounded(offsets in prop::collection::vec(0.0f64..300.0, 1..80)) {
        let s = unevenness_score(&offsets, 300.0);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    // ---- rng --------------------------------------------------------------

    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let v = rng.range_u64(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
            let f = rng.f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    // ---- segmentation / anomaly invariants ---------------------------------

    #[test]
    fn segments_partition_and_respect_latgap(values in prop::collection::vec(0u16..400, 0..120)) {
        let params = TeroParams::default();
        let xs = samples(&values);
        let segs = segment_stream(0, &xs, &params);
        let total: usize = segs.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, xs.len(), "partition");
        for s in &segs {
            prop_assert!(s.max_ms() - s.min_ms() <= params.lat_gap_ms, "span bound");
            prop_assert!(!s.is_empty());
        }
        // Samples stay in order.
        let flat: Vec<_> = segs.iter().flat_map(|s| s.samples.iter()).collect();
        for w in flat.windows(2) {
            prop_assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn anomaly_detection_never_invents_samples(values in prop::collection::vec(0u16..400, 0..120)) {
        let params = TeroParams::default();
        let xs = samples(&values);
        let segs = segment_stream(0, &xs, &params);
        let report = detect_anomalies(segs, &params);
        prop_assert_eq!(report.total_samples(), xs.len());
        prop_assert!(report.clean_samples().len() <= xs.len());
        prop_assert!(report.spike_samples() <= xs.len());
        let frac = report.spike_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn clustering_conserves_samples(values in prop::collection::vec(0u16..400, 12..120)) {
        let params = TeroParams::default();
        let xs = samples(&values);
        let segs = segment_stream(0, &xs, &params);
        let stable: Vec<_> = segs.iter().filter(|s| s.stable).collect();
        let stable_total: usize = stable.iter().map(|s| s.len()).sum();
        let clusters = cluster_segments(&stable, params.lat_gap_ms);
        let clustered: usize = clusters.iter().map(|c| c.samples.len()).sum();
        prop_assert_eq!(clustered, stable_total);
        let weight_sum: f64 = clusters.iter().map(|c| c.weight).sum();
        if stable_total > 0 {
            prop_assert!((weight_sum - 1.0).abs() < 1e-9);
        }
        // Clusters are separated by at least LatGap.
        for (i, a) in clusters.iter().enumerate() {
            for b in clusters.iter().skip(i + 1) {
                prop_assert!(!a.touches(b, params.lat_gap_ms), "unmerged touching clusters");
            }
        }
    }

    // ---- OCR cleanup / voting ----------------------------------------------

    #[test]
    fn cleanup_output_is_valid_latency(text in "[0-9msping :]{0,12}") {
        let chars: Vec<OcrChar> = text.chars().map(|ch| OcrChar { ch, distance: 0.0 }).collect();
        if let Some(v) = cleanup(&chars) {
            prop_assert!((1..=999).contains(&v));
        }
    }

    #[test]
    fn vote_agrees_with_majority(a in prop::option::of(1u32..999), b in prop::option::of(1u32..999), c in prop::option::of(1u32..999)) {
        let out = vote([a, b, c]);
        if let Some((primary, alt)) = out {
            // Primary must be held by at least two engines.
            let count = [a, b, c].iter().filter(|&&v| v == Some(primary)).count();
            prop_assert!(count >= 2);
            if let Some(alt) = alt {
                prop_assert_ne!(alt, primary);
                prop_assert!([a, b, c].contains(&Some(alt)));
            }
        }
    }

    // ---- store -------------------------------------------------------------

    #[test]
    fn kv_list_preserves_fifo(items in prop::collection::vec("[a-z0-9]{1,8}", 0..40)) {
        let kv = KvStore::new();
        for item in &items {
            kv.rpush("q", item.clone());
        }
        let mut popped = Vec::new();
        while let Some(v) = kv.lpop("q") {
            popped.push(v);
        }
        prop_assert_eq!(popped, items);
    }

    // ---- download queue ----------------------------------------------------

    #[test]
    fn thumbnail_task_roundtrips_any_username(
        // Deliberately includes the field separator `|` and the escape
        // character `%` — encode must keep the field layout unambiguous.
        username in "[a-zA-Z0-9_|%]{1,24}",
        game_idx in 0usize..GameId::ALL.len(),
        at_us in 0u64..u64::MAX / 2,
        key in "[a-z0-9/]{1,30}",
    ) {
        let task = ThumbnailTask {
            streamer: StreamerId::new(&username),
            game_label: GameId::ALL[game_idx],
            generated_at: SimTime::from_micros(at_us),
            object_key: key.clone(),
        };
        let encoded = task.encode();
        prop_assert_eq!(ThumbnailTask::decode(&encoded), Some(task));
    }

    #[test]
    fn kv_set_get_roundtrip(pairs in prop::collection::vec(("[a-z]{1,10}", "[a-zA-Z0-9]{0,20}"), 0..40)) {
        let kv = KvStore::new();
        let mut model = std::collections::HashMap::new();
        for (k, v) in &pairs {
            kv.set(k, v.clone());
            model.insert(k.clone(), v.clone());
        }
        for (k, v) in &model {
            prop_assert_eq!(kv.get(k), Some(v.clone()));
        }
    }
}
