//! Glitch and spike detection (§3.3.2, Fig 1).
//!
//! Tero stitches together all same-QoE segments of one `{streamer, game}`
//! and looks for unstable segments that sit significantly below (glitches —
//! typically OCR digit drops) or above (spikes — typically real congestion)
//! their stable neighbours. Detected segments are *corrected* with the OCR
//! alternative values where possible, and discarded otherwise. The final
//! cleanup keeps unflagged unstable segments that are within `LatGap` of a
//! stable neighbour (a stable run interrupted by a spike) and discards the
//! rest (likely glitch residue).

use crate::analysis::segments::Segment;
use serde::{Deserialize, Serialize};
use tero_types::{LatencySample, TeroParams};

/// The label the anomaly detector assigns to each segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentLabel {
    /// Stable segment (≥ StableLen points).
    Stable,
    /// Unstable, unflagged, and within LatGap of a stable neighbour —
    /// kept (Fig 1d's green square).
    Kept,
    /// Flagged as a glitch and successfully corrected via alternatives.
    CorrectedGlitch,
    /// Flagged as a spike and successfully corrected via alternatives
    /// (the spike was an OCR error after all).
    CorrectedSpike,
    /// Flagged as a spike and not correctable — a genuine latency increase;
    /// excluded from distributions but counted as a spike.
    Spike,
    /// Flagged as a glitch and not correctable — discarded.
    DiscardedGlitch,
    /// Unflagged unstable segment too far from its neighbours — discarded
    /// (Fig 1d's red cross).
    Discarded,
}

/// One detected spike (after merging consecutive spike segments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeEvent {
    /// Indices of the merged spike segments.
    pub segment_idxs: Vec<usize>,
    /// Latency increase over the neighbouring stable level, ms.
    pub magnitude_ms: f64,
    /// First sample time of the spike.
    pub start: tero_types::SimTime,
    /// Last sample time of the spike.
    pub end: tero_types::SimTime,
    /// Number of samples inside the spike.
    pub samples: usize,
}

/// The anomaly detector's output for one `{streamer, game}` series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnomalyReport {
    /// The segments (corrected in place where correction succeeded).
    pub segments: Vec<Segment>,
    /// A label per segment.
    pub labels: Vec<SegmentLabel>,
    /// Merged spike events (§3.3.2's final spikes).
    pub spikes: Vec<SpikeEvent>,
    /// Whether the streamer had no stable segment at all — in which case
    /// all their data is discarded (§3.3.1).
    pub all_unstable: bool,
}

impl AnomalyReport {
    /// Samples that survive cleaning: stable, kept and corrected segments.
    pub fn clean_samples(&self) -> Vec<LatencySample> {
        self.segments
            .iter()
            .zip(&self.labels)
            .filter(|(_, l)| {
                matches!(
                    l,
                    SegmentLabel::Stable
                        | SegmentLabel::Kept
                        | SegmentLabel::CorrectedGlitch
                        | SegmentLabel::CorrectedSpike
                )
            })
            .flat_map(|(s, _)| s.samples.iter().copied())
            .collect()
    }

    /// The number of samples [`AnomalyReport::clean_samples`] would return,
    /// without materialising them (the pipeline counts survivors per
    /// series; allocating a fresh sample vector per report just to `len()`
    /// it dominated the analysis stage's allocations).
    pub fn clean_count(&self) -> usize {
        self.segments
            .iter()
            .zip(&self.labels)
            .filter(|(_, l)| {
                matches!(
                    l,
                    SegmentLabel::Stable
                        | SegmentLabel::Kept
                        | SegmentLabel::CorrectedGlitch
                        | SegmentLabel::CorrectedSpike
                )
            })
            .map(|(s, _)| s.samples.len())
            .sum()
    }

    /// Total samples in the input series.
    pub fn total_samples(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Number of samples inside (uncorrected) spikes.
    pub fn spike_samples(&self) -> usize {
        self.spikes.iter().map(|s| s.samples).sum()
    }

    /// The proportion of spike points (the `MaxSpikes` quantity, §3.3.3).
    pub fn spike_fraction(&self) -> f64 {
        let total = self.total_samples();
        if total == 0 {
            return 0.0;
        }
        self.spike_samples() as f64 / total as f64
    }

    /// Stable segments with their indices (the clustering input).
    pub fn stable_segments(&self) -> Vec<(usize, &Segment)> {
        self.segments
            .iter()
            .enumerate()
            .zip(&self.labels)
            .filter(|(_, l)| **l == SegmentLabel::Stable)
            .map(|((i, s), _)| (i, s))
            .collect()
    }
}

/// Find the closest segment to the left of `i` whose label satisfies
/// `pred`.
fn closest_left<F: Fn(SegmentLabel) -> bool>(
    labels: &[SegmentLabel],
    i: usize,
    pred: F,
) -> Option<usize> {
    (0..i).rev().find(|&j| pred(labels[j]))
}

/// Find the closest segment to the right of `i` whose label satisfies
/// `pred`.
fn closest_right<F: Fn(SegmentLabel) -> bool>(
    labels: &[SegmentLabel],
    i: usize,
    pred: F,
) -> Option<usize> {
    (i + 1..labels.len()).find(|&j| pred(labels[j]))
}

/// Run glitch/spike detection on the stitched segments of one
/// `{streamer, game}` series.
pub fn detect_anomalies(mut segments: Vec<Segment>, params: &TeroParams) -> AnomalyReport {
    let gap = params.lat_gap_ms;
    let n = segments.len();
    let mut labels: Vec<SegmentLabel> = segments
        .iter()
        .map(|s| {
            if s.stable {
                SegmentLabel::Stable
            } else {
                SegmentLabel::Kept // provisional; refined below
            }
        })
        .collect();

    // §3.3.1: a streamer with only unstable segments is dropped wholesale.
    if !labels.contains(&SegmentLabel::Stable) {
        let labels = vec![SegmentLabel::Discarded; n];
        return AnomalyReport {
            segments,
            labels,
            spikes: Vec::new(),
            all_unstable: true,
        };
    }

    let is_stable = |l: SegmentLabel| l == SegmentLabel::Stable;

    // Glitch detection (Fig 1a): unstable S whose *maximum* is lower by at
    // least LatGap than the *minimum* of the closest stable segment on
    // each side.
    let mut glitch = vec![false; n];
    for i in 0..n {
        if labels[i] == SegmentLabel::Stable {
            continue;
        }
        let (Some(l), Some(r)) = (
            closest_left(&labels, i, is_stable),
            closest_right(&labels, i, is_stable),
        ) else {
            continue;
        };
        let bound = segments[l].min_ms().min(segments[r].min_ms());
        if segments[i].max_ms().saturating_add(gap) <= bound {
            glitch[i] = true;
        }
    }

    // Iterative spike detection (Fig 1b): first pass needs both stable
    // neighbours below; later passes accept one stable neighbour plus one
    // already-flagged spike.
    let mut spike = vec![false; n];
    loop {
        let mut changed = false;
        for i in 0..n {
            if labels[i] == SegmentLabel::Stable || glitch[i] || spike[i] {
                continue;
            }
            let min = segments[i].min_ms();
            let above = |j: usize| min >= segments[j].max_ms().saturating_add(gap);
            // Closest relevant neighbour on each side: stable or spike.
            let relevant = |l: SegmentLabel| l == SegmentLabel::Stable;
            let left_stable = closest_left(&labels, i, relevant);
            let right_stable = closest_right(&labels, i, relevant);
            let left_spike = (0..i).rev().find(|&j| spike[j]);
            let right_spike = (i + 1..n).find(|&j| spike[j]);
            // Nearest of (stable, spike) on each side decides the side's
            // character.
            let left_kind = match (left_stable, left_spike) {
                (Some(s), Some(p)) => Some((s.max(p), p > s)),
                (Some(s), None) => Some((s, false)),
                (None, Some(p)) => Some((p, true)),
                (None, None) => None,
            };
            let right_kind = match (right_stable, right_spike) {
                (Some(s), Some(p)) => Some((s.min(p), p < s)),
                (Some(s), None) => Some((s, false)),
                (None, Some(p)) => Some((p, true)),
                (None, None) => None,
            };
            let flagged = match (left_kind, right_kind) {
                (Some((l, l_is_spike)), Some((r, r_is_spike))) => {
                    match (l_is_spike, r_is_spike) {
                        (false, false) => above(l) && above(r),
                        (true, false) => above(r),
                        (false, true) => above(l),
                        (true, true) => true, // sandwiched between spikes
                    }
                }
                _ => false,
            };
            if flagged {
                spike[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Correction via OCR alternatives (§3.3.2 last paragraphs): replace
    // each flagged segment's samples with their alternatives; the segment
    // is kept iff every corrected value lands within LatGap of the closest
    // stable neighbour on either side.
    for i in 0..n {
        if !glitch[i] && !spike[i] {
            continue;
        }
        let corrected: Option<Vec<LatencySample>> =
            segments[i].samples.iter().map(|s| s.corrected()).collect();
        let fits = |cand: &[LatencySample]| {
            let sides = [
                closest_left(&labels, i, is_stable),
                closest_right(&labels, i, is_stable),
            ];
            sides.iter().flatten().any(|&j| {
                let lo = segments[j].min_ms().saturating_sub(gap);
                let hi = segments[j].max_ms().saturating_add(gap);
                cand.iter()
                    .all(|s| s.latency_ms >= lo && s.latency_ms <= hi)
            })
        };
        match corrected {
            Some(cand) if fits(&cand) => {
                segments[i].samples = cand;
                labels[i] = if glitch[i] {
                    SegmentLabel::CorrectedGlitch
                } else {
                    SegmentLabel::CorrectedSpike
                };
                glitch[i] = false;
                spike[i] = false;
            }
            _ => {
                labels[i] = if glitch[i] {
                    SegmentLabel::DiscardedGlitch
                } else {
                    SegmentLabel::Spike
                };
            }
        }
    }

    // Cleanup (Fig 1d): unflagged unstable segments stay only when within
    // LatGap of the closest stable segment on either side.
    for i in 0..n {
        if labels[i] != SegmentLabel::Kept {
            continue;
        }
        let near = [
            closest_left(&labels, i, is_stable),
            closest_right(&labels, i, is_stable),
        ]
        .iter()
        .flatten()
        .any(|&j| {
            let seg = &segments[i];
            let other = &segments[j];
            seg.within_gap_of(other, gap)
        });
        if !near {
            labels[i] = SegmentLabel::Discarded;
        }
    }

    // Merge consecutive spikes (Fig 1c) into spike events.
    let mut spikes = Vec::new();
    let mut i = 0;
    while i < n {
        if labels[i] != SegmentLabel::Spike {
            i += 1;
            continue;
        }
        let mut group = vec![i];
        let mut j = i + 1;
        while j < n && labels[j] == SegmentLabel::Spike {
            group.push(j);
            j += 1;
        }
        // Magnitude: mean of the spike minus mean of the closest stable
        // neighbour.
        let spike_mean = group
            .iter()
            .flat_map(|&k| segments[k].samples.iter())
            .map(|s| s.latency_ms as f64)
            .sum::<f64>()
            / group
                .iter()
                .map(|&k| segments[k].len())
                .sum::<usize>()
                .max(1) as f64;
        let reference = closest_left(&labels, group[0], is_stable)
            .or_else(|| closest_right(&labels, *group.last().unwrap(), is_stable));
        let ref_mean = reference
            .map(|j| {
                segments[j]
                    .samples
                    .iter()
                    .map(|s| s.latency_ms as f64)
                    .sum::<f64>()
                    / segments[j].len().max(1) as f64
            })
            .unwrap_or(spike_mean);
        let start = segments[group[0]]
            .samples
            .first()
            .map(|s| s.at)
            .unwrap_or_default();
        let end = segments[*group.last().unwrap()]
            .samples
            .last()
            .map(|s| s.at)
            .unwrap_or_default();
        let count = group.iter().map(|&k| segments[k].len()).sum();
        spikes.push(SpikeEvent {
            segment_idxs: group,
            magnitude_ms: (spike_mean - ref_mean).max(0.0),
            start,
            end,
            samples: count,
        });
        i = j;
    }

    AnomalyReport {
        segments,
        labels,
        spikes,
        all_unstable: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::segments::segment_stream;
    use tero_types::{SimTime, TeroParams};

    fn series(values: &[(u32, Option<u32>)]) -> Vec<Segment> {
        let samples: Vec<LatencySample> = values
            .iter()
            .enumerate()
            .map(|(i, &(v, alt))| match alt {
                Some(a) => LatencySample::with_alternative(SimTime::from_mins(5 * i as u64), v, a),
                None => LatencySample::new(SimTime::from_mins(5 * i as u64), v),
            })
            .collect();
        segment_stream(0, &samples, &TeroParams::default())
    }

    fn plain(values: &[u32]) -> Vec<Segment> {
        series(&values.iter().map(|&v| (v, None)).collect::<Vec<_>>())
    }

    #[test]
    fn flat_series_all_stable() {
        let report = detect_anomalies(plain(&[40; 12]), &TeroParams::default());
        assert!(!report.all_unstable);
        assert!(report.labels.iter().all(|&l| l == SegmentLabel::Stable));
        assert_eq!(report.clean_samples().len(), 12);
        assert!(report.spikes.is_empty());
    }

    #[test]
    fn glitch_detected_and_corrected() {
        // 45ms throughout; one sample misread as 5 (digit drop) with the
        // correct alternative kept by the OCR voter.
        let mut vals: Vec<(u32, Option<u32>)> = vec![(45, None); 6];
        vals.push((5, Some(45)));
        vals.extend(std::iter::repeat_n((45, None), 6));
        let report = detect_anomalies(series(&vals), &TeroParams::default());
        assert_eq!(report.labels[1], SegmentLabel::CorrectedGlitch);
        assert_eq!(report.clean_samples().len(), 13, "corrected value kept");
        assert!(report
            .clean_samples()
            .iter()
            .all(|s| (40..=50).contains(&s.latency_ms)));
    }

    #[test]
    fn glitch_without_alternative_is_discarded() {
        let mut vals: Vec<(u32, Option<u32>)> = vec![(45, None); 6];
        vals.push((5, None));
        vals.extend(std::iter::repeat_n((45, None), 6));
        let report = detect_anomalies(series(&vals), &TeroParams::default());
        assert_eq!(report.labels[1], SegmentLabel::DiscardedGlitch);
        assert_eq!(report.clean_samples().len(), 12);
    }

    #[test]
    fn genuine_spike_detected() {
        // Stable 40s, a 3-point excursion to 90, back to stable 40s.
        let mut vals = vec![40u32; 7];
        vals.extend([90, 92, 91]);
        vals.extend([40u32; 7].iter());
        let report = detect_anomalies(plain(&vals), &TeroParams::default());
        assert_eq!(report.spikes.len(), 1);
        let spike = &report.spikes[0];
        assert_eq!(spike.samples, 3);
        assert!(
            (spike.magnitude_ms - 51.0).abs() < 2.0,
            "{}",
            spike.magnitude_ms
        );
        // Spike samples are excluded from the clean series.
        assert_eq!(report.clean_samples().len(), 14);
    }

    #[test]
    fn staircase_spike_second_iteration() {
        // Fig 1b: a spike that rises in two unstable steps; the second step
        // is flagged in iteration 1, the first only because its right
        // neighbour is already a spike.
        let mut vals = vec![40u32; 7];
        vals.extend([60, 61]); // step 1: above left stable only
        vals.extend([95, 96, 94]); // step 2: above both stable sides
        vals.extend([40u32; 7].iter());
        let report = detect_anomalies(plain(&vals), &TeroParams::default());
        // Both unstable steps end up in spike events.
        let spike_samples: usize = report.spikes.iter().map(|s| s.samples).sum();
        assert_eq!(spike_samples, 5, "labels: {:?}", report.labels);
        // Consecutive spikes merged into one event.
        assert_eq!(report.spikes.len(), 1);
    }

    #[test]
    fn interrupted_stable_segment_is_kept() {
        // Fig 1d's green square: stable 40s, spike, then a *short* 40s tail
        // (unstable because short) — the tail must be kept, not discarded.
        let mut vals = vec![40u32; 7];
        vals.extend([95, 96, 97]);
        vals.extend([41u32, 40, 42]); // 3 points: unstable but near stable
        let report = detect_anomalies(plain(&vals), &TeroParams::default());
        let last = report.labels.len() - 1;
        assert_eq!(report.labels[last], SegmentLabel::Kept);
        assert_eq!(report.clean_samples().len(), 10);
    }

    #[test]
    fn faraway_unstable_residue_is_discarded() {
        // Fig 1d's red cross: an unstable segment at a level that is
        // neither below both stable neighbours (glitch) nor above both
        // (spike), and too far from either to be kept.
        let mut vals = vec![40u32; 7];
        vals.extend([65u32, 66]);
        vals.extend([90u32; 7].iter());
        let report = detect_anomalies(plain(&vals), &TeroParams::default());
        assert_eq!(
            report.labels[1],
            SegmentLabel::Discarded,
            "{:?}",
            report.labels
        );
    }

    #[test]
    fn low_segment_between_stables_is_a_glitch() {
        // Below both stable neighbours by ≥ LatGap on each side.
        let mut vals = vec![60u32; 7];
        vals.extend([20u32, 21]);
        vals.extend([90u32; 7].iter());
        let report = detect_anomalies(plain(&vals), &TeroParams::default());
        assert_eq!(
            report.labels[1],
            SegmentLabel::DiscardedGlitch,
            "{:?}",
            report.labels
        );
    }

    #[test]
    fn all_unstable_streamer_dropped() {
        // Wildly oscillating: no segment reaches 6 points.
        let vals: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 40 } else { 90 }).collect();
        let report = detect_anomalies(plain(&vals), &TeroParams::default());
        assert!(report.all_unstable);
        assert!(report.clean_samples().is_empty());
    }

    #[test]
    fn spike_fraction_accounting() {
        let mut vals = vec![40u32; 12];
        vals.extend([95, 96, 94, 95].iter()); // 4-point spike
        vals.extend([40u32; 12].iter());
        let report = detect_anomalies(plain(&vals), &TeroParams::default());
        assert_eq!(report.total_samples(), 28);
        assert_eq!(report.spike_samples(), 4);
        assert!((report.spike_fraction() - 4.0 / 28.0).abs() < 1e-9);
    }

    #[test]
    fn spike_correctable_by_alternative_is_fixed() {
        // "15ms misread as 75ms": alternative holds the true value.
        let mut vals: Vec<(u32, Option<u32>)> = vec![(15, None); 7];
        vals.push((75, Some(15)));
        vals.extend(std::iter::repeat_n((15, None), 7));
        let report = detect_anomalies(series(&vals), &TeroParams::default());
        assert_eq!(report.labels[1], SegmentLabel::CorrectedSpike);
        assert!(report.spikes.is_empty(), "corrected spikes are not spikes");
        assert_eq!(report.clean_samples().len(), 15);
    }
}
