//! OCR gallery — render the Fig 6 failure modes and watch the three-engine
//! voting front-end handle (or legitimately fail) each one.
//!
//! ```sh
//! cargo run --release --example ocr_gallery
//! ```

use tero::types::SimRng;
use tero::vision::combine::{CombineOutcome, OcrCombiner};
use tero::vision::ocr::{OcrEngine, OcrEngineKind};
use tero::vision::scene::HudScene;

fn inspect(title: &str, scene: &HudScene, seed: u64) {
    let combiner = OcrCombiner::new();
    let mut rng = SimRng::new(seed);
    let thumb = scene.render(&mut rng);
    let roi = scene.roi();
    let crop = thumb.crop(roi.0, roi.1, roi.2, roi.3);

    println!();
    println!(
        "=== {title} — HUD shows {:?} (true latency {} ms) ===",
        scene.hud_text(),
        scene.latency_ms
    );
    print!("{}", crop.to_ascii());

    // What each engine reads on its own.
    for kind in OcrEngineKind::ALL {
        let engine = OcrEngine::new(kind);
        let upscaled = crop.upscale(3);
        let chars = engine.recognize_gray(&upscaled, &combiner.preprocess_cfg);
        let raw: String = chars.iter().map(|c| c.ch).collect();
        let value = tero::vision::combine::cleanup(&chars);
        println!("  {:<16} read {raw:?} → {value:?}", kind.name());
    }
    // The vote.
    match combiner.extract(&crop) {
        CombineOutcome::Extracted {
            primary,
            alternative,
        } => println!("  VOTE: {primary} ms (alternative {alternative:?})"),
        CombineOutcome::NoMeasurement => println!("  VOTE: no measurement (discarded)"),
    }
}

fn main() {
    println!("The four Fig 6 scenarios through the image-processing module:");
    inspect("(a) typical", &HudScene::typical(45), 11);
    inspect("(b) light font", &HudScene::light_font(45), 12);
    inspect(
        "(c) partially hidden",
        &HudScene::partially_hidden(145, 0.4),
        13,
    );
    inspect(
        "(d) clock overlay",
        &HudScene::clock_overlay(45, 19, 42),
        14,
    );

    println!();
    println!("(a) reads cleanly; (b) dies at thresholding; (c) drops the covered");
    println!("digit — all engines agree on the visible tail, which is why digit");
    println!("drops dominate Tero's errors; (d) is the paper's trickiest case: a");
    println!("plausible-but-wrong value that only data-analysis can catch.");
}
