//! The ground-truth latency process.
//!
//! A streamer's RTT to a game server decomposes into:
//!
//! * **propagation** — speed-of-light-in-fibre over the *corrected
//!   distance* (§3.3.3), times a path-stretch factor;
//! * **regional quality** — a per-region multiplier/spread modelling eyeball
//!   ISP quality, the ingredient behind the paper's headline observation
//!   that same-doughnut regions differ by tens of ms (Figs 10–11);
//! * **access delay** — the streamer's last-mile (fibre vs DSL vs cable);
//! * **jitter** — per-sample Gaussian noise;
//! * **spikes** — transient increases from congestion or overload, Poisson
//!   in time with log-normal magnitude;
//! * **shared anomalies** — region- or game-wide events that lift many
//!   streamers at once (App. F's subject matter, incl. the Nov-16-style
//!   release-day surge of §4.2.3).

use crate::games::GameServer;
use tero_geoparse::{Gazetteer, Place};
use tero_types::{
    corrected_distance_km, fiber_delay_ms, GameId, Location, SimDuration, SimRng, SimTime,
};

/// Per-region network quality: `(stretch multiplier, per-streamer spread)`.
///
/// The overrides pin the paper's named examples so the regenerated figures
/// show the same qualitative winners and losers; all other regions get a
/// stable hash-derived multiplier in a realistic range.
#[allow(clippy::type_complexity)]
pub fn region_quality(country: &str, region: Option<&str>) -> (f64, f64) {
    let key = (country, region.unwrap_or(""));
    let overrides: &[((&str, &str), (f64, f64))] = &[
        // US doughnut contrast (Fig 10): DC/NC poor, Missouri/Texas good.
        (("United States", "District of Columbia"), (2.6, 0.25)),
        (("United States", "North Carolina"), (2.2, 0.25)),
        (("United States", "Georgia"), (1.9, 0.2)),
        (("United States", "Kentucky"), (1.8, 0.2)),
        (("United States", "Pennsylvania"), (1.7, 0.2)),
        (("United States", "Tennessee"), (1.6, 0.15)),
        (("United States", "Missouri"), (1.15, 0.1)),
        (("United States", "Minnesota"), (1.25, 0.1)),
        (("United States", "Texas"), (1.2, 0.1)),
        (("United States", "Oklahoma"), (1.9, 0.2)),
        (("United States", "Massachusetts"), (1.5, 0.15)),
        (("United States", "New Jersey"), (1.6, 0.15)),
        (("Canada", "Ontario"), (1.2, 0.1)),
        // EU contrast (Fig 11): Poland poor, Switzerland excellent, Italy
        // high spread, France tight.
        (("Poland", ""), (2.3, 0.2)),
        (("Switzerland", ""), (1.1, 0.05)),
        (("Italy", ""), (1.7, 0.45)),
        (("France", ""), (1.35, 0.08)),
        (("Germany", ""), (1.4, 0.12)),
        (("Austria", ""), (1.5, 0.15)),
        (("Denmark", ""), (1.3, 0.1)),
        (("United Kingdom", ""), (1.5, 0.15)),
        (("Spain", ""), (1.5, 0.15)),
        (("Belgium", ""), (1.6, 0.12)),
        (("Netherlands", ""), (1.2, 0.08)),
        // §5.2's long-haul observations: Turkey as bad as double-distance
        // Brazil; Bolivia as bad as 3.5×-distance Hawaii; Greece vs Saudi
        // Arabia differ at similar distance.
        (("Turkey", ""), (2.9, 0.3)),
        (("Brazil", ""), (1.5, 0.2)),
        (("Bolivia", ""), (3.2, 0.4)),
        (("United States", "Hawaii"), (1.25, 0.1)),
        (("Greece", ""), (2.2, 0.25)),
        (("Saudi Arabia", ""), (1.3, 0.15)),
        (("Chile", ""), (1.3, 0.1)),
        (("South Korea", ""), (1.1, 0.05)),
        (("Netherlands", "North Holland"), (1.15, 0.06)),
        (("United States", "Illinois"), (1.2, 0.08)),
        (("Jamaica", ""), (2.4, 0.35)),
        (("El Salvador", ""), (2.0, 0.3)),
    ];
    // Exact (country, region) match wins; then a country-level override
    // applies to all of that country's regions.
    for ((c, r), q) in overrides {
        if *c == key.0 && *r == key.1 {
            return *q;
        }
    }
    for ((c, r), q) in overrides {
        if *c == key.0 && r.is_empty() {
            return *q;
        }
    }
    // Stable hash-derived default in [1.3, 2.1] with spread [0.1, 0.3].
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.0.bytes().chain(key.1.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    (1.3 + 0.8 * u, 0.1 + 0.2 * u)
}

/// A streamer's network profile: everything latency-relevant about their
/// home connection.
#[derive(Debug, Clone, PartialEq)]
pub struct NetProfile {
    /// Multiplier on fibre propagation (path stretch × ISP quality).
    pub path_stretch: f64,
    /// Last-mile access delay, ms.
    pub access_ms: f64,
    /// Per-sample jitter standard deviation, ms.
    pub jitter_sd: f64,
    /// Spike arrivals per hour of play.
    pub spike_rate_per_hour: f64,
    /// Log-normal magnitude parameters for spikes (of the underlying
    /// normal, in ln-ms).
    pub spike_mag_mu: f64,
    /// Log-normal sigma.
    pub spike_mag_sigma: f64,
}

impl NetProfile {
    /// Sample a profile for a streamer living at `home`. Streamers are
    /// latency-optimised users (§2.2's streamer bias): access delays skew
    /// low.
    ///
    /// Path stretch is *quantised into ISP tiers*: a region has a handful
    /// of major eyeball ISPs with characteristic routing, so per-streamer
    /// latencies clump into the discrete clusters of Fig 2 rather than a
    /// continuum (a region's `spread` widens the gap between its tiers —
    /// Italy's tiers are far apart, France's close together, Fig 11).
    pub fn sample(home: &Place, rng: &mut SimRng) -> NetProfile {
        let (region_mult, spread) =
            region_quality(&home.location.country, home.location.region.as_deref());
        let tier_step = 0.18 + spread;
        let tier = rng.choose_weighted(&[0.45, 0.30, 0.15, 0.10]) as f64;
        let isp_mult = 1.0 + tier * tier_step;
        let personal = 1.0 + 0.03 * rng.normal().abs();
        NetProfile {
            path_stretch: 1.4 * region_mult * isp_mult * personal,
            access_ms: 1.0 + rng.exponential(3.0),
            jitter_sd: 0.4 + rng.f64() * 1.6,
            spike_rate_per_hour: 0.2 + rng.exponential(0.8),
            spike_mag_mu: (18.0f64).ln(),
            spike_mag_sigma: 0.7,
        }
    }

    /// Base (uncongested) RTT in ms from `home` to `server`.
    pub fn base_rtt_ms(&self, _gaz: &Gazetteer, home: &Place, server: &GameServer) -> f64 {
        let d = corrected_distance_km(home.center, server.center, home.mean_radius_km);
        2.0 * fiber_delay_ms(d) * self.path_stretch + self.access_ms
    }
}

/// One transient latency spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// When the spike starts.
    pub start: SimTime,
    /// When it ends.
    pub end: SimTime,
    /// Added latency while active, ms.
    pub magnitude_ms: f64,
}

impl Spike {
    /// Whether the spike is active at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// Draw a spike schedule for a play interval `[start, end)` under the
/// given profile.
pub fn draw_spikes(
    profile: &NetProfile,
    start: SimTime,
    end: SimTime,
    rng: &mut SimRng,
) -> Vec<Spike> {
    let mut out = Vec::new();
    let hours = end.since(start).as_secs_f64() / 3_600.0;
    if hours <= 0.0 {
        return out;
    }
    let n = rng.poisson(profile.spike_rate_per_hour * hours);
    for _ in 0..n {
        let at = start + end.since(start).mul_f64(rng.f64());
        let duration = SimDuration::from_secs_f64(60.0 + rng.exponential(420.0));
        let magnitude = rng.lognormal(profile.spike_mag_mu, profile.spike_mag_sigma);
        out.push(Spike {
            start: at,
            end: at + duration,
            magnitude_ms: magnitude.min(400.0),
        });
    }
    out.sort_by_key(|s| s.start);
    out
}

/// A shared-anomaly event affecting every streamer of one `{region, game}`
/// (or of one game world-wide, for release-day events).
#[derive(Debug, Clone, PartialEq)]
pub struct SharedEvent {
    /// Affected game.
    pub game: GameId,
    /// Affected location (region-level), or `None` for world-wide.
    pub region: Option<Location>,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Added latency for affected streamers, ms.
    pub magnitude_ms: f64,
}

impl SharedEvent {
    /// Whether the event hits a streamer of `game` at region-level
    /// location `loc` at time `t`.
    pub fn hits(&self, game: GameId, loc: &Location, t: SimTime) -> bool {
        if game != self.game || t < self.start || t >= self.end {
            return false;
        }
        match &self.region {
            None => true,
            Some(r) => r.subsumes(loc) || loc.subsumes(r) || *r == loc.to_region_level(),
        }
    }
}

/// Evaluate the full ground-truth RTT at time `t`.
pub fn true_rtt_ms(
    base_ms: f64,
    jitter_sd: f64,
    spikes: &[Spike],
    shared: &[&SharedEvent],
    t: SimTime,
    rng: &mut SimRng,
) -> f64 {
    let mut rtt = base_ms + rng.normal_with(0.0, jitter_sd);
    for s in spikes {
        if s.active_at(t) {
            rtt += s.magnitude_ms;
        }
    }
    for e in shared {
        if t >= e.start && t < e.end {
            rtt += e.magnitude_ms;
        }
    }
    rtt.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_geoparse::PlaceKind;

    fn place(gaz: &Gazetteer, name: &str) -> Place {
        gaz.lookup_kind(name, PlaceKind::City)[0].clone()
    }

    #[test]
    fn region_quality_overrides_hold() {
        let (dc, _) = region_quality("United States", Some("District of Columbia"));
        let (mo, _) = region_quality("United States", Some("Missouri"));
        assert!(dc > mo * 1.8, "DC {dc} vs MO {mo}");
        let (pl, _) = region_quality("Poland", None);
        let (ch, _) = region_quality("Switzerland", None);
        assert!(pl > ch * 1.8, "PL {pl} vs CH {ch}");
        let (_, it_spread) = region_quality("Italy", None);
        let (_, fr_spread) = region_quality("France", None);
        assert!(
            it_spread > 3.0 * fr_spread,
            "IT {it_spread} vs FR {fr_spread}"
        );
    }

    #[test]
    fn region_quality_default_is_stable_and_bounded() {
        let a = region_quality("Narnia", Some("The North"));
        let b = region_quality("Narnia", Some("The North"));
        assert_eq!(a, b);
        assert!(a.0 >= 1.3 && a.0 <= 2.1, "{:?}", a);
    }

    #[test]
    fn isp_tiers_quantise_path_stretch() {
        // Per-region stretch must clump into a handful of tiers (the
        // Fig 2 clustering lever), not a continuum.
        let gaz = Gazetteer::new();
        let mut rng = SimRng::new(21);
        let home = place(&gaz, "Chicago");
        let stretches: Vec<f64> = (0..300)
            .map(|_| NetProfile::sample(&home, &mut rng).path_stretch)
            .collect();
        // Cluster with a 4 % relative tolerance; expect ≤ 5 groups.
        let mut sorted = stretches.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut groups = 1;
        for w in sorted.windows(2) {
            if w[1] / w[0] > 1.06 {
                groups += 1;
            }
        }
        assert!(
            (2..=5).contains(&groups),
            "expected tiered stretch, found {groups} groups"
        );
    }

    #[test]
    fn base_rtt_scales_with_distance() {
        let gaz = Gazetteer::new();
        let mut rng = SimRng::new(7);
        let ams = place(&gaz, "Amsterdam");
        let profile = NetProfile::sample(&ams, &mut rng);
        let near =
            crate::games::primary_server(&gaz, GameId::LeagueOfLegends, &ams.location).unwrap();
        let far = crate::games::server_locations(&gaz, GameId::LeagueOfLegends)
            .into_iter()
            .find(|s| s.location.city.as_deref() == Some("Tokyo"))
            .unwrap();
        let rtt_near = profile.base_rtt_ms(&gaz, &ams, &near);
        let rtt_far = profile.base_rtt_ms(&gaz, &ams, &far);
        assert!(rtt_near < 30.0, "Amsterdam→Amsterdam {rtt_near}");
        assert!(rtt_far > 100.0, "Amsterdam→Tokyo {rtt_far}");
    }

    #[test]
    fn spike_schedule_rate() {
        let profile = NetProfile {
            path_stretch: 1.5,
            access_ms: 3.0,
            jitter_sd: 1.0,
            spike_rate_per_hour: 2.0,
            spike_mag_mu: (18.0f64).ln(),
            spike_mag_sigma: 0.7,
        };
        let mut rng = SimRng::new(3);
        let mut total = 0usize;
        let reps = 200;
        for _ in 0..reps {
            let spikes = draw_spikes(&profile, SimTime::EPOCH, SimTime::from_hours(3), &mut rng);
            total += spikes.len();
            for s in &spikes {
                assert!(s.end > s.start);
                assert!(s.magnitude_ms > 0.0 && s.magnitude_ms <= 400.0);
            }
        }
        let mean = total as f64 / reps as f64;
        assert!((mean - 6.0).abs() < 1.0, "mean spikes per 3 h: {mean}");
        // Degenerate interval.
        assert!(draw_spikes(&profile, SimTime::EPOCH, SimTime::EPOCH, &mut rng).is_empty());
    }

    #[test]
    fn shared_event_targeting() {
        let e = SharedEvent {
            game: GameId::LeagueOfLegends,
            region: Some(Location::region("United States", "California")),
            start: SimTime::from_hours(1),
            end: SimTime::from_hours(2),
            magnitude_ms: 40.0,
        };
        let ca = Location::city("United States", "California", "Los Angeles");
        let tx = Location::city("United States", "Texas", "Dallas");
        let t = SimTime::from_mins(90);
        assert!(e.hits(GameId::LeagueOfLegends, &ca, t));
        assert!(!e.hits(GameId::LeagueOfLegends, &tx, t));
        assert!(!e.hits(GameId::Dota2, &ca, t));
        assert!(!e.hits(GameId::LeagueOfLegends, &ca, SimTime::from_hours(3)));
        // World-wide event (release day).
        let global = SharedEvent { region: None, ..e };
        assert!(global.hits(GameId::LeagueOfLegends, &tx, t));
    }

    #[test]
    fn true_rtt_composition() {
        let mut rng = SimRng::new(11);
        let spike = Spike {
            start: SimTime::from_mins(10),
            end: SimTime::from_mins(20),
            magnitude_ms: 50.0,
        };
        let calm = true_rtt_ms(30.0, 0.0, &[spike], &[], SimTime::from_mins(5), &mut rng);
        assert!((calm - 30.0).abs() < 1e-9);
        let spiky = true_rtt_ms(30.0, 0.0, &[spike], &[], SimTime::from_mins(15), &mut rng);
        assert!((spiky - 80.0).abs() < 1e-9);
        // Never below 1 ms.
        let floor = true_rtt_ms(0.5, 0.0, &[], &[], SimTime::EPOCH, &mut rng);
        assert!(floor >= 1.0);
    }
}
