//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option`s: `None` about a quarter of the time
/// (matching real proptest's default weighting).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// An `Option` strategy wrapping `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::new(8);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match of(1u32..999).generate(&mut rng) {
                Some(v) => {
                    assert!((1..999).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
