//! Log-bucketed histograms with interpolated percentiles.
//!
//! ## Bucket-boundary rounding
//!
//! Bucket 0 holds exactly the value `0`; bucket `i ≥ 1` holds the
//! half-open range `[2^(i-1), 2^i)`. The boundaries round *up*: a value
//! that is exactly a power of two is the **lower** bound of its bucket,
//! so `1023` lands in bucket 10 (`[512, 1024)`) while `1024` starts
//! bucket 11 (`[1024, 2048)`). Percentiles interpolate linearly by rank
//! inside the containing bucket and are clamped to the observed
//! `[min, max]`, which bounds the relative error by the bucket width (a
//! factor of two) and makes single-valued histograms exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 64 buckets cover all of
/// `u64`, so nothing clips.
const BUCKETS: usize = 64;

/// A fixed-memory histogram over `u64` values (µs latencies, depths).
///
/// Recording is one relaxed atomic add into a bucket picked by
/// `leading_zeros` — no allocation, no locks, safe from any thread.
/// Percentiles are read back with linear interpolation inside the bucket,
/// so relative error is bounded by the bucket width (a factor of two).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value.
    #[inline]
    fn bucket_for(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_for(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `p`-th percentile (0–100), linearly interpolated inside the
    /// containing bucket and clamped to the observed min/max. `None` when
    /// the histogram is empty — a percentile of nothing is not `0`, and
    /// conflating the two hid empty timing histograms behind legitimate
    /// zero readings.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank target (1-based), like tero-stats' exact percentile.
        let target = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if cumulative + in_bucket >= target {
                // Interpolate position within [lo, hi) by rank.
                let (lo, hi) = bucket_bounds(i);
                let into = (target - cumulative) as f64 / in_bucket as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                return Some(est.clamp(self.min() as f64, self.max() as f64));
            }
            cumulative += in_bucket;
        }
        Some(self.max() as f64)
    }

    /// Bucket counts as `(lower_bound, count)` pairs for non-empty
    /// buckets, in ascending value order.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bounds(i).0, n))
            })
            .collect()
    }
}

/// `[lo, hi)` value bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        63 => (1u64 << 62, u64::MAX),
        _ => (1u64 << (i - 1), 1u64 << i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_for(0), 0);
        assert_eq!(Histogram::bucket_for(1), 1);
        assert_eq!(Histogram::bucket_for(2), 2);
        assert_eq!(Histogram::bucket_for(3), 2);
        assert_eq!(Histogram::bucket_for(4), 3);
        assert_eq!(Histogram::bucket_for(1023), 10);
        assert_eq!(Histogram::bucket_for(1024), 11);
        assert_eq!(Histogram::bucket_for(u64::MAX), 63);
    }

    #[test]
    fn summary_stats() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
        assert!((h.mean() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        // A percentile of nothing is None, never a fake 0.0.
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), None, "p{p} of empty");
        }
    }

    #[test]
    fn single_observation_percentiles_are_exact() {
        // One recorded value: every percentile is that value, including
        // the rank-boundary cases p0 and p100.
        let h = Histogram::new();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!((h.min(), h.max()), (7, 7));
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(7.0), "p{p}");
        }
        // A recorded zero is a real observation, distinct from empty.
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.percentile(50.0), Some(0.0));
    }

    #[test]
    fn percentiles_bounded_by_bucket_width() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Exact p50 is 500; the estimate must land within the containing
        // power-of-two bucket [512, 1024) or the one below.
        let p50 = h.percentile(50.0).unwrap();
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!((500.0..=1000.0).contains(&p99), "p99 {p99}");
        // p100 == max exactly (clamped).
        assert_eq!(h.percentile(100.0), Some(1000.0));
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(42.0), "p{p}");
        }
    }

    #[test]
    fn power_of_two_boundary_rounds_up() {
        // The documented boundary rule: 2^k is the lower bound of bucket
        // k+1, so 1023 and 1024 land in different buckets.
        assert_eq!(Histogram::bucket_for(1023), 10);
        assert_eq!(Histogram::bucket_for(1024), 11);
        let h = Histogram::new();
        h.record(1023);
        h.record(1024);
        assert_eq!(h.nonempty_buckets(), vec![(512, 1), (1024, 1)]);
    }

    #[test]
    fn nonempty_buckets_report_lower_bounds() {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(6);
        assert_eq!(h.nonempty_buckets(), vec![(0, 1), (4, 2)]);
    }
}
