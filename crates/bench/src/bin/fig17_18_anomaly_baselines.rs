//! Figs 17–18 (App. J) — Tero's QoE-based detector vs standard
//! unsupervised anomaly detection: Local Outlier Factor, Isolation Forest
//! and Minimum Covariance Determinant.
//!
//! Protocol: per `{streamer, game}` series (alternative values applied),
//! run each technique across its parameter sweep (LOF k ∈ {3..20}, MCD
//! contamination ∈ [0.01, 0.5], iForest IQR whisker ∈ [0.5, 2.0]); keep
//! only *significant* detections (≥ 15 ms above/below the stream mean);
//! classify them as found-by-both, anomaly-detection-only, or QoE-only.
//!
//! Paper's shape (Figs 17–18): for spikes, ~70 % of the mass is common or
//! QoE-only (the QoE detector is as good or better); the baselines flag up
//! to ~20 % extra "spikes" that are mostly server/location changes or
//! sub-LatGap wiggles; for glitches the baselines over-flag heavily.
//!
//! Usage: `fig17_18_anomaly_baselines [--n 200] [--days 8]`

use serde::Serialize;
use std::collections::HashSet;
use tero_bench::{arg_usize, header, write_json};
use tero_core::analysis::anomaly::SegmentLabel;
use tero_core::pipeline::{ExtractionMode, Tero};
use tero_stats::{lof::lof_outliers, IsolationForest, UnivariateMcd};
use tero_types::SimRng;
use tero_world::{World, WorldConfig};

const SIGNIFICANT_MS: f64 = 15.0;

#[derive(Serialize, Default, Clone, Copy)]
struct Overlap {
    common: usize,
    ad_only: usize,
    qoe_only: usize,
}

impl Overlap {
    fn pcts(&self) -> (f64, f64, f64) {
        let total = (self.common + self.ad_only + self.qoe_only).max(1) as f64;
        (
            100.0 * self.common as f64 / total,
            100.0 * self.ad_only as f64 / total,
            100.0 * self.qoe_only as f64 / total,
        )
    }
}

#[derive(Serialize)]
struct Output {
    spikes: Vec<(String, f64, f64, f64)>,
    glitches: Vec<(String, f64, f64, f64)>,
}

fn main() {
    let n = arg_usize("--n", 200);
    let days = arg_usize("--days", 8) as u64;
    header("Figs 17-18: QoE-based detection vs LOF / iForest / MCD");

    let mut world = World::build(WorldConfig {
        seed: 1718,
        n_streamers: n,
        days,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    // Per-series inputs: values (with alternatives applied where the QoE
    // detector corrected), QoE spike/glitch index sets, the series mean.
    struct Series {
        values: Vec<f64>,
        qoe_spikes: HashSet<usize>,
        qoe_glitches: HashSet<usize>,
        mean: f64,
    }
    let mut inputs: Vec<Series> = Vec::new();
    for r in report.anomalies.values() {
        if r.all_unstable {
            continue;
        }
        let mut values = Vec::new();
        let mut qoe_spikes = HashSet::new();
        let mut qoe_glitches = HashSet::new();
        for (seg, label) in r.segments.iter().zip(&r.labels) {
            for s in &seg.samples {
                let idx = values.len();
                values.push(s.latency_ms as f64);
                match label {
                    SegmentLabel::Spike => {
                        qoe_spikes.insert(idx);
                    }
                    SegmentLabel::DiscardedGlitch | SegmentLabel::CorrectedGlitch => {
                        qoe_glitches.insert(idx);
                    }
                    _ => {}
                }
            }
        }
        if values.len() < 20 {
            continue;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        inputs.push(Series {
            values,
            qoe_spikes,
            qoe_glitches,
            mean,
        });
    }
    println!("series analysed: {}", inputs.len());

    let techniques: [&str; 3] = ["MCD", "LOF", "iForests"];
    let mut spike_rows = Vec::new();
    let mut glitch_rows = Vec::new();
    for tech in techniques {
        // Parameter sweep: aggregate the mean across settings.
        let params: Vec<f64> = match tech {
            "LOF" => vec![3.0, 5.0, 10.0, 20.0],
            "MCD" => vec![0.01, 0.05, 0.1, 0.25, 0.5],
            _ => vec![0.5, 1.0, 1.5, 2.0],
        };
        let mut spike_acc = Overlap::default();
        let mut glitch_acc = Overlap::default();
        for &p in &params {
            for series in &inputs {
                let flagged: Vec<usize> = match tech {
                    "LOF" => lof_outliers(&series.values, p as usize, 1.5),
                    "MCD" => UnivariateMcd::fit(&series.values, None)
                        .map(|m| m.outliers_by_contamination(&series.values, p))
                        .unwrap_or_default(),
                    _ => {
                        let mut rng = SimRng::new(17);
                        let forest = IsolationForest::fit(&series.values, 50, 128, &mut rng);
                        forest.outliers_by_iqr(&series.values, p)
                    }
                };
                let ad: HashSet<usize> = flagged.into_iter().collect();
                // Significance gate + spike/glitch split across the mean.
                let significant =
                    |i: usize| (series.values[i] - series.mean).abs() >= SIGNIFICANT_MS;
                let is_spike = |i: usize| series.values[i] > series.mean;
                for &i in ad.iter().filter(|&&i| significant(i)) {
                    if is_spike(i) {
                        if series.qoe_spikes.contains(&i) {
                            spike_acc.common += 1;
                        } else {
                            spike_acc.ad_only += 1;
                        }
                    } else if series.qoe_glitches.contains(&i) {
                        glitch_acc.common += 1;
                    } else {
                        glitch_acc.ad_only += 1;
                    }
                }
                for &i in series.qoe_spikes.iter().filter(|&&i| significant(i)) {
                    if !ad.contains(&i) {
                        spike_acc.qoe_only += 1;
                    }
                }
                for &i in series.qoe_glitches.iter().filter(|&&i| significant(i)) {
                    if !ad.contains(&i) {
                        glitch_acc.qoe_only += 1;
                    }
                }
            }
        }
        let (c, a, q) = spike_acc.pcts();
        spike_rows.push((tech.to_string(), c, a, q));
        let (c, a, q) = glitch_acc.pcts();
        glitch_rows.push((tech.to_string(), c, a, q));
    }

    println!();
    println!("Fig 18 — significant spikes:");
    println!(
        "{:>10} {:>10} {:>18} {:>14}",
        "", "common %", "anomaly-det only %", "QoE only %"
    );
    for (t, c, a, q) in &spike_rows {
        println!("{t:>10} {c:>9.1}% {a:>17.1}% {q:>13.1}%");
    }
    println!();
    println!("Fig 17 — significant glitches:");
    for (t, c, a, q) in &glitch_rows {
        println!("{t:>10} {c:>9.1}% {a:>17.1}% {q:>13.1}%");
    }
    println!();
    println!("(paper: ~70 % of spike mass is common/QoE-only; the baselines also");
    println!(" flag server/location changes and sub-LatGap wiggles that the QoE");
    println!(" detector rightly ignores — they have no concept of significance or");
    println!(" of explainable changes)");

    write_json(
        "fig17_18_anomaly_baselines",
        &Output {
            spikes: spike_rows,
            glitches: glitch_rows,
        },
    );
}
