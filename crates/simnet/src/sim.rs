//! The discrete-event simulator core: event heap, routing, dispatch.

use crate::game::{GameClient, GameServerSession};
use crate::link::{Link, LinkConfig, LinkId, Offer};
use crate::packet::{NodeId, Packet, PacketKind};
use crate::tcp::{TcpActions, TcpFlow};
use crate::udp::UdpFlow;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use tero_obs::{CounterHandle, GaugeHandle, Registry};
use tero_types::{SimDuration, SimRng, SimTime};

/// Scheduled work.
#[derive(Debug)]
enum Event {
    /// A packet arrives at a node (after crossing a link).
    Deliver { node: NodeId, pkt: Packet },
    /// A link's transmitter becomes free.
    LinkFree { link: LinkId },
    /// A UDP flow's next packet is due.
    UdpSend { flow: usize },
    /// A TCP flow should (re)try sending (start or pacing tick).
    TcpPace { flow: usize },
    /// A TCP retransmission timer fires (valid only if `gen` is current).
    TcpRto { flow: usize, gen: u64 },
    /// A game client emits its next input packet.
    GameClientTick { client: usize },
    /// The game server emits its next update for one client.
    GameServerTick { client: usize },
}

struct HeapEntry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Pacing tick for application-limited TCP flows.
const TCP_PACE_INTERVAL: SimDuration = SimDuration(10_000); // 10 ms

/// The network simulator: nodes, links, routes, flows, game endpoints.
pub struct Simulator {
    now: SimTime,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    node_count: usize,
    links: Vec<Link>,
    /// Directed adjacency: `links_from[node]` lists `(link_id, to)`.
    links_from: Vec<Vec<(LinkId, NodeId)>>,
    routes: HashMap<(NodeId, NodeId), LinkId>,
    /// UDP flows.
    pub udp_flows: Vec<UdpFlow>,
    /// TCP flows.
    pub tcp_flows: Vec<TcpFlow>,
    /// Game clients.
    pub game_clients: Vec<GameClient>,
    /// Per-client server sessions (parallel to `game_clients`).
    pub game_sessions: Vec<GameServerSession>,
    game_server_node: Option<NodeId>,
    /// Total packets that reached a destination.
    pub delivered_packets: u64,
    rng: SimRng,
    obs: Option<SimObs>,
}

/// Metric handles installed by [`Simulator::instrument`], resolved once so
/// the event loop never touches the registry's name table.
struct SimObs {
    events: CounterHandle,
    scheduled: CounterHandle,
    heap_depth: GaugeHandle,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.node_count)
            .field("links", &self.links.len())
            .field("pending_events", &self.heap.len())
            .field("delivered_packets", &self.delivered_packets)
            .finish()
    }
}

impl Simulator {
    /// An empty simulator at t = 0.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::EPOCH,
            heap: BinaryHeap::new(),
            seq: 0,
            node_count: 0,
            links: Vec::new(),
            links_from: Vec::new(),
            routes: HashMap::new(),
            udp_flows: Vec::new(),
            tcp_flows: Vec::new(),
            game_clients: Vec::new(),
            game_sessions: Vec::new(),
            game_server_node: None,
            delivered_packets: 0,
            rng: SimRng::new(1),
            obs: None,
        }
    }

    /// Register simulator metrics (`simnet.*`) with a registry: events
    /// dispatched, events scheduled, and the event-heap occupancy gauge
    /// (whose high-watermark records peak backlog).
    pub fn instrument(&mut self, registry: &Registry) {
        self.obs = Some(SimObs {
            events: registry.counter("simnet.events"),
            scheduled: registry.counter("simnet.scheduled"),
            heap_depth: registry.gauge("simnet.heap_depth"),
        });
    }

    /// Reseed the simulator's RNG (flow jitter). Call before adding flows.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_count;
        self.node_count += 1;
        self.links_from.push(Vec::new());
        id
    }

    /// Add a duplex link between `a` and `b`; returns the directed link
    /// ids `(a→b, b→a)`.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.links.len();
        self.links.push(Link::new(cfg, b));
        self.links_from[a].push((ab, b));
        let ba = self.links.len();
        self.links.push(Link::new(cfg, a));
        self.links_from[b].push((ba, a));
        (ab, ba)
    }

    /// Add a duplex link with asymmetric configurations.
    pub fn add_duplex_link_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        ab_cfg: LinkConfig,
        ba_cfg: LinkConfig,
    ) -> (LinkId, LinkId) {
        let ab = self.links.len();
        self.links.push(Link::new(ab_cfg, b));
        self.links_from[a].push((ab, b));
        let ba = self.links.len();
        self.links.push(Link::new(ba_cfg, a));
        self.links_from[b].push((ba, a));
        (ab, ba)
    }

    /// Compute shortest-path (hop-count) routes for every `(node, dst)`
    /// pair by BFS. Must be called after topology construction and before
    /// running.
    pub fn compute_routes(&mut self) {
        self.routes.clear();
        for dst in 0..self.node_count {
            // BFS backwards from dst over reversed edges: for each node,
            // the first hop on a shortest path to dst.
            let mut dist = vec![usize::MAX; self.node_count];
            dist[dst] = 0;
            let mut queue = VecDeque::from([dst]);
            while let Some(n) = queue.pop_front() {
                // Find nodes m with a link m→n.
                for m in 0..self.node_count {
                    for &(lid, to) in &self.links_from[m] {
                        if to == n && dist[m] == usize::MAX {
                            dist[m] = dist[n] + 1;
                            self.routes.insert((m, dst), lid);
                            queue.push_back(m);
                        }
                    }
                }
            }
        }
    }

    /// Access a link (e.g. to read the bottleneck queue).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    /// Register a UDP flow and schedule its first packet.
    pub fn add_udp_flow(&mut self, flow: UdpFlow) -> usize {
        let idx = self.udp_flows.len();
        let start = flow.start;
        self.udp_flows.push(flow);
        self.schedule(start, Event::UdpSend { flow: idx });
        idx
    }

    /// Register a TCP flow and schedule its start.
    pub fn add_tcp_flow(&mut self, flow: TcpFlow) -> usize {
        let idx = self.tcp_flows.len();
        let start = flow.start;
        self.tcp_flows.push(flow);
        self.schedule(start, Event::TcpPace { flow: idx });
        idx
    }

    /// Register a game client + its server session; schedules both tick
    /// loops. `set_game_server` must have been called first.
    pub fn add_game_client(&mut self, client: GameClient) -> usize {
        assert!(
            self.game_server_node.is_some(),
            "call set_game_server before add_game_client"
        );
        let idx = self.game_clients.len();
        let session = GameServerSession::new(client.node);
        let start = SimTime::EPOCH;
        self.game_clients.push(client);
        self.game_sessions.push(session);
        self.schedule(start, Event::GameClientTick { client: idx });
        self.schedule(start, Event::GameServerTick { client: idx });
        idx
    }

    /// Declare which node hosts the game server.
    pub fn set_game_server(&mut self, node: NodeId) {
        self.game_server_node = Some(node);
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        let at = at.max(self.now);
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            event,
        }));
        if let Some(obs) = &self.obs {
            obs.scheduled.inc();
            obs.heap_depth.set(self.heap.len() as i64);
        }
    }

    /// Inject a packet at its source node (routing begins immediately).
    pub fn inject(&mut self, pkt: Packet) {
        let node = pkt.src;
        self.route_from(node, pkt);
    }

    fn route_from(&mut self, node: NodeId, pkt: Packet) {
        if pkt.dst == node {
            // Delivered locally.
            let now = self.now;
            self.schedule(now, Event::Deliver { node, pkt });
            return;
        }
        let Some(&lid) = self.routes.get(&(node, pkt.dst)) else {
            // Unroutable: drop silently (like a null route).
            return;
        };
        let now = self.now;
        if let (
            Offer::Transmit {
                free_at,
                deliver_at,
            },
            Some(p),
        ) = self.links[lid].offer(pkt, now)
        {
            let to = self.links[lid].to;
            self.schedule(free_at, Event::LinkFree { link: lid });
            self.schedule(deliver_at, Event::Deliver { node: to, pkt: p });
        } // else: queued or dropped
    }

    fn apply_tcp_actions(&mut self, flow: usize, actions: TcpActions) {
        for pkt in actions.send {
            self.inject(pkt);
        }
        if let Some(at) = actions.set_rto_at {
            let gen = self.tcp_flows[flow].rto_gen;
            self.schedule(at, Event::TcpRto { flow, gen });
        }
    }

    /// Run until the given time (inclusive of events at exactly `until`).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if entry.at > until {
                break;
            }
            let Reverse(HeapEntry { at, event, .. }) = self.heap.pop().unwrap();
            self.now = at;
            if let Some(obs) = &self.obs {
                obs.events.inc();
                obs.heap_depth.set(self.heap.len() as i64);
            }
            self.handle(event);
        }
        self.now = self.now.max(until);
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::LinkFree { link } => {
                let now = self.now;
                if let Some((pkt, free_at, deliver_at)) = self.links[link].on_free(now) {
                    let to = self.links[link].to;
                    self.schedule(free_at, Event::LinkFree { link });
                    self.schedule(deliver_at, Event::Deliver { node: to, pkt });
                }
            }
            Event::Deliver { node, pkt } => {
                if pkt.dst != node {
                    // Transit node: forward.
                    self.route_from(node, pkt);
                    return;
                }
                self.delivered_packets += 1;
                let now = self.now;
                match pkt.kind {
                    PacketKind::Udp { flow } => {
                        self.udp_flows[flow].received += 1;
                    }
                    PacketKind::TcpData { flow, seq } => {
                        let ack = self.tcp_flows[flow].on_data(seq, now, flow);
                        self.inject(ack);
                    }
                    PacketKind::TcpAck { flow, ack } => {
                        let actions = self.tcp_flows[flow].on_ack(ack, now, flow);
                        self.apply_tcp_actions(flow, actions);
                    }
                    PacketKind::GameInput {
                        client,
                        echo_ts,
                        hold_ms,
                    } => {
                        self.game_sessions[client].on_input(echo_ts, hold_ms, now);
                    }
                    PacketKind::GameUpdate {
                        client,
                        server_ts,
                        displayed_ms,
                    } => {
                        self.game_clients[client].on_update(server_ts, displayed_ms, now);
                    }
                }
            }
            Event::UdpSend { flow } => {
                let now = self.now;
                let f = &mut self.udp_flows[flow];
                if now >= f.stop {
                    return;
                }
                let interval = f.next_interval(&mut self.rng);
                if f.active_at(now) {
                    f.sent += 1;
                    let pkt = Packet {
                        src: f.src,
                        dst: f.dst,
                        size_bytes: f.packet_bytes,
                        kind: PacketKind::Udp { flow },
                        created: now,
                    };
                    self.inject(pkt);
                    self.schedule(now + interval, Event::UdpSend { flow });
                } else {
                    // Not started yet: wake at start.
                    let start = f.start;
                    self.schedule(start.max(now + interval), Event::UdpSend { flow });
                }
            }
            Event::TcpPace { flow } => {
                let now = self.now;
                let stop = self.tcp_flows[flow].stop;
                let actions = self.tcp_flows[flow].try_send(now, flow);
                self.apply_tcp_actions(flow, actions);
                // App-limited flows need periodic pacing wake-ups.
                if self.tcp_flows[flow].app_limit_bps.is_some() && now < stop {
                    self.schedule(now + TCP_PACE_INTERVAL, Event::TcpPace { flow });
                }
            }
            Event::TcpRto { flow, gen } => {
                if self.tcp_flows[flow].rto_gen != gen {
                    return; // stale timer
                }
                let now = self.now;
                let actions = self.tcp_flows[flow].on_rto(now, flow);
                self.apply_tcp_actions(flow, actions);
            }
            Event::GameClientTick { client } => {
                let now = self.now;
                let pkt = self.game_clients[client].tick(now, client);
                let interval = self.game_clients[client].input_interval;
                self.inject(pkt);
                self.schedule(now + interval, Event::GameClientTick { client });
            }
            Event::GameServerTick { client } => {
                let now = self.now;
                let server = self.game_server_node.expect("game server set");
                let pkt = self.game_sessions[client].tick(now, server, client);
                let interval = self.game_sessions[client].update_interval;
                self.inject(pkt);
                self.schedule(now + interval, Event::GameServerTick { client });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two nodes, one duplex link.
    fn two_nodes(rate_bps: f64, queue: usize) -> (Simulator, NodeId, NodeId, LinkId) {
        let mut sim = Simulator::new();
        let a = sim.add_node();
        let b = sim.add_node();
        let (ab, _) = sim.add_duplex_link(
            a,
            b,
            LinkConfig {
                rate_bps,
                prop: SimDuration::from_millis(5),
                queue_packets: queue,
            },
        );
        sim.compute_routes();
        (sim, a, b, ab)
    }

    #[test]
    fn udp_flow_delivers_at_rate() {
        let (mut sim, a, b, _) = two_nodes(10e6, 100);
        sim.add_udp_flow(UdpFlow::cbr(
            a,
            b,
            1e6,
            1250,
            SimTime::EPOCH,
            SimTime::from_secs(1),
        ));
        sim.run_until(SimTime::from_secs(2));
        let f = &sim.udp_flows[0];
        // 1 Mbps of 10-kbit packets = 100 pkt/s for 1 s.
        assert_eq!(f.sent, 100);
        assert_eq!(f.received, 100, "uncongested link loses nothing");
    }

    #[test]
    fn metrics_track_event_loop() {
        let (mut sim, a, b, _) = two_nodes(10e6, 100);
        let registry = Registry::new();
        sim.instrument(&registry);
        sim.add_udp_flow(UdpFlow::cbr(
            a,
            b,
            1e6,
            1250,
            SimTime::EPOCH,
            SimTime::from_secs(1),
        ));
        sim.run_until(SimTime::from_secs(2));
        let snap = registry.snapshot();
        let events = snap.counter("simnet.events").unwrap();
        let scheduled = snap.counter("simnet.scheduled").unwrap();
        assert!(events > 100, "events {events}");
        assert!(scheduled >= events, "every handled event was scheduled");
        let depth = snap.gauge("simnet.heap_depth").unwrap();
        assert!(depth.high_watermark >= 1);
        assert_eq!(depth.value, 0, "heap drained at quiescence");
    }

    #[test]
    fn udp_overload_fills_queue_and_drops() {
        // 2 Mbps offered into a 1 Mbps link with a 10-packet queue.
        let (mut sim, a, b, ab) = two_nodes(1e6, 10);
        sim.add_udp_flow(UdpFlow::cbr(
            a,
            b,
            2e6,
            1250,
            SimTime::EPOCH,
            SimTime::from_secs(2),
        ));
        sim.run_until(SimTime::from_secs(1));
        let link = sim.link(ab);
        assert_eq!(link.queue_len(), 10, "standing queue at capacity");
        assert!(link.drops > 0, "drop-tail engaged");
        // Queue latency ≈ 10 pkt × 10 ms = 100 ms (+ tx + prop).
        let lat = link.current_latency_ms(1250);
        assert!((lat - 115.0).abs() < 1.0, "latency {lat}");
    }

    #[test]
    fn multihop_routing_works() {
        // a — m — b chain.
        let mut sim = Simulator::new();
        let a = sim.add_node();
        let m = sim.add_node();
        let b = sim.add_node();
        let cfg = LinkConfig {
            rate_bps: 10e6,
            prop: SimDuration::from_millis(2),
            queue_packets: 50,
        };
        sim.add_duplex_link(a, m, cfg);
        sim.add_duplex_link(m, b, cfg);
        sim.compute_routes();
        sim.add_udp_flow(UdpFlow::cbr(
            a,
            b,
            1e6,
            1250,
            SimTime::EPOCH,
            SimTime::from_millis(100),
        ));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.udp_flows[0].received, sim.udp_flows[0].sent);
        assert!(sim.udp_flows[0].sent > 0);
    }

    #[test]
    fn tcp_transfers_data_without_loss() {
        let (mut sim, a, b, _) = two_nodes(10e6, 100);
        sim.add_tcp_flow(TcpFlow::new(a, b, SimTime::EPOCH, SimTime::from_secs(2)));
        sim.run_until(SimTime::from_secs(3));
        let f = &sim.tcp_flows[0];
        assert!(f.delivered > 100, "delivered {}", f.delivered);
        assert_eq!(f.timeouts, 0, "no timeouts on a clean link");
        assert!(f.srtt_ms().is_some());
        // A greedy flow bloats the 100-packet buffer: base RTT is ~11 ms,
        // and a full queue adds 100 × 1.2 ms ≈ 120 ms.
        let srtt = f.srtt_ms().unwrap();
        assert!((5.0..200.0).contains(&srtt), "srtt {srtt}");
    }

    #[test]
    fn tcp_recovers_from_congestion_loss() {
        // Tight queue forces drops; TCP must keep delivering via
        // retransmissions.
        let (mut sim, a, b, _) = two_nodes(2e6, 5);
        sim.add_tcp_flow(TcpFlow::new(a, b, SimTime::EPOCH, SimTime::from_secs(10)));
        sim.run_until(SimTime::from_secs(12));
        let f = &sim.tcp_flows[0];
        assert!(f.retransmits > 0, "expected losses");
        assert!(f.delivered > 500, "delivered {}", f.delivered);
        // Goodput close to the link rate: 2 Mbps / 12 kbit ≈ 166 seg/s.
        let goodput = f.delivered as f64 / 10.0;
        assert!(goodput > 100.0, "goodput {goodput} seg/s");
    }

    #[test]
    fn game_latency_reflects_path_rtt() {
        let mut sim = Simulator::new();
        let client = sim.add_node();
        let server = sim.add_node();
        sim.add_duplex_link(
            client,
            server,
            LinkConfig {
                rate_bps: 100e6,
                prop: SimDuration::from_millis(15),
                queue_packets: 100,
            },
        );
        sim.compute_routes();
        sim.set_game_server(server);
        sim.add_game_client(GameClient::new(client, server));
        sim.run_until(SimTime::from_secs(10));
        let displayed = sim.game_clients[0].displayed_ms.unwrap();
        // RTT ≈ 2 × 15 ms + small tx; display should be close.
        assert!((displayed - 30.0).abs() < 2.0, "displayed {displayed}");
    }

    #[test]
    fn game_latency_rises_under_cross_traffic() {
        // Client→server path shares a 2 Mbps bottleneck with UDP overload.
        let mut sim = Simulator::new();
        let client = sim.add_node();
        let router = sim.add_node();
        let server = sim.add_node();
        let fast = LinkConfig {
            rate_bps: 100e6,
            prop: SimDuration::from_millis(1),
            queue_packets: 500,
        };
        let slow = LinkConfig {
            rate_bps: 2e6,
            prop: SimDuration::from_millis(1),
            queue_packets: 20,
        };
        sim.add_duplex_link(client, router, fast);
        sim.add_duplex_link(router, server, slow);
        sim.compute_routes();
        sim.set_game_server(server);
        sim.add_game_client(GameClient::new(client, server));
        // Warm up without load.
        sim.run_until(SimTime::from_secs(5));
        let calm = sim.game_clients[0].displayed_ms.unwrap();
        // Saturating UDP from client side toward the server.
        sim.add_udp_flow(
            UdpFlow::cbr(
                client,
                server,
                4e6,
                1250,
                SimTime::from_secs(5),
                SimTime::from_secs(20),
            )
            .with_jitter(0.1),
        );
        sim.run_until(SimTime::from_secs(15));
        let loaded = sim.game_clients[0].displayed_ms.unwrap();
        assert!(
            loaded > calm + 30.0,
            "display should rise under congestion: {calm} -> {loaded}"
        );
    }
}
