//! Offline stand-in for `serde`.
//!
//! The air-gapped build environment cannot fetch crates.io, so this crate
//! supplies the subset of serde the workspace uses, modeled as conversion
//! to/from an in-memory JSON [`Value`]:
//!
//! * [`Serialize`] — `self` → [`Value`];
//! * [`Deserialize`] (and [`de::DeserializeOwned`]) — [`Value`] → `Self`;
//! * `#[derive(Serialize, Deserialize)]` via the vendored `serde_derive`.
//!
//! The data model follows the real serde's JSON mapping: structs become
//! objects (field order preserved), newtypes unwrap to their inner value,
//! enums are externally tagged (`"Unit"` / `{"Variant": ...}`), maps
//! require stringifiable keys. `serde_json` (also vendored) re-exports
//! [`Value`] and adds text encoding/decoding.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An in-memory JSON value — the serialisation data model.
///
/// Objects preserve insertion order (like `serde_json` with its
/// `preserve_order` feature), which keeps struct-field order stable in
/// output and makes snapshots readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Wrap the error with the field it occurred in (derive helper).
    pub fn in_field(self, field: &str) -> Self {
        Error {
            msg: format!("{}: {}", field, self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Object field lookup; returns `Null` for missing fields or
    /// non-objects (so `Option` fields deserialise to `None`).
    pub fn field(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Array element lookup (derive helper for tuple structs).
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(a) => a
                .get(i)
                .ok_or_else(|| Error::custom(format!("missing tuple element {i}"))),
            _ => Err(Error::custom("expected an array")),
        }
    }

    /// The single `(key, value)` entry of a one-entry object (externally
    /// tagged enum payloads).
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(m) if m.len() == 1 => Some((m[0].0.as_str(), &m[0].1)),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, name: &str) -> &Value {
        self.field(name)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

// ---------------------------------------------------------------- traits --

/// Serialise `self` into the JSON data model.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn serialize(&self) -> Value;
}

/// Deserialise `Self` out of the JSON data model.
pub trait Deserialize: Sized {
    /// Convert from a [`Value`].
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` namespace (compatibility).
pub mod de {
    /// Owned deserialisation — with this model every [`crate::Deserialize`]
    /// is already owned, so this is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// The `serde::ser` namespace (compatibility).
pub mod ser {
    pub use crate::Serialize;
}

// ------------------------------------------------------- primitive impls --

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------ composite impls --

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                Ok(($($t::deserialize(v.index($n)?)?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Render a map key: string keys pass through, numeric/other keys use
/// their JSON text form (mirrors `serde_json`'s map-key handling).
fn key_string<K: Serialize>(k: &K) -> String {
    match k.serialize() {
        Value::String(s) => s,
        Value::U64(v) => v.to_string(),
        Value::I64(v) => v.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
        assert_eq!(char::deserialize(&'x'.serialize()), Ok('x'));
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None));
        assert_eq!(None::<u32>.serialize(), Value::Null);
        assert_eq!(Some(7u32).serialize(), Value::U64(7));
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let t = (1u32, "a".to_string());
        assert_eq!(<(u32, String)>::deserialize(&t.serialize()), Ok(t));
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert!(u32::deserialize(&Value::I64(-1)).is_err());
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
        assert_eq!(v["a"], Value::U64(1));
    }
}
