//! The locate stage: the §3.1 location module over every streamer the
//! extract stage registered in the [`super::NAMES_KEY`] hash — run
//! *incrementally*, one budgeted slice per window.
//!
//! The location module runs as a separate program with its own API
//! credentials (App. B), so its call accounting is independent of the
//! download scheduler's rate limiter. Each window gets an explicit
//! simulated-API budget ([`crate::pipeline::Tero::locate_budget`]):
//! newly-seen streamers queue up, the stage admits as many as the
//! budget covers (worst case `PROFILE_ATTEMPTS` calls each), and the
//! rest carry over to the next window. A streamer's profile outcome —
//! how many injected 5xx faults its lookup hit and the description it
//! ultimately fetched — is drawn once, from a per-streamer keyed chaos
//! stream, and committed under [`LOCATE_PROFILES_KEY`]; it is never
//! re-drawn, so the outcome is independent of the window schedule and
//! of kill/resume.
//!
//! Once a streamer's profile is committed its location is *canonical*:
//! the geoparse verdict over the committed description plus the
//! country-tag history collected so far. Tag lists keep growing while
//! the run is in flight, so the stage re-evaluates a committed streamer
//! whenever its tag count moves (committing the refreshed verdict under
//! [`LOCATE_RESULTS_KEY`]); at the horizon the tag history is complete
//! and the committed results are byte-identical to what the old
//! single-shot locate pass produced.

use super::{StageCx, NAMES_KEY};
use crate::location::{LocationModule, LocationSource};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use tero_geoparse::tags::TagObservation;
use tero_store::KvStore;
use tero_types::{AnonId, Location, StreamerId};

/// Everything the locate stage commits lives under this prefix (inside
/// [`tero_store::PROTECTED_PREFIX`], so chaos never drops it).
pub const LOCATE_PREFIX: &str = "engine:locate:";

/// Hash of committed profile outcomes: field `{anon:016x}`, value a
/// JSON `{faults, description}` record. A field is written exactly once
/// per streamer, when the budget admits its lookup.
pub const LOCATE_PROFILES_KEY: &str = "engine:locate:profiles";

/// Hash of committed location verdicts: field `{anon:016x}`, value a
/// JSON `{tags_seen, located}` record. Rewritten when the streamer's
/// tag history grows.
pub const LOCATE_RESULTS_KEY: &str = "engine:locate:results";

/// Hash of stage bookkeeping (`api_calls`: total simulated API calls
/// spent so far — resumes the `location.api_calls` gauge).
pub const LOCATE_META_KEY: &str = "engine:locate:meta";

/// Lookup attempts per streamer: the first call plus up to four
/// retries. A streamer whose keyed fault stream yields this many
/// consecutive 5xx responses stays unlocated for the run (matching the
/// pre-budgeted stage's give-up rule).
pub(crate) const PROFILE_ATTEMPTS: u32 = 5;

/// What the locate stage hands the downstream stages.
pub struct Located {
    /// Streamers the location module located, with source.
    pub locations: HashMap<AnonId, (Location, LocationSource)>,
    /// Streamers seen (denominator of the 2.77 % figure).
    pub streamers_seen: usize,
}

/// A streamer's committed profile-fetch outcome. `faults` is how many
/// injected 5xx responses the keyed chaos stream dealt the lookup; at
/// [`PROFILE_ATTEMPTS`] the fetch gave up and `description` is `None`
/// regardless of what the platform holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ProfileOutcome {
    faults: u32,
    description: Option<String>,
}

/// A streamer's committed location verdict, stamped with the tag-count
/// it was evaluated at so tag growth forces a re-evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LocateResult {
    tags_seen: usize,
    located: Option<(Location, LocationSource)>,
}

/// The budgeted incremental locate stage. In-memory state mirrors the
/// committed `engine:locate:*` hashes; `LocateStage::rebuild`
/// reconstructs it from the store after a kill or snapshot restore.
#[derive(Debug, Default)]
pub struct LocateStage {
    /// Username per seen streamer (the names-hash rows, parsed).
    names: BTreeMap<AnonId, StreamerId>,
    /// Streamers already counted into `records_in`.
    seen: BTreeSet<AnonId>,
    /// Committed profile outcomes.
    profiles: BTreeMap<AnonId, ProfileOutcome>,
    /// Committed location verdicts.
    results: BTreeMap<AnonId, LocateResult>,
    /// Located streamers (the `Some` projection of `results`), kept in
    /// sync so downstream stages can borrow it every window.
    canonical: HashMap<AnonId, (Location, LocationSource)>,
    /// Carry-over queue: seen streamers whose lookup hasn't been
    /// admitted by any window's budget yet, in arrival order.
    queue: VecDeque<(AnonId, StreamerId)>,
    /// Total simulated API calls spent.
    api_calls: u64,
}

impl LocateStage {
    /// The canonical locations committed so far.
    pub(crate) fn locations(&self) -> &HashMap<AnonId, (Location, LocationSource)> {
        &self.canonical
    }

    /// One budgeted per-window slice: queue newly-seen streamers,
    /// admit lookups while the window's budget lasts, and re-evaluate
    /// any committed streamer whose tag history grew.
    pub(crate) fn advance(&mut self, cx: &mut StageCx<'_>) {
        let m = cx.stage_metrics("locate");
        let _t = m.begin();
        let _sp_locate = cx.sp_run.child("stage.locate");
        let _t_locate = cx.tero.obs.stage_timer(&cx.metrics.stage_locate_us);
        self.enqueue_new(cx);
        let budget = cx.tero.locate_budget;
        self.process_queue(cx, budget);
        self.reevaluate(cx);
    }

    /// The horizon slice: drain the queue regardless of budget, settle
    /// every verdict against the now-complete tag history, and hand the
    /// final location map downstream.
    pub(crate) fn finalize(&mut self, cx: &mut StageCx<'_>) -> Located {
        let m = cx.stage_metrics("locate");
        let _t = m.begin();
        let _sp_locate = cx.sp_run.child("stage.locate");
        let _t_locate = cx.tero.obs.stage_timer(&cx.metrics.stage_locate_us);
        self.enqueue_new(cx);
        self.process_queue(cx, None);
        self.reevaluate(cx);
        let locations = self.canonical.clone();
        cx.metrics.streamers_located.add(locations.len() as u64);
        m.records_out.add(locations.len() as u64);
        Located {
            locations,
            streamers_seen: self.seen.len(),
        }
    }

    /// Reconstruct in-memory state from the committed hashes. Metric-
    /// silent: counters were restored from the engine's counter
    /// snapshot, and nothing here re-draws a chaos outcome.
    pub(crate) fn rebuild(&mut self, kv: &KvStore) {
        self.names = parse_names(kv);
        self.seen = self.names.keys().copied().collect();
        self.profiles = parse_hash(kv, LOCATE_PROFILES_KEY);
        self.results = parse_hash(kv, LOCATE_RESULTS_KEY);
        self.canonical = self
            .results
            .iter()
            .filter_map(|(anon, r)| r.located.clone().map(|ls| (*anon, ls)))
            .collect();
        self.queue = self
            .names
            .iter()
            .filter(|(anon, _)| !self.profiles.contains_key(anon))
            .map(|(anon, name)| (*anon, name.clone()))
            .collect();
        self.api_calls = kv
            .hget(LOCATE_META_KEY, "api_calls")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
    }

    /// Pull newly-registered names into the carry-over queue (sorted by
    /// anonymised id within the window, so admission order is
    /// deterministic).
    fn enqueue_new(&mut self, cx: &mut StageCx<'_>) {
        let m = cx.stage_metrics("locate");
        for (anon, name) in parse_names(cx.kv) {
            if self.seen.insert(anon) {
                m.records_in.inc();
                self.queue.push_back((anon, name.clone()));
                self.names.insert(anon, name);
            }
        }
    }

    /// Admit queued lookups while `budget` covers the worst case
    /// ([`PROFILE_ATTEMPTS`] calls); `None` means unlimited. Each
    /// admitted streamer's fault count comes from the injector's
    /// per-streamer keyed stream — drawn exactly once, here, so the
    /// outcome is the same under every window schedule.
    fn process_queue(&mut self, cx: &mut StageCx<'_>, budget: Option<u64>) {
        let mut spent = 0u64;
        while let Some((anon, name)) = self.queue.front() {
            if budget.is_some_and(|b| spent + PROFILE_ATTEMPTS as u64 > b) {
                break;
            }
            let (anon, name) = (*anon, name.clone());
            self.queue.pop_front();
            let faults = cx
                .world
                .chaos()
                .map_or(0, |chaos| chaos.profile_faults(name.as_str()));
            cx.metrics.profile_retries.add(faults as u64);
            let (calls, description) = if faults >= PROFILE_ATTEMPTS {
                (PROFILE_ATTEMPTS as u64, None)
            } else {
                (
                    faults as u64 + 1,
                    cx.world.twitch.profile_description(name.as_str()),
                )
            };
            spent += calls;
            self.api_calls += calls;
            cx.metrics.locate_budget_spent.add(calls);
            let outcome = ProfileOutcome {
                faults,
                description,
            };
            cx.kv.hset(
                LOCATE_PROFILES_KEY,
                &format!("{:016x}", anon.0),
                serde_json::to_string(&outcome).expect("profile outcomes serialize"),
            );
            self.profiles.insert(anon, outcome);
        }
        let deferred = self.queue.len() as u64;
        if deferred > 0 {
            cx.metrics.locate_budget_deferred.add(deferred);
        }
        cx.metrics.locate_queue_depth.set(deferred as i64);
        cx.metrics.locate_api_calls.set(self.api_calls as i64);
        cx.kv
            .hset(LOCATE_META_KEY, "api_calls", self.api_calls.to_string());
    }

    /// Settle the verdict of every profile-committed streamer whose tag
    /// history grew since its last evaluation (or that has none yet).
    fn reevaluate(&mut self, cx: &mut StageCx<'_>) {
        let location_module = LocationModule::new(&cx.world.gaz);
        for (anon, outcome) in &self.profiles {
            let name = &self.names[anon];
            let tags_key = format!("tags:{}", name.as_str());
            let tags_seen = cx.kv.llen(&tags_key);
            if self
                .results
                .get(anon)
                .is_some_and(|r| r.tags_seen == tags_seen)
            {
                continue;
            }
            let tags: Vec<TagObservation> = cx
                .kv
                .lrange_from(&tags_key, 0)
                .into_iter()
                .enumerate()
                .map(|(i, t)| TagObservation {
                    poll: i as u64,
                    country_tag: Some(t),
                })
                .collect();
            let located = location_module.locate(
                name.as_str(),
                outcome.description.as_deref(),
                &cx.world.social_directory,
                &tags,
            );
            match &located {
                Some(ls) => {
                    self.canonical.insert(*anon, ls.clone());
                }
                None => {
                    self.canonical.remove(anon);
                }
            }
            let result = LocateResult { tags_seen, located };
            cx.kv.hset(
                LOCATE_RESULTS_KEY,
                &format!("{:016x}", anon.0),
                serde_json::to_string(&result).expect("locate results serialize"),
            );
            self.results.insert(*anon, result);
        }
    }
}

/// The names hash, parsed and sorted by anonymised id.
fn parse_names(kv: &KvStore) -> BTreeMap<AnonId, StreamerId> {
    kv.hgetall(NAMES_KEY)
        .into_iter()
        .filter_map(|(hex, name)| {
            let anon = u64::from_str_radix(&hex, 16).ok()?;
            Some((AnonId(anon), StreamerId::new(&name)))
        })
        .collect()
}

/// A committed `{anon:016x}` → JSON hash, parsed and sorted.
fn parse_hash<T: serde::de::DeserializeOwned>(kv: &KvStore, key: &str) -> BTreeMap<AnonId, T> {
    kv.hgetall(key)
        .into_iter()
        .filter_map(|(hex, json)| {
            let anon = u64::from_str_radix(&hex, 16).ok()?;
            Some((AnonId(anon), serde_json::from_str(&json).ok()?))
        })
        .collect()
}
