//! Descriptive statistics and the paper's boxplot representation.
//!
//! Every latency distribution in the paper is reported as the 5th, 25th,
//! 50th, 75th and 95th percentiles — deliberately *not* min/max, because up
//! to ~3.7 % of the points may be image-processing errors (§5.2), so the
//! tails are untrustworthy. [`BoxplotStats`] captures exactly that.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (n − 1 denominator). `NaN` when fewer than 2 points.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Percentile `p ∈ [0, 100]` by linear interpolation between closest ranks
/// (the "linear" method of NumPy). The input need not be sorted. Returns
/// `NaN` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice (ascending). See [`percentile`].
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Nearest-rank percentile of an *unsorted* slice: the value at 1-based
/// rank `ceil(p/100 · n)`, clamped to at least rank 1. `None` when empty.
///
/// This is the definition shared by `tero_obs::Histogram::percentile` and
/// [`tero_stats::sketch::QuantileSketch::quantile`](crate::sketch::QuantileSketch::quantile)
/// — the one docs/OPERATIONS.md quotes for every served p50/p95/p99. It
/// always returns an observed sample, unlike [`percentile`] which
/// linearly interpolates *between* samples (the §5.2 report method); on a
/// sorted slice the two differ by at most one rank position.
pub fn percentile_nearest_rank(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank - 1])
}

/// The five-number summary the paper uses for every latency distribution:
/// 5th, 25th, 50th, 75th and 95th percentiles, plus count and mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl BoxplotStats {
    /// Compute the summary. Returns `None` for an empty input.
    pub fn from_samples(xs: &[f64]) -> Option<BoxplotStats> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        Some(BoxplotStats {
            n: sorted.len(),
            mean: mean(&sorted),
            p5: percentile_sorted(&sorted, 5.0),
            p25: percentile_sorted(&sorted, 25.0),
            p50: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p95: percentile_sorted(&sorted, 95.0),
        })
    }

    /// The inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Scale every summary statistic by `k` (used for distance normalisation).
    pub fn scaled(&self, k: f64) -> BoxplotStats {
        BoxplotStats {
            n: self.n,
            mean: self.mean * k,
            p5: self.p5 * k,
            p25: self.p25 * k,
            p50: self.p50 * k,
            p75: self.p75 * k,
            p95: self.p95 * k,
        }
    }
}

impl std::fmt::Display for BoxplotStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p5={:.1} p25={:.1} p50={:.1} p75={:.1} p95={:.1}",
            self.n, self.p5, self.p25, self.p50, self.p75, self.p95
        )
    }
}

/// Empirical CDF evaluation points for plotting: returns `(sorted values,
/// cumulative probabilities)`.
pub fn ecdf(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = sorted.len();
    let probs = (1..=n).map(|i| i as f64 / n as f64).collect();
    (sorted, probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(sample_variance(&[1.0]).is_nan());
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
        // Out-of-range p clamps.
        assert_eq!(percentile(&xs, 150.0), 4.0);
    }

    #[test]
    fn nearest_rank_matches_shared_definition() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        // rank = ceil(p/100 · 5): p50 → rank 3 → 5.0, p95 → rank 5 → 9.0.
        assert_eq!(percentile_nearest_rank(&xs, 50.0), Some(5.0));
        assert_eq!(percentile_nearest_rank(&xs, 95.0), Some(9.0));
        assert_eq!(percentile_nearest_rank(&xs, 0.0), Some(1.0));
        assert_eq!(percentile_nearest_rank(&xs, 100.0), Some(9.0));
        assert_eq!(percentile_nearest_rank(&[], 50.0), None);
        // Always an observed sample; linear interpolation is not.
        let pair = [1.0, 1000.0];
        assert_eq!(percentile_nearest_rank(&pair, 50.0), Some(1.0));
        assert!((percentile(&pair, 50.0) - 500.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
    }

    #[test]
    fn boxplot_from_uniform_grid() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let b = BoxplotStats::from_samples(&xs).unwrap();
        assert_eq!(b.n, 101);
        assert!((b.p5 - 5.0).abs() < 1e-12);
        assert!((b.p50 - 50.0).abs() < 1e-12);
        assert!((b.p95 - 95.0).abs() < 1e-12);
        assert!((b.iqr() - 50.0).abs() < 1e-12);
        assert!(BoxplotStats::from_samples(&[]).is_none());
    }

    #[test]
    fn boxplot_scaling() {
        let b = BoxplotStats::from_samples(&[10.0, 20.0, 30.0]).unwrap();
        let s = b.scaled(0.1);
        assert!((s.p50 - 2.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn ecdf_monotone() {
        let (vals, probs) = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        assert!((probs[2] - 1.0).abs() < 1e-12);
        assert!(probs.windows(2).all(|w| w[0] <= w[1]));
    }
}
