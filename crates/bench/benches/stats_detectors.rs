//! Detector cost comparison — the ablation behind §3.3.2's observation
//! that PELT "did not complete in useful time" while the QoE-based
//! detector is linear-ish, plus App. J's baselines (LOF quadratic, iForest
//! ensemble cost, MCD sort-based), plus the probit and Wasserstein costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tero_core::analysis::anomaly::detect_anomalies;
use tero_core::analysis::segments::segment_stream;
use tero_stats::lof::local_outlier_factor;
use tero_stats::{pelt_mean_shift, wasserstein_1d, IsolationForest, ProbitModel, UnivariateMcd};
use tero_types::{LatencySample, SimRng, SimTime, TeroParams};

fn noisy_series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            let level = if (i / 97) % 2 == 0 { 45.0 } else { 70.0 };
            let glitch = if rng.chance(0.02) { -35.0 } else { 0.0 };
            level + glitch + rng.normal_with(0.0, 2.0)
        })
        .collect()
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_cost");
    for n in [300usize, 1_000, 3_000] {
        let xs = noisy_series(n, 1);
        let samples: Vec<LatencySample> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| LatencySample::new(SimTime::from_mins(5 * i as u64), v.max(1.0) as u32))
            .collect();
        let params = TeroParams::default();

        group.bench_with_input(BenchmarkId::new("qoe_based", n), &samples, |b, s| {
            b.iter(|| {
                let segs = segment_stream(0, s, &params);
                detect_anomalies(segs, &params)
            })
        });
        group.bench_with_input(BenchmarkId::new("pelt", n), &xs, |b, xs| {
            b.iter(|| pelt_mean_shift(xs, tero_stats::changepoint::bic_penalty(xs), 3))
        });
        group.bench_with_input(BenchmarkId::new("lof_k10", n), &xs, |b, xs| {
            b.iter(|| local_outlier_factor(xs, 10))
        });
        group.bench_with_input(BenchmarkId::new("mcd", n), &xs, |b, xs| {
            b.iter(|| UnivariateMcd::fit(xs, None))
        });
        group.bench_with_input(BenchmarkId::new("iforest", n), &xs, |b, xs| {
            b.iter(|| {
                let mut rng = SimRng::new(2);
                IsolationForest::fit(xs, 50, 128, &mut rng).scores(xs)
            })
        });
    }
    group.finish();
}

fn bench_probit(c: &mut Criterion) {
    let mut rng = SimRng::new(3);
    let mut model = ProbitModel::new();
    for _ in 0..10_000 {
        let x = rng.below(6) as f64;
        let p = tero_stats::norm_cdf(-1.2 + 0.2 * x);
        model.push(x, rng.chance(p));
    }
    c.bench_function("probit_fit_10k", |b| b.iter(|| model.fit()));
}

fn bench_wasserstein(c: &mut Criterion) {
    let a = noisy_series(2_000, 4);
    let b_ = noisy_series(2_000, 5);
    c.bench_function("wasserstein_2k_vs_2k", |b| {
        b.iter(|| wasserstein_1d(&a, &b_))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_detectors, bench_probit, bench_wasserstein);
criterion_main!(benches);
