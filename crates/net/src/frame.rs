//! Length-prefixed wire framing.
//!
//! Every message on the store network is one frame:
//!
//! ```text
//! +-------+------+-----------+---------+----------------------------+----------+------------+
//! | magic | kind | client_id |   seq   | trace_id | span  |  tick   | body_len |    body    |
//! | 4 B   | 1 B  |  8 B LE   | 8 B LE  |  8 B LE  | 8 B LE| 8 B LE  | 4 B LE   | body_len B |
//! +-------+------+-----------+---------+----------------------------+----------+------------+
//! ```
//!
//! The body is the JSON encoding of the typed request/response (empty
//! for `PING`/`PONG`). JSON keeps the codec trivially debuggable; the
//! length prefix is what the transport meters (RESP-style, the framing
//! Redis clients use) and what a real socket implementation would read.
//!
//! `(client_id, seq)` make retries safe: the client bumps `seq` once per
//! logical operation and reuses it verbatim on every retry, and the
//! server caches its last response per client, so a retried mutation
//! (`rpush`, `lpop`, …) is answered from cache instead of re-applied.
//!
//! The three trace words carry a [`TraceContext`] — the client's trace
//! id, in-flight operation span id, and logical tick — so server-side
//! handling spans stitch under the client's span tree across the
//! process boundary. All-zero words mean "no context" (`trace_id` 0 is
//! reserved, and span ids are never 0); tracing-disabled runs pay three
//! zero words per frame and nothing else.

use serde::{Deserialize, Serialize};
use tero_store::{KvRequest, KvResponse, ObjRequest, ObjResponse};
use tero_trace::TraceContext;

/// Frame magic: "TN" + protocol version 2 (v2 added the trace words).
pub const MAGIC: [u8; 4] = *b"TNv2";

/// Fixed header size in bytes (magic + kind + client + seq + trace
/// context + body_len).
pub const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 24 + 4;

/// The typed content of a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A KV operation (client → server).
    KvReq(KvRequest),
    /// A KV result (server → client).
    KvResp(KvResponse),
    /// An object operation (client → server).
    ObjReq(ObjRequest),
    /// An object result (server → client).
    ObjResp(ObjResponse),
    /// Liveness probe (client → server), used by failover to decide
    /// whether a primary has come back.
    Ping,
    /// Probe answer (server → client).
    Pong,
    /// An operations-plane poll (monitor → server).
    OpsReq(OpsRequest),
    /// An operations-plane answer (server → monitor).
    OpsResp(OpsResponse),
}

impl Payload {
    fn kind(&self) -> u8 {
        match self {
            Payload::KvReq(_) => 0,
            Payload::KvResp(_) => 1,
            Payload::ObjReq(_) => 2,
            Payload::ObjResp(_) => 3,
            Payload::Ping => 4,
            Payload::Pong => 5,
            Payload::OpsReq(_) => 6,
            Payload::OpsResp(_) => 7,
        }
    }
}

/// An operations-plane question a [`StoreServer`](crate::StoreServer)
/// answers in-band — same framing, same dedup path as store traffic, so
/// a health poll exercises exactly the machinery it is monitoring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpsRequest {
    /// Report the host's live health facts.
    Health,
}

/// The server's answer to an [`OpsRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpsResponse {
    /// Answer to [`OpsRequest::Health`].
    Health(HostHealth),
}

/// Live health facts one store host reports about itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostHealth {
    /// The host's mesh name (`shard0p`, `shard0r`, …).
    pub host: String,
    /// Keys currently in the host's KV store.
    pub kv_keys: u64,
    /// Total bytes across the host's object buckets.
    pub object_bytes: u64,
    /// Store request frames executed since boot (dedup replays and
    /// ops polls excluded).
    pub frames_handled: u64,
    /// Distinct clients the host has answered (dedup cache entries).
    pub clients_seen: u64,
}

/// One framed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Stable identity of the sending client (engine index).
    pub client: u64,
    /// Per-client operation sequence number; retries reuse it.
    pub seq: u64,
    /// Trace context of the in-flight client operation, if tracing is
    /// on. Retries reuse the encoded frame verbatim, so every leg of
    /// one logical operation carries the same context.
    pub ctx: Option<TraceContext>,
    /// Typed content.
    pub payload: Payload,
}

/// Why a byte string failed to parse as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header.
    Truncated,
    /// The magic did not match [`MAGIC`].
    BadMagic,
    /// Unknown kind byte.
    BadKind(u8),
    /// `body_len` disagrees with the bytes actually present.
    LengthMismatch,
    /// The body failed to decode as the kind's JSON type.
    BadBody,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame shorter than header"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::LengthMismatch => write!(f, "frame length prefix mismatch"),
            FrameError::BadBody => write!(f, "frame body failed to decode"),
        }
    }
}

fn body_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("wire types always serialize")
}

fn parse_body<T: Deserialize>(body: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(body).map_err(|_| FrameError::BadBody)?;
    serde_json::from_str(text).map_err(|_| FrameError::BadBody)
}

/// Encode a frame to wire bytes.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let body = match &frame.payload {
        Payload::KvReq(r) => body_json(r),
        Payload::KvResp(r) => body_json(r),
        Payload::ObjReq(r) => body_json(r),
        Payload::ObjResp(r) => body_json(r),
        Payload::OpsReq(r) => body_json(r),
        Payload::OpsResp(r) => body_json(r),
        Payload::Ping | Payload::Pong => String::new(),
    };
    let body = body.into_bytes();
    let ctx = frame.ctx.unwrap_or(TraceContext {
        trace_id: 0,
        span: 0,
        tick: 0,
    });
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(frame.payload.kind());
    out.extend_from_slice(&frame.client.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&ctx.trace_id.to_le_bytes());
    out.extend_from_slice(&ctx.span.to_le_bytes());
    out.extend_from_slice(&ctx.tick.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode wire bytes back into a frame.
pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = bytes[4];
    let client = u64::from_le_bytes(bytes[5..13].try_into().expect("sized"));
    let seq = u64::from_le_bytes(bytes[13..21].try_into().expect("sized"));
    let trace_id = u64::from_le_bytes(bytes[21..29].try_into().expect("sized"));
    let span = u64::from_le_bytes(bytes[29..37].try_into().expect("sized"));
    let tick = u64::from_le_bytes(bytes[37..45].try_into().expect("sized"));
    let ctx = (trace_id != 0).then_some(TraceContext {
        trace_id,
        span,
        tick,
    });
    let body_len = u32::from_le_bytes(bytes[45..49].try_into().expect("sized")) as usize;
    let body = &bytes[HEADER_LEN..];
    if body.len() != body_len {
        return Err(FrameError::LengthMismatch);
    }
    let payload = match kind {
        0 => Payload::KvReq(parse_body(body)?),
        1 => Payload::KvResp(parse_body(body)?),
        2 => Payload::ObjReq(parse_body(body)?),
        3 => Payload::ObjResp(parse_body(body)?),
        4 => Payload::Ping,
        5 => Payload::Pong,
        6 => Payload::OpsReq(parse_body(body)?),
        7 => Payload::OpsResp(parse_body(body)?),
        k => return Err(FrameError::BadKind(k)),
    };
    Ok(Frame {
        client,
        seq,
        ctx,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_store::{KvStore, ObjectStore};

    fn round_trip(payload: Payload) {
        let frame = Frame {
            client: 3,
            seq: 99,
            ctx: None,
            payload,
        };
        let bytes = encode(&frame);
        assert_eq!(decode(&bytes).expect("round trip"), frame);
    }

    #[test]
    fn trace_context_rides_the_header() {
        let ctx = TraceContext {
            trace_id: 0x9e37_79b9,
            span: 0xdead_beef,
            tick: 42,
        };
        let frame = Frame {
            client: 1,
            seq: 7,
            ctx: Some(ctx),
            payload: Payload::KvReq(KvRequest::Len),
        };
        let bytes = encode(&frame);
        assert_eq!(decode(&bytes).expect("round trip"), frame);
        // An absent context encodes as all-zero words and decodes back
        // to None — v2 frames are the same length either way.
        let bare = Frame { ctx: None, ..frame };
        let bare_bytes = encode(&bare);
        assert_eq!(bare_bytes.len(), bytes.len());
        assert_eq!(decode(&bare_bytes).expect("round trip").ctx, None);
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Payload::Ping);
        round_trip(Payload::Pong);
        round_trip(Payload::KvReq(KvRequest::Set {
            key: "engine:cursor".into(),
            value: "42".into(),
        }));
        round_trip(Payload::KvReq(KvRequest::RpushBatch {
            key: "queue:thumbs".into(),
            values: vec!["a".into(), "b".into()],
        }));
        round_trip(Payload::KvResp(KvResponse::MaybeStr(Some("v".into()))));
        round_trip(Payload::KvResp(KvResponse::Pairs(vec![(
            "f".into(),
            "v".into(),
        )])));
        round_trip(Payload::ObjReq(ObjRequest::Put {
            bucket: "thumbs".into(),
            key: "s1/0".into(),
            data: vec![0, 1, 254, 255],
        }));
        round_trip(Payload::ObjResp(ObjResponse::MaybeBytes(Some(vec![7; 32]))));
        round_trip(Payload::OpsReq(OpsRequest::Health));
        round_trip(Payload::OpsResp(OpsResponse::Health(HostHealth {
            host: "shard0p".into(),
            kv_keys: 12,
            object_bytes: 4096,
            frames_handled: 99,
            clients_seen: 2,
        })));
    }

    #[test]
    fn snapshots_cross_the_wire() {
        let kv = KvStore::new();
        kv.set("k", "v");
        kv.rpush("list", "x");
        kv.hset("h", "f", "v");
        round_trip(Payload::KvResp(KvResponse::Snapshot(kv.snapshot())));
        let objects = ObjectStore::new();
        objects.put("b", "k", vec![1, 2, 3]);
        round_trip(Payload::ObjResp(ObjResponse::Snapshot(objects.snapshot())));
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        assert_eq!(decode(b"TNv2"), Err(FrameError::Truncated));
        let frame = Frame {
            client: 0,
            seq: 1,
            ctx: None,
            payload: Payload::Ping,
        };
        let mut bytes = encode(&frame);
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(FrameError::BadMagic));
        // A v1 frame (old magic) is rejected, not misparsed.
        let mut bytes = encode(&frame);
        bytes[3] = b'1';
        assert_eq!(decode(&bytes), Err(FrameError::BadMagic));
        let mut bytes = encode(&frame);
        bytes[4] = 200;
        assert_eq!(decode(&bytes), Err(FrameError::BadKind(200)));
        let mut bytes = encode(&frame);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(FrameError::LengthMismatch));
        let mut bytes = encode(&Frame {
            client: 0,
            seq: 1,
            ctx: None,
            payload: Payload::KvReq(KvRequest::Len),
        });
        let len = bytes.len();
        bytes[len - 1] = b'!';
        assert_eq!(decode(&bytes), Err(FrameError::BadBody));
    }
}
