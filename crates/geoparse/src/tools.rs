//! The five geoparsing / geocoding tools (Table 3, App. D).
//!
//! Each tool shares the same base gazetteer but matches differently, which
//! gives each one a distinct, realistic precision/recall profile:
//!
//! * **CLIFF** — geocoder for unstructured text; proper-noun heuristic
//!   (capitalised n-grams) *with context*: a candidate needs a locative
//!   preposition ("in Detroit", "from Miami") or comma structure
//!   ("Miami, Florida"). Conservative — the paper measured it extracting
//!   from only 0.44 % of descriptions.
//! * **Xponents** — geocoder; case-insensitive, no context requirement,
//!   *prefix* matching for long tokens (extracts the most, errs the most —
//!   "Denmarkian" matches "Denmark", the paper's own example).
//! * **Mordecai** — geocoder; context-requiring like CLIFF but returns up
//!   to three candidates without ranking (the paper notes this makes it
//!   "hard to use on its own").
//! * **Nominatim** — geoparser for location fields; understands
//!   comma-separated "city, region/country" structure and prefers specific
//!   (city) readings.
//! * **GeoNames** — geoparser; flat n-gram lookup with population
//!   tie-breaking (more homonym errors than Nominatim, as in Table 3).
//!
//! On top of the shared gazetteer, each *geocoder* has hash-derived
//! coverage gaps (real tools bundle different gazetteers), which is one of
//! the reasons their errors only partially overlap.

use crate::gazetteer::{Gazetteer, Place, PlaceKind};
use tero_types::Location;

/// Which tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolKind {
    /// CLIFF \[13\] — geocoding, capitalisation + context driven.
    Cliff,
    /// Xponents \[57\] — geocoding, aggressive matching.
    Xponents,
    /// Mordecai \[18\] — geocoding, multi-candidate output.
    Mordecai,
    /// Nominatim — geoparsing with comma structure.
    Nominatim,
    /// GeoNames — geoparsing, flat lookup.
    GeoNames,
}

impl ToolKind {
    /// The three geocoders used on Twitch descriptions (App. D.2).
    pub const GEOCODERS: [ToolKind; 3] = [ToolKind::Cliff, ToolKind::Xponents, ToolKind::Mordecai];
    /// The two geoparsers used on Twitter location fields (App. D.3).
    pub const GEOPARSERS: [ToolKind; 2] = [ToolKind::Nominatim, ToolKind::GeoNames];

    /// Display name as in Table 3.
    pub fn name(self) -> &'static str {
        match self {
            ToolKind::Cliff => "CLIFF",
            ToolKind::Xponents => "Xponents",
            ToolKind::Mordecai => "Mordecai",
            ToolKind::Nominatim => "Nominatim",
            ToolKind::GeoNames => "Geonames",
        }
    }

    /// Fraction of gazetteer names this tool's bundled gazetteer is
    /// missing (0 for the geoparsers, whose coverage is near-complete).
    fn coverage_gap(self) -> u64 {
        match self {
            ToolKind::Cliff => 12,
            ToolKind::Xponents => 8,
            ToolKind::Mordecai => 15,
            ToolKind::Nominatim | ToolKind::GeoNames => 0,
        }
    }
}

/// A tool bound to a gazetteer.
#[derive(Debug, Clone, Copy)]
pub struct GeoTool<'g> {
    kind: ToolKind,
    gaz: &'g Gazetteer,
}

/// Locative prepositions that give a capitalised token geographic context.
const PREPOSITIONS: &[&str] = &["in", "from", "near", "at", "to", "around"];

impl<'g> GeoTool<'g> {
    /// Bind a tool to a gazetteer.
    pub fn new(kind: ToolKind, gaz: &'g Gazetteer) -> Self {
        GeoTool { kind, gaz }
    }

    /// The tool's kind.
    pub fn kind(&self) -> ToolKind {
        self.kind
    }

    /// Whether this tool's bundled gazetteer knows a place. Every tool
    /// knows the world's prominent places; smaller ones fall into stable
    /// hash-derived per-tool coverage gaps (see module docs).
    fn knows(&self, p: &Place) -> bool {
        let gap = self.kind.coverage_gap();
        if gap == 0 || p.population_m >= 0.4 {
            return true;
        }
        let mut h: u64 =
            0xcbf2_9ce4_8422_2325 ^ (self.kind as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in place_name(p).to_lowercase().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Finalise (SplitMix64 mixer) to avoid modulo bias from FNV's
        // weakly mixed low bits.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        h % 100 >= gap
    }

    fn lookup_known(&self, name: &str) -> Vec<&'g Place> {
        if short_alias_misuse(name) {
            return vec![];
        }
        self.gaz
            .lookup(name)
            .into_iter()
            .filter(|p| self.knows(p))
            .collect()
    }

    /// Extract location candidates from text. Most tools return zero or one
    /// candidate; Mordecai may return several (its callers must handle
    /// that).
    pub fn extract(&self, text: &str) -> Vec<Location> {
        match self.kind {
            ToolKind::Cliff => self.extract_contextual(text, false),
            ToolKind::Xponents => self.extract_xponents(text),
            ToolKind::Mordecai => self.extract_contextual(text, true),
            ToolKind::Nominatim => self.extract_nominatim(text),
            ToolKind::GeoNames => self.extract_geonames(text),
        }
    }

    /// CLIFF / Mordecai: capitalised n-grams with locative context. With
    /// `multi`, return up to three unranked candidates (Mordecai).
    fn extract_contextual(&self, text: &str, multi: bool) -> Vec<Location> {
        let grams = ngrams(text, 3);
        let mut matches: Vec<&Place> = Vec::new();
        for g in &grams {
            if !g.capitalised {
                continue;
            }
            if !has_context(text, g) && !self.comma_paired(text, g) {
                continue;
            }
            matches.extend(self.lookup_known(&g.text));
        }
        if multi {
            matches.sort_by(|a, b| b.population_m.partial_cmp(&a.population_m).unwrap());
            matches.dedup_by(|a, b| a.location == b.location);
            matches
                .into_iter()
                .take(3)
                .map(|p| p.location.clone())
                .collect()
        } else {
            resolve_to_single(matches)
        }
    }

    /// Whether the gram sits in a "X, Y" pattern with another known place.
    fn comma_paired(&self, text: &str, g: &NGram) -> bool {
        let after = format!("{},", g.text);
        if text.contains(&after) {
            // Something follows the comma; is it a place?
            if let Some(pos) = text.find(&after) {
                let rest = &text[pos + after.len()..];
                let next: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == ' ' || *c == '-')
                    .collect();
                for cand in ngrams(&next, 3) {
                    if !self.lookup_known(&cand.text).is_empty() {
                        return true;
                    }
                }
            }
        }
        let before = format!(", {}", g.text);
        if let Some(pos) = text.find(&before) {
            let head = &text[..pos];
            for cand in ngrams(head, 3) {
                if !self.lookup_known(&cand.text).is_empty() {
                    return true;
                }
            }
        }
        false
    }

    fn extract_xponents(&self, text: &str) -> Vec<Location> {
        // Case-insensitive; no context requirement; long tokens also match
        // by prefix ("Denmarkian" → "Denmark"), which boosts extraction
        // and error alike.
        let grams = ngrams(text, 3);
        let mut matches: Vec<&Place> = Vec::new();
        for g in &grams {
            let direct = self.lookup_known(&g.text);
            if !direct.is_empty() {
                matches.extend(direct);
                continue;
            }
            if g.words == 1 && g.text.len() >= 7 {
                // Prefix match against place names at least 5 chars long.
                let lower = g.text.to_lowercase();
                for p in self.gaz.places() {
                    let name = place_name(p).to_lowercase();
                    if name.len() >= 5 && lower.starts_with(&name) && self.knows(p) {
                        matches.push(p);
                    }
                }
            }
        }
        resolve_to_single(matches)
    }

    fn extract_nominatim(&self, text: &str) -> Vec<Location> {
        // Treat the field as comma-separated location parts; try to combine
        // a specific part with a more general one. Prefers the specific
        // (city) reading of homonyms.
        let parts: Vec<&str> = text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let mut part_matches: Vec<Vec<&Place>> = Vec::new();
        for part in &parts {
            // Within a part, try the whole part first, then n-grams.
            let mut hits = self.lookup_known(part);
            if hits.is_empty() {
                for g in ngrams(part, 3) {
                    hits.extend(self.lookup_known(&g.text));
                }
            }
            part_matches.push(hits);
        }
        // Prefer a (specific, general) pair across parts that is
        // consistent — e.g. "Miami, Florida".
        let mut best: Option<&Place> = None;
        for (i, hits) in part_matches.iter().enumerate() {
            for &h in hits {
                for other_hits in part_matches.iter().skip(i + 1) {
                    for &o in other_hits {
                        if o.location.subsumes(&h.location) && o.location != h.location {
                            return vec![h.location.clone()];
                        }
                        if h.location.subsumes(&o.location) && o.location != h.location {
                            return vec![o.location.clone()];
                        }
                    }
                }
                // Track the most specific single hit as a fallback, with
                // population as the tie-break.
                let better = match best {
                    None => true,
                    Some(b) => {
                        specificity(h) > specificity(b)
                            || (specificity(h) == specificity(b) && h.population_m > b.population_m)
                    }
                };
                if better {
                    best = Some(h);
                }
            }
        }
        best.map(|p| vec![p.location.clone()]).unwrap_or_default()
    }

    fn extract_geonames(&self, text: &str) -> Vec<Location> {
        // Flat n-gram lookup over the whole field; picks the most populous
        // match (homonym errors land here, as in Table 3).
        let grams = ngrams(text, 3);
        let mut matches: Vec<&Place> = Vec::new();
        for g in &grams {
            matches.extend(self.lookup_known(&g.text));
        }
        matches
            .into_iter()
            .max_by(|a, b| a.population_m.partial_cmp(&b.population_m).unwrap())
            .map(|p| vec![p.location.clone()])
            .unwrap_or_default()
    }
}

/// Short gazetteer aliases ("US", "LA", "IN") are only meaningful when
/// written in uppercase; otherwise common English words would geocode.
fn short_alias_misuse(name: &str) -> bool {
    name.len() <= 3 && name.to_uppercase() != name
}

/// Whether the n-gram is preceded by a locative preposition.
fn has_context(_text: &str, g: &NGram) -> bool {
    g.prev_word
        .as_deref()
        .is_some_and(|w| PREPOSITIONS.contains(&w))
}

fn place_name(p: &Place) -> &str {
    match p.kind {
        PlaceKind::City => p.location.city.as_deref().unwrap_or(&p.location.country),
        PlaceKind::Region => p.location.region.as_deref().unwrap_or(&p.location.country),
        PlaceKind::Country => &p.location.country,
    }
}

fn specificity(p: &Place) -> u8 {
    match p.kind {
        PlaceKind::City => 2,
        PlaceKind::Region => 1,
        PlaceKind::Country => 0,
    }
}

/// Combine raw matches into at most one location: group city/region/country
/// hits, prefer consistent (city ⊂ region ⊂ country) combinations, resolve
/// homonym ties by population.
fn resolve_to_single(mut matches: Vec<&Place>) -> Vec<Location> {
    if matches.is_empty() {
        return vec![];
    }
    matches.sort_by(|a, b| {
        specificity(b)
            .cmp(&specificity(a))
            .then(b.population_m.partial_cmp(&a.population_m).unwrap())
    });
    // Most specific, most populous candidate.
    let head = matches[0];
    // If a coarser match confirms the head (same country), keep the head;
    // if coarser matches mostly *conflict*, prefer the most prominent
    // conflicting candidate instead (a realistic tool mistake).
    let consistent = matches
        .iter()
        .filter(|p| p.location.country == head.location.country)
        .count();
    let conflicting = matches.len() - consistent;
    if conflicting > consistent {
        if let Some(alt) = matches
            .iter()
            .filter(|p| p.location.country != head.location.country)
            .max_by(|a, b| a.population_m.partial_cmp(&b.population_m).unwrap())
        {
            return vec![alt.location.clone()];
        }
    }
    vec![head.location.clone()]
}

/// A candidate n-gram of 1..=`max_n` consecutive words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NGram {
    /// The n-gram text, words joined by single spaces.
    pub text: String,
    /// Number of words.
    pub words: usize,
    /// Whether every word starts with an uppercase letter.
    pub capitalised: bool,
    /// The (lowercased) word immediately before the n-gram, if any.
    pub prev_word: Option<String>,
}

/// Tokenise text into words (letters, digits, hyphens, periods and
/// apostrophes within a word) and produce all n-grams up to `max_n` words.
pub fn ngrams(text: &str, max_n: usize) -> Vec<NGram> {
    let words: Vec<&str> = text
        .split(|c: char| c.is_whitespace() || ",;!?()\"".contains(c))
        .map(|w| w.trim_matches(|c: char| "..'-:".contains(c)))
        .filter(|w| !w.is_empty())
        .collect();
    let mut out = Vec::new();
    for n in 1..=max_n.min(words.len().max(1)) {
        for (start, window) in words.windows(n).enumerate() {
            let text = window.join(" ");
            let capitalised = window
                .iter()
                .all(|w| w.chars().next().is_some_and(|c| c.is_uppercase()));
            let prev_word = (start > 0).then(|| words[start - 1].to_lowercase());
            out.push(NGram {
                text,
                words: n,
                capitalised,
                prev_word,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        Gazetteer::new()
    }

    #[test]
    fn ngram_generation() {
        let g = ngrams("Join us in Detroit!", 3);
        let detroit = g.iter().find(|x| x.text == "Detroit").unwrap();
        assert!(detroit.capitalised);
        assert_eq!(detroit.prev_word.as_deref(), Some("in"));
        assert!(g.iter().any(|x| x.text == "us in Detroit"));
        assert!(ngrams("", 3).is_empty());
    }

    #[test]
    fn cliff_extracts_city_with_context() {
        let g = gaz();
        let tool = GeoTool::new(ToolKind::Cliff, &g);
        let out = tool.extract("Join us in Detroit!");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].city.as_deref(), Some("Detroit"));
        assert_eq!(out[0].country, "United States");
    }

    #[test]
    fn cliff_skips_contextless_place_words() {
        // "Phoenix main" — a team role, not a location. CLIFF's context
        // requirement rejects it; aggressive Xponents does not.
        let g = gaz();
        let cliff = GeoTool::new(ToolKind::Cliff, &g);
        assert!(cliff.extract("Phoenix main, road to radiant").is_empty());
        let xp = GeoTool::new(ToolKind::Xponents, &g);
        assert_eq!(xp.extract("Phoenix main, road to radiant").len(), 1);
    }

    #[test]
    fn cliff_ignores_lowercase_mentions() {
        let g = gaz();
        let tool = GeoTool::new(ToolKind::Cliff, &g);
        assert!(tool.extract("greetings from detroit").is_empty());
        // Xponents, case-insensitive, catches it.
        let x = GeoTool::new(ToolKind::Xponents, &g);
        assert_eq!(x.extract("greetings from detroit").len(), 1);
    }

    #[test]
    fn xponents_prefix_match_reproduces_denmarkian() {
        // The paper's own confusing example: "I live in Denmarkian but have
        // roots in Iran".
        let g = gaz();
        let tool = GeoTool::new(ToolKind::Xponents, &g);
        let out = tool.extract("I live in Denmarkian but have roots in Iran");
        assert_eq!(out.len(), 1);
        // CLIFF, context-driven, sees only "in Iran".
        let cliff = GeoTool::new(ToolKind::Cliff, &g)
            .extract("I live in Denmarkian but have roots in Iran");
        assert_eq!(cliff[0].country, "Iran");
    }

    #[test]
    fn mordecai_returns_multiple_candidates() {
        let g = gaz();
        let tool = GeoTool::new(ToolKind::Mordecai, &g);
        // "Buenos Aires" is a region and a city.
        let out = tool.extract("streaming from Buenos Aires");
        assert!(out.len() >= 2, "got {out:?}");
    }

    #[test]
    fn multiword_city_names() {
        let g = gaz();
        let tool = GeoTool::new(ToolKind::Cliff, &g);
        let out = tool.extract("Living in Los Angeles since 2019");
        assert_eq!(out[0].city.as_deref(), Some("Los Angeles"));
    }

    #[test]
    fn comma_structure_counts_as_context() {
        let g = gaz();
        let tool = GeoTool::new(ToolKind::Cliff, &g);
        let out = tool.extract("Miami, Florida based streamer");
        assert!(!out.is_empty());
        assert_eq!(out[0].city.as_deref(), Some("Miami"));
    }

    #[test]
    fn nominatim_understands_comma_structure() {
        let g = gaz();
        let tool = GeoTool::new(ToolKind::Nominatim, &g);
        let out = tool.extract("Miami, Florida");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].city.as_deref(), Some("Miami"));
        assert_eq!(out[0].region.as_deref(), Some("Florida"));
        // Non-geographic fluff with a real city: the paper's
        // "Your heart, Chicago".
        let out = tool.extract("Your heart, Chicago");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].city.as_deref(), Some("Chicago"));
    }

    #[test]
    fn geonames_population_tiebreak_errs_on_homonyms() {
        let g = gaz();
        let tool = GeoTool::new(ToolKind::GeoNames, &g);
        // "Washington" is a US state and a city; population tie-break picks
        // the state (7.6M > 0.7M) even when the user meant the city.
        let out = tool.extract("Washington");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].region.as_deref(), Some("Washington"));
        assert_eq!(out[0].city, None);
    }

    #[test]
    fn coverage_gaps_differ_between_tools() {
        let g = gaz();
        let gaps = |kind: ToolKind| -> Vec<bool> {
            let tool = GeoTool::new(kind, &g);
            g.places().iter().map(|p| tool.knows(p)).collect()
        };
        let cliff = gaps(ToolKind::Cliff);
        let xponents = gaps(ToolKind::Xponents);
        let mordecai = gaps(ToolKind::Mordecai);
        let nominatim = gaps(ToolKind::Nominatim);
        assert!(nominatim.iter().all(|&k| k), "geoparsers are complete");
        let missing = |v: &Vec<bool>| v.iter().filter(|&&k| !k).count();
        assert!(
            missing(&cliff) + missing(&xponents) + missing(&mordecai) > 0,
            "geocoders have gaps"
        );
        assert!(
            cliff != mordecai || cliff != xponents,
            "gaps are tool-specific"
        );
    }

    #[test]
    fn empty_and_unmatchable_text() {
        let g = gaz();
        for kind in [
            ToolKind::Cliff,
            ToolKind::Xponents,
            ToolKind::Mordecai,
            ToolKind::Nominatim,
            ToolKind::GeoNames,
        ] {
            let tool = GeoTool::new(kind, &g);
            assert!(tool.extract("").is_empty(), "{:?}", kind);
            assert!(
                tool.extract("just vibes and good music").is_empty(),
                "{:?}",
                kind
            );
        }
    }
}
