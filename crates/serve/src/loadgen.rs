//! The seeded load generator: a deterministic production-shaped query
//! mix, replayed against one shared [`QueryEngine`] through `tero-pool`.
//!
//! The mix follows the query shapes the cloud-gaming measurement
//! literature actually issues against latency data-sets — mostly point
//! percentiles (dashboards), a band of CDF evaluations (SLA checks), the
//! occasional full histogram (plots) and pairwise Wasserstein distances
//! (cross-location comparisons, Fig 8). Weights are compile-time
//! constants; the target, percentile and evaluation point of each query
//! come from a [`SimRng`] stream, so a seed pins the entire workload.
//!
//! Replay is *order-preserving in results* — `Pool::par_map` returns
//! answers in query order at any worker count — so the folded
//! [`Answer::checksum`] over a run is a single u64 that must match across
//! worker counts, cache configurations, and (because the underlying
//! sketches are) window schedules. Cache hit/miss *counts* are
//! schedule-dependent under parallel replay (which worker warms a key
//! first is a race); only the answers are contract.

use crate::engine::{Answer, Query, QueryEngine, SketchRef};
use tero_pool::Pool;
use tero_types::SimRng;

/// Percentiles the generated point-queries draw from: the dashboard set
/// (§5.2's boxplot points plus the tail the operations guide quotes).
pub const QUERY_PERCENTILES: [f64; 8] = [5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];

/// Out of every 100 generated queries: 55 percentiles, 25 CDFs, 12
/// histograms, 8 Wasserstein pairs.
const WEIGHTS: [(u64, QueryKind); 4] = [
    (55, QueryKind::Percentile),
    (80, QueryKind::Cdf),
    (92, QueryKind::Histogram),
    (100, QueryKind::Wasserstein),
];

#[derive(Clone, Copy)]
enum QueryKind {
    Percentile,
    Cdf,
    Histogram,
    Wasserstein,
}

/// A seeded generator of production-shaped query streams over a fixed
/// target set.
#[derive(Debug)]
pub struct LoadGen {
    rng: SimRng,
    targets: Vec<SketchRef>,
}

impl LoadGen {
    /// A generator over `targets` (usually every served distribution,
    /// from [`QueryEngine::distributions`]). The target list's *order*
    /// matters to the stream: callers wanting a pinned workload must pass
    /// a deterministically-ordered list — `distributions()` is already
    /// key-sorted.
    pub fn new(seed: u64, targets: Vec<SketchRef>) -> LoadGen {
        assert!(!targets.is_empty(), "load generation needs targets");
        LoadGen {
            rng: SimRng::new(seed ^ 0x5e7e_c0de),
            targets,
        }
    }

    /// Generate the next `n` queries of the stream.
    pub fn generate(&mut self, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.next_query()).collect()
    }

    fn next_query(&mut self) -> Query {
        let roll = self.rng.below(100);
        let kind = WEIGHTS
            .iter()
            .find(|(cum, _)| roll < *cum)
            .map(|(_, k)| *k)
            .expect("weights cover 0..100");
        let target = self.rng.choose(&self.targets).clone();
        match kind {
            QueryKind::Percentile => Query::Percentile {
                target,
                p: *self.rng.choose(&QUERY_PERCENTILES),
            },
            QueryKind::Cdf => Query::Cdf {
                target,
                x: self.rng.range_f64(0.0, 400.0),
            },
            QueryKind::Histogram => Query::Histogram { target },
            QueryKind::Wasserstein => Query::Wasserstein {
                a: target,
                b: self.rng.choose(&self.targets).clone(),
            },
        }
    }
}

/// What one replay did: totals plus the order-sensitive answer digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Queries replayed.
    pub queries: u64,
    /// Queries that found a non-empty distribution.
    pub answered: u64,
    /// [`Answer::checksum`]s folded in query order — identical across
    /// worker counts and cache configurations for the same query stream
    /// over the same serving view.
    pub checksum: u64,
}

/// Replay `queries` against `engine` on `pool` workers and fold the
/// answers. The engine is shared — this is the contended, many-clients
/// shape the benchmarks measure.
pub fn run_load(engine: &QueryEngine, pool: &Pool, queries: &[Query]) -> LoadReport {
    let answers: Vec<Answer> = pool.par_map(queries, |q| engine.query(q));
    fold_answers(&answers)
}

/// Fold a replay's answers into a [`LoadReport`].
pub fn fold_answers(answers: &[Answer]) -> LoadReport {
    let mut checksum = 0x7e60_u64;
    let mut answered = 0;
    for a in answers {
        checksum = checksum
            .rotate_left(1)
            .wrapping_add(a.checksum())
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        answered += a.is_answered() as u64;
    }
    LoadReport {
        queries: answers.len() as u64,
        answered,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_core::serving::{ServeGranularity, SERVE_VERSION_KEY};
    use tero_obs::Registry;
    use tero_stats::QuantileSketch;
    use tero_store::KvStore;
    use tero_types::GameId;

    fn serving_fixture() -> (KvStore, Vec<SketchRef>) {
        let kv = KvStore::new();
        let mut targets = Vec::new();
        for (i, loc) in ["France", "Germany", "Japan"].iter().enumerate() {
            let target = SketchRef::dist(ServeGranularity::Country, GameId::ALL[i], loc);
            let values: Vec<f64> = (1..=200).map(|v| (v + 13 * i) as f64).collect();
            kv.set(target.key(), QuantileSketch::from_values(&values).encode());
            targets.push(target);
        }
        kv.incr_by(SERVE_VERSION_KEY, 1);
        (kv, targets)
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let (_, targets) = serving_fixture();
        let a = LoadGen::new(9, targets.clone()).generate(500);
        let b = LoadGen::new(9, targets.clone()).generate(500);
        assert_eq!(a, b, "same seed, same stream");
        let c = LoadGen::new(10, targets).generate(500);
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn replay_checksum_is_worker_count_invariant() {
        let (kv, targets) = serving_fixture();
        let queries = LoadGen::new(4242, targets).generate(2_000);
        let mut reports = Vec::new();
        for workers in [1, 2, 7] {
            let registry = Registry::new();
            let engine = QueryEngine::new(kv.clone(), &registry);
            let pool = Pool::new(workers);
            reports.push(run_load(&engine, &pool, &queries));
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        assert!(
            reports[0].answered == reports[0].queries,
            "all targets live"
        );
    }

    #[test]
    fn replay_checksum_is_cache_invariant() {
        let (kv, targets) = serving_fixture();
        let queries = LoadGen::new(7, targets).generate(1_000);
        let pool = Pool::new(4);
        let cached = QueryEngine::new(kv.clone(), &Registry::new());
        let uncached = QueryEngine::with_cache_capacity(kv, &Registry::new(), 0);
        assert_eq!(
            run_load(&cached, &pool, &queries),
            run_load(&uncached, &pool, &queries),
            "the cache may never change an answer"
        );
        let (hits, _, _) = cached.cache_stats();
        assert!(hits > 0, "cached replay actually hit");
        let (hits, misses, _) = uncached.cache_stats();
        assert_eq!(hits, 0, "capacity 0 never hits");
        assert!(misses > 0);
    }
}
