//! The App. E pre-processing pipeline.
//!
//! "(b) It performs a set of standard tasks that render OCR more effective:
//! converts the image to black-and-white, up-scales, applies a Gaussian
//! filter to blur the edges and reduce noise, applies thresholding to
//! separate foreground and background, and runs several iterations of
//! dilating and eroding the image in order to merge disjoint regions
//! [40, 54]."

use crate::image::Image;

/// Parameters of the pre-processing pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Integer upscale factor applied before blurring.
    pub upscale: usize,
    /// Gaussian blur radius (0 disables blurring).
    pub blur_radius: usize,
    /// Number of dilate+erode (closing) iterations after thresholding.
    pub morph_iterations: usize,
    /// Run a morphological opening (two erosions then two dilations) after
    /// closing, removing isolated noise specks that survive the closing.
    pub despeckle: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            upscale: 3,
            blur_radius: 1,
            morph_iterations: 1,
            despeckle: true,
        }
    }
}

/// Run the full pipeline: upscale → Gaussian blur → Otsu threshold →
/// morphological closing. The output is binary: 0 (foreground/ink) and
/// 255 (background).
pub fn preprocess(img: &Image, cfg: &PreprocessConfig) -> Image {
    let gray = preprocess_gray(img, cfg);
    finish_binary(&gray, 1.0, cfg)
}

/// The shared grayscale stages: upscale and blur. Real OCR engines then
/// binarize with their *own* thresholding policies, which is where part of
/// their complementary behaviour comes from (§3.2) — see
/// [`finish_binary`].
pub fn preprocess_gray(img: &Image, cfg: &PreprocessConfig) -> Image {
    let mut out = img.upscale(cfg.upscale.max(1));
    if cfg.blur_radius > 0 {
        out = gaussian_blur(&out, cfg.blur_radius);
    }
    out
}

/// Binarize a grayscale image at `threshold_factor × Otsu` and apply the
/// configured morphology. A factor below 1 is a *strict* policy: faint
/// (noise- or blur-degraded) strokes fall below the cutoff and vanish.
pub fn finish_binary(gray: &Image, threshold_factor: f64, cfg: &PreprocessConfig) -> Image {
    let t = (otsu_threshold(gray) as f64 * threshold_factor)
        .round()
        .clamp(0.0, 255.0) as u8;
    let mut out = binarize(gray, t);
    for _ in 0..cfg.morph_iterations {
        out = dilate(&out);
        out = erode(&out);
    }
    if cfg.despeckle {
        out = erode(&erode(&out));
        out = dilate(&dilate(&out));
    }
    out
}

/// Separable Gaussian blur with the given radius (σ ≈ radius/1.5), using a
/// discretised kernel normalised to unit sum.
pub fn gaussian_blur(img: &Image, radius: usize) -> Image {
    if radius == 0 || img.width == 0 || img.height == 0 {
        return img.clone();
    }
    let sigma = radius as f64 / 1.5;
    let kernel: Vec<f64> = (-(radius as i64)..=(radius as i64))
        .map(|d| (-(d as f64).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    let ksum: f64 = kernel.iter().sum();

    // Horizontal pass.
    let mut tmp = vec![0.0f64; img.width * img.height];
    for y in 0..img.height {
        for x in 0..img.width {
            let mut acc = 0.0;
            for (i, &k) in kernel.iter().enumerate() {
                let sx =
                    (x as i64 + i as i64 - radius as i64).clamp(0, img.width as i64 - 1) as usize;
                acc += k * img.get(sx, y) as f64;
            }
            tmp[y * img.width + x] = acc / ksum;
        }
    }
    // Vertical pass.
    let mut out = Image::filled(img.width, img.height, 0);
    for y in 0..img.height {
        for x in 0..img.width {
            let mut acc = 0.0;
            for (i, &k) in kernel.iter().enumerate() {
                let sy =
                    (y as i64 + i as i64 - radius as i64).clamp(0, img.height as i64 - 1) as usize;
                acc += k * tmp[sy * img.width + x];
            }
            out.pixels[y * img.width + x] = (acc / ksum).round().clamp(0.0, 255.0) as u8;
        }
    }
    out
}

/// 3×3 median filter — the classic salt-and-pepper denoiser: isolated
/// extreme pixels are replaced by their neighbourhood median while edges
/// and 6-px strokes survive intact.
pub fn median3(img: &Image) -> Image {
    let mut out = img.clone();
    if img.width < 3 || img.height < 3 {
        return out;
    }
    let mut window = [0u8; 9];
    for y in 1..img.height - 1 {
        for x in 1..img.width - 1 {
            let mut k = 0;
            for dy in 0..3 {
                for dx in 0..3 {
                    window[k] = img.get(x + dx - 1, y + dy - 1);
                    k += 1;
                }
            }
            window.sort_unstable();
            out.pixels[y * img.width + x] = window[4];
        }
    }
    out
}

/// Otsu's method \[40\]: the threshold that maximises between-class variance
/// of the gray-level histogram.
#[allow(clippy::needless_range_loop)]
pub fn otsu_threshold(img: &Image) -> u8 {
    let mut hist = [0u64; 256];
    for &p in &img.pixels {
        hist[p as usize] += 1;
    }
    let total = img.pixels.len() as f64;
    if total == 0.0 {
        return 128;
    }
    let sum_all: f64 = hist
        .iter()
        .enumerate()
        .map(|(v, &c)| v as f64 * c as f64)
        .sum();

    let mut best_t = 128u8;
    let mut best_var = -1.0;
    let mut w0 = 0.0;
    let mut sum0 = 0.0;
    for t in 0..256 {
        w0 += hist[t] as f64;
        if w0 == 0.0 {
            continue;
        }
        let w1 = total - w0;
        if w1 == 0.0 {
            break;
        }
        sum0 += t as f64 * hist[t] as f64;
        let mu0 = sum0 / w0;
        let mu1 = (sum_all - sum0) / w1;
        let var = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if var > best_var {
            best_var = var;
            best_t = t as u8;
        }
    }
    best_t
}

/// Binarize: pixels at or below the threshold become 0 (ink), the rest 255.
pub fn binarize(img: &Image, threshold: u8) -> Image {
    let mut out = img.clone();
    for p in out.pixels.iter_mut() {
        *p = if *p <= threshold { 0 } else { 255 };
    }
    out
}

/// Morphological dilation of the *ink* (0) regions with a 3×3 structuring
/// element: a pixel becomes ink if any 8-neighbour is ink.
pub fn dilate(img: &Image) -> Image {
    morph(img, true)
}

/// Morphological erosion of the ink regions: a pixel stays ink only if all
/// 8-neighbours are ink.
pub fn erode(img: &Image) -> Image {
    morph(img, false)
}

fn morph(img: &Image, dilate: bool) -> Image {
    let mut out = img.clone();
    for y in 0..img.height {
        for x in 0..img.width {
            let mut any_ink = false;
            let mut all_ink = true;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let sx = x as i64 + dx;
                    let sy = y as i64 + dy;
                    let ink =
                        if sx < 0 || sy < 0 || sx >= img.width as i64 || sy >= img.height as i64 {
                            false // outside the image counts as background
                        } else {
                            img.get(sx as usize, sy as usize) == 0
                        };
                    any_ink |= ink;
                    all_ink &= ink;
                }
            }
            let ink = if dilate { any_ink } else { all_ink };
            out.pixels[y * img.width + x] = if ink { 0 } else { 255 };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::font::rasterize;

    #[test]
    fn otsu_separates_bimodal_image() {
        let mut img = Image::filled(10, 10, 200);
        img.fill_rect(0, 0, 5, 10, 30);
        let t = otsu_threshold(&img);
        assert!((30..200).contains(&t), "threshold {t}");
        let bin = binarize(&img, t);
        assert_eq!(bin.get(0, 0), 0);
        assert_eq!(bin.get(9, 9), 255);
    }

    #[test]
    fn otsu_on_empty_image_is_safe() {
        let img = Image::filled(0, 0, 0);
        assert_eq!(otsu_threshold(&img), 128);
    }

    #[test]
    fn blur_preserves_mean_roughly() {
        let mut img = Image::filled(20, 20, 0);
        img.fill_rect(5, 5, 10, 10, 200);
        let blurred = gaussian_blur(&img, 2);
        let m0 = img.mean().unwrap();
        let m1 = blurred.mean().unwrap();
        assert!((m0 - m1).abs() < 10.0, "{m0} vs {m1}");
        // Edges are softened: some pixels now between 0 and 200.
        let mids = blurred
            .pixels
            .iter()
            .filter(|&&p| p > 20 && p < 180)
            .count();
        assert!(mids > 0);
    }

    #[test]
    fn dilate_then_erode_closes_gaps() {
        // Two ink pixels with a 1-px gap: closing merges them.
        let mut img = Image::filled(9, 3, 255);
        img.set(2, 1, 0);
        img.set(4, 1, 0);
        let closed = erode(&dilate(&img));
        assert_eq!(closed.get(3, 1), 0, "gap filled");
        assert_eq!(closed.get(2, 1), 0);
    }

    #[test]
    fn erode_removes_isolated_pixels() {
        let mut img = Image::filled(9, 9, 255);
        img.set(4, 4, 0);
        let eroded = erode(&img);
        assert_eq!(eroded.count_below(128), 0);
    }

    #[test]
    fn median_filter_kills_specks_keeps_strokes() {
        let mut img = Image::filled(30, 30, 230);
        // A 6-px-wide stroke and an isolated dark pixel.
        img.fill_rect(5, 5, 6, 20, 20);
        img.set(20, 20, 0);
        let m = median3(&img);
        assert_eq!(m.get(20, 20), 230, "speck removed");
        assert_eq!(m.get(7, 10), 20, "stroke interior intact");
        assert_eq!(m.get(5, 10), 20, "stroke edge intact");
        // Tiny images pass through.
        let tiny = Image::filled(2, 2, 9);
        assert_eq!(median3(&tiny), tiny);
    }

    #[test]
    fn threshold_factor_changes_faint_stroke_survival() {
        // Faint text on a light panel: Otsu lands between the two light
        // modes, so a strict (sub-1) factor loses the text while the
        // standard factor keeps it — the per-engine differentiation lever
        // behind Table 4's distinct miss rates.
        let text = rasterize("45", 2, 205, 230);
        let mut canvas = Image::filled(40, 22, 230);
        canvas.blit(&text, 4, 4);
        let cfg = PreprocessConfig::default();
        let gray = preprocess_gray(&canvas, &cfg);
        let strict = finish_binary(&gray, 0.82, &cfg);
        let standard = finish_binary(&gray, 1.0, &cfg);
        assert!(
            standard.count_below(128) > strict.count_below(128),
            "standard threshold must keep more faint ink: {} vs {}",
            standard.count_below(128),
            strict.count_below(128)
        );
        assert_eq!(strict.count_below(128), 0, "strict loses the faint text");
    }

    #[test]
    fn full_pipeline_keeps_text_legible() {
        let text = rasterize("45ms", 2, 20, 230);
        let mut canvas = Image::filled(70, 24, 230);
        canvas.blit(&text, 4, 4);
        let out = preprocess(&canvas, &PreprocessConfig::default());
        assert_eq!(out.width, 70 * 3);
        // Binary output only.
        assert!(out.pixels.iter().all(|&p| p == 0 || p == 255));
        // Ink present in sensible quantity.
        let ink = out.count_below(128);
        let frac = ink as f64 / out.pixels.len() as f64;
        assert!(frac > 0.02 && frac < 0.5, "ink fraction {frac}");
    }

    #[test]
    fn pipeline_on_low_contrast_input_loses_text() {
        // A light font on a light panel mostly vanishes after thresholding —
        // the Fig 6b failure mode.
        let text = rasterize("45ms", 2, 215, 230);
        let mut canvas = Image::filled(70, 24, 230);
        canvas.blit(&text, 4, 4);
        // Add a dark gameplay block so Otsu anchors on the wrong mode.
        canvas.fill_rect(0, 18, 70, 6, 40);
        let out = preprocess(&canvas, &PreprocessConfig::default());
        // The text rows (above the dark block) have little to no ink.
        let text_region = out.crop(0, 0, 70 * 3, 17 * 3);
        let frac = text_region.count_below(128) as f64 / text_region.pixels.len() as f64;
        assert!(frac < 0.05, "low-contrast text should vanish, got {frac}");
    }
}
