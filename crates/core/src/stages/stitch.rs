//! The stitch stage: measurement lists → per-`{streamer, game}` streams.
//!
//! Drains every [`super::SAMPLES_PREFIX`] KV list the extract stage
//! appended to (across all windows), decodes the [`SampleRecord`]s back
//! into [`LatencySample`]s, and splits each `{streamer, game}` timeline
//! into [`StreamSeries`] at gaps larger than [`STREAM_GAP`]. Runs once,
//! at finalize — stream boundaries depend on the *next* sample's
//! timestamp, so splitting cannot be decided until ingest is complete.

use super::{parse_sample_list_key, SampleRecord, Stage, StageCx, SAMPLES_PREFIX};
use crate::analysis::segments::StreamSeries;
use std::collections::BTreeMap;
use tero_types::{AnonId, GameId, LatencySample, SimDuration};

/// A gap larger than this starts a new stream (thumbnails are ≥ 5 min
/// apart; in-stream breaks reach ~35 min; offline periods are longer).
pub const STREAM_GAP: SimDuration = SimDuration(45 * 60 * 1_000_000);

/// The stitch stage. Stateless: all of its input lives in the KV lists.
#[derive(Debug, Default)]
pub struct StitchStage;

impl Stage for StitchStage {
    type In = ();
    type Out = BTreeMap<(AnonId, GameId), Vec<StreamSeries>>;
    const NAME: &'static str = "stitch";

    /// Drain the sample lists and stitch each timeline into streams.
    fn run(&mut self, cx: &mut StageCx<'_>, _input: ()) -> Self::Out {
        let m = cx.stage_metrics(Self::NAME);
        let _t = m.begin();
        let _sp_stitch = cx.sp_run.child("stage.stitch");
        let _t_stitch = cx.tero.obs.stage_timer(&cx.metrics.stage_stitch_us);
        let mut streams: BTreeMap<(AnonId, GameId), Vec<StreamSeries>> = BTreeMap::new();
        // Key order is the store's BTreeMap order == (anon, game) order,
        // the same order the legacy in-memory BTreeMap was walked in.
        for key in cx.kv.keys_with_prefix(SAMPLES_PREFIX) {
            let Some((anon, game)) = parse_sample_list_key(&key) else {
                continue;
            };
            let len = cx.kv.llen(&key);
            let mut samples: Vec<LatencySample> = cx
                .kv
                .lpop_batch(&key, len)
                .iter()
                .filter_map(|raw| SampleRecord::decode(raw))
                .map(|r| match r.alternative {
                    Some(alt) => LatencySample::with_alternative(r.at, r.primary, alt),
                    None => LatencySample::new(r.at, r.primary),
                })
                .collect();
            m.records_in.add(samples.len() as u64);
            // Windows arrive in time order but re-sort anyway: the split
            // below requires it, and it makes the stage order-insensitive.
            samples.sort_by_key(|s| s.at);
            let mut current: Vec<LatencySample> = Vec::new();
            let mut series = Vec::new();
            for s in samples {
                if let Some(last) = current.last() {
                    if s.at.since(last.at) > STREAM_GAP {
                        series.push(StreamSeries {
                            anon,
                            game,
                            samples: std::mem::take(&mut current),
                        });
                    }
                }
                current.push(s);
            }
            if !current.is_empty() {
                series.push(StreamSeries {
                    anon,
                    game,
                    samples: current,
                });
            }
            cx.metrics.streams_stitched.add(series.len() as u64);
            m.records_out.add(series.len() as u64);
            streams.insert((anon, game), series);
        }
        streams
    }
}
